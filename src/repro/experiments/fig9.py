"""Figure 9: scalability across cluster sizes, model sizes and GPU platforms.

* Figure 9(a): Llama2-7B and Qwen1.5-MoE trained with recomputation on the
  AMD MI210 cluster (32 and 64 GPUs) -- PyTorch vs STAlloc.
* Figure 9(b): Qwen2.5-7B/14B/32B/72B on 8-128 NVIDIA H200 GPUs with
  recomputation -- PyTorch 2.6, PyTorch expandable segments, STAlloc.
* Figure 9(c): the same sweep with virtual pipelining instead of
  recomputation.

Because GPU memory pressure is a per-rank phenomenon, each cluster point is
simulated as the most-loaded pipeline rank of that job (growing the cluster by
widening data parallelism does not change per-rank memory; growing the model
changes the per-rank layer/parameter share through TP/PP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult, efficiency_row, register_experiment
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import preset_config
from repro.simulator.runner import run_workload_suite


@dataclass(frozen=True)
class ScalePoint:
    """One (model, cluster size) point of the H200 scalability sweep."""

    model_name: str
    num_gpus: int
    tensor_parallel: int
    pipeline_parallel: int
    micro_batch_size: int = 1
    num_microbatches: int = 8

    def parallelism(self, *, virtual_chunks: int = 1) -> ParallelismConfig:
        data_parallel = self.num_gpus // (self.tensor_parallel * self.pipeline_parallel)
        return ParallelismConfig(
            tensor_parallel=self.tensor_parallel,
            pipeline_parallel=self.pipeline_parallel,
            data_parallel=max(1, data_parallel),
            virtual_pipeline_chunks=virtual_chunks,
        )


#: The eight x-axis points of Figure 9(b)/(c): each model at two cluster sizes.
H200_SCALE_POINTS: list[ScalePoint] = [
    ScalePoint("qwen2.5-7b", 8, tensor_parallel=2, pipeline_parallel=2, micro_batch_size=2),
    ScalePoint("qwen2.5-7b", 16, tensor_parallel=2, pipeline_parallel=2, micro_batch_size=2),
    ScalePoint("qwen2.5-14b", 16, tensor_parallel=2, pipeline_parallel=2),
    ScalePoint("qwen2.5-14b", 32, tensor_parallel=2, pipeline_parallel=2),
    ScalePoint("qwen2.5-32b", 32, tensor_parallel=4, pipeline_parallel=4),
    ScalePoint("qwen2.5-32b", 64, tensor_parallel=4, pipeline_parallel=4),
    ScalePoint("qwen2.5-72b", 64, tensor_parallel=8, pipeline_parallel=4),
    ScalePoint("qwen2.5-72b", 128, tensor_parallel=8, pipeline_parallel=4),
]

H200_LINEUP = ["torch2.6", "torch_es", "stalloc"]


def _h200_sweep(experiment_id: str, *, preset: str, quick: bool) -> ExperimentResult:
    points = H200_SCALE_POINTS[:4] if quick else H200_SCALE_POINTS
    rows = []
    for point in points:
        virtual_chunks = 2 if preset in ("V", "VR") else 1
        parallelism = point.parallelism(virtual_chunks=virtual_chunks)
        config = preset_config(
            get_model(point.model_name),
            preset,
            parallelism=parallelism,
            micro_batch_size=point.micro_batch_size,
            num_microbatches=point.num_microbatches,
        )
        runs = run_workload_suite(config, H200_LINEUP, device_name="H200-141GB")
        label = f"{point.model_name.replace('qwen2.5-', '')}@{point.num_gpus}GPU"
        for allocator in H200_LINEUP:
            rows.append(efficiency_row(label, allocator, runs[allocator]))
    title = "Qwen2.5 scalability on H200 with " + (
        "recomputation" if preset == "R" else "virtual pipeline"
    )
    return ExperimentResult(experiment_id=experiment_id, title=title, rows=rows)


@register_experiment("fig9a")
def run_amd(*, quick: bool = False) -> ExperimentResult:
    """Figure 9(a): AMD MI210 cluster, recomputation, PyTorch vs STAlloc."""
    jobs = [
        (
            "llama2-7b@32GPU",
            preset_config(
                get_model("llama2-7b"),
                "R",
                parallelism=ParallelismConfig(tensor_parallel=2, pipeline_parallel=4, data_parallel=4),
                micro_batch_size=2,
                num_microbatches=8,
            ),
        ),
        (
            "qwen1.5-moe@64GPU",
            preset_config(
                get_model("qwen1.5-moe-a2.7b"),
                "R",
                parallelism=ParallelismConfig(
                    tensor_parallel=1,
                    pipeline_parallel=4,
                    data_parallel=16,
                    expert_parallel=4,
                ),
                micro_batch_size=4,
                num_microbatches=8,
            ),
        ),
    ]
    if quick:
        jobs = jobs[:1]
    lineup = ["torch2.3", "stalloc"]
    rows = []
    for label, config in jobs:
        runs = run_workload_suite(config, lineup, device_name="MI210-64GB")
        for allocator in lineup:
            rows.append(efficiency_row(label, "torch" if allocator == "torch2.3" else allocator, runs[allocator]))
    return ExperimentResult(
        experiment_id="fig9a",
        title="Scalability on the AMD MI210 cluster (recomputation)",
        rows=rows,
        notes="Paper: STAlloc stays above 90% efficiency; PyTorch drops below 60-80% (Figure 9a).",
    )


@register_experiment("fig9b")
def run_h200_recompute(*, quick: bool = False) -> ExperimentResult:
    """Figure 9(b): H200 scalability with recomputation."""
    return _h200_sweep("fig9b", preset="R", quick=quick)


@register_experiment("fig9c")
def run_h200_vpp(*, quick: bool = False) -> ExperimentResult:
    """Figure 9(c): H200 scalability with virtual pipeline."""
    return _h200_sweep("fig9c", preset="V", quick=quick)
