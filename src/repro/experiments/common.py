"""Shared experiment infrastructure: result container, registry, workloads.

The testbed workload definitions (which parallelism layout each model uses on
the 8-GPU A800 node, which micro-batch sizes, etc.) live here so that every
figure uses consistent configurations, exactly as the paper reuses the same
setups across its evaluation subsections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.workloads.model_config import ModelConfig
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig, preset_config

#: The Figure 8 allocator line-up, in presentation order.
BASELINE_LINEUP = ["torch2.0", "gmlake", "torch2.3", "torch_es"]
FULL_LINEUP = BASELINE_LINEUP + ["stalloc"]

#: Optimization presets on the x-axis of Figures 8 and 13.
PRESETS = ["Naive", "R", "V", "VR", "ZR", "ZOR"]


# ---------------------------------------------------------------------- #
# Execution settings (parallelism + persistent caching for every experiment)
# ---------------------------------------------------------------------- #
_EXECUTION: dict = {"jobs": 1, "cache_dir": None}


def configure_execution(*, jobs: int | None = None, cache_dir: str | None = None) -> None:
    """Set how experiment workloads execute, process-wide.

    ``jobs`` > 1 makes :func:`repro.simulator.runner.run_workload_suite` fan
    allocators out over worker processes; ``cache_dir`` installs the
    persistent on-disk trace/plan cache of :mod:`repro.sweep` so repeated
    experiment runs skip trace generation and plan synthesis.  Passing None
    for ``cache_dir`` removes an installed cache; passing None for ``jobs``
    resets to serial.  The CLI's ``--jobs`` / ``--cache-dir`` flags call this.
    """
    from repro.simulator import runner

    _EXECUTION["jobs"] = 1 if jobs is None else int(jobs)
    _EXECUTION["cache_dir"] = str(cache_dir) if cache_dir is not None else None
    runner.set_default_jobs(_EXECUTION["jobs"])
    runner.set_persistent_cache(_EXECUTION["cache_dir"])


def execution_settings() -> dict:
    """The currently configured execution settings (jobs, cache_dir)."""
    return dict(_EXECUTION)


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus free-form notes."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def columns(self) -> list[str]:
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_text(self) -> str:
        """Column-aligned plain-text rendering (what the CLI prints)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        columns = self.columns()
        if columns:
            widths = {
                column: max(len(column), *(len(_fmt(row.get(column, ""))) for row in self.rows))
                for column in columns
            }
            header = "  ".join(column.ljust(widths[column]) for column in columns)
            lines.append(header)
            lines.append("-" * len(header))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
                )
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------- #
# Experiment registry
# ---------------------------------------------------------------------- #
_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def register_experiment(experiment_id: str):
    """Decorator registering an experiment function under a paper artifact id."""

    def decorator(func: Callable[..., ExperimentResult]):
        if experiment_id in _EXPERIMENTS:
            raise ValueError(f"experiment {experiment_id!r} registered twice")
        _EXPERIMENTS[experiment_id] = func
        func.experiment_id = experiment_id
        return func

    return decorator


def available_experiments() -> list[str]:
    return sorted(_EXPERIMENTS)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return _EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(available_experiments())}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    return get_experiment(experiment_id)(**kwargs)


# ---------------------------------------------------------------------- #
# Testbed workload definitions
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TestbedWorkload:
    """How one model is trained on the 8-GPU A800 testbed."""

    model_name: str
    parallelism: ParallelismConfig
    micro_batch_size: int
    num_microbatches: int
    device_name: str = "A800-80GB"

    @property
    def model(self) -> ModelConfig:
        return get_model(self.model_name)

    def preset(self, preset_name: str, *, micro_batch_size: int | None = None) -> TrainingConfig:
        return preset_config(
            self.model,
            preset_name,
            parallelism=self.parallelism,
            micro_batch_size=micro_batch_size or self.micro_batch_size,
            num_microbatches=self.num_microbatches,
        )


#: The three models of §9.2 on the A800 node (micro-batch sizes chosen so the
#: largest preset fits the simulated 80 GB device, mirroring the paper's
#: "maximum feasible micro-batch size" policy).
A800_WORKLOADS: dict[str, TestbedWorkload] = {
    "gpt2-345m": TestbedWorkload(
        model_name="gpt2-345m",
        parallelism=ParallelismConfig(tensor_parallel=1, pipeline_parallel=4, data_parallel=2),
        micro_batch_size=32,
        num_microbatches=16,
    ),
    "llama2-7b": TestbedWorkload(
        model_name="llama2-7b",
        parallelism=ParallelismConfig(tensor_parallel=2, pipeline_parallel=4, data_parallel=1),
        micro_batch_size=2,
        num_microbatches=16,
    ),
    "qwen1.5-moe-a2.7b": TestbedWorkload(
        model_name="qwen1.5-moe-a2.7b",
        parallelism=ParallelismConfig(
            tensor_parallel=1, pipeline_parallel=4, data_parallel=2, expert_parallel=2
        ),
        micro_batch_size=4,
        num_microbatches=8,
    ),
}


def efficiency_row(config_label: str, allocator: str, run) -> dict:
    """Standard row format shared by the memory-efficiency figures."""
    return {
        "config": config_label,
        "allocator": allocator,
        "memory_efficiency_pct": round(100 * run.memory_efficiency, 1),
        "fragmentation_pct": round(100 * run.fragmentation_ratio, 1),
        "allocated_gib": round(run.replay.metrics.peak_allocated_gib, 2),
        "reserved_gib": round(run.replay.metrics.peak_reserved_gib, 2),
        "status": "ok" if run.success else "OOM",
    }
