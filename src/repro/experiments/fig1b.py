"""Figure 1(b): memory vs throughput of Llama2-7B training configurations.

Each point is one training configuration of Llama2-7B on 8 A800 GPUs (varying
pipeline schedule, recomputation and micro-batch size).  Configurations that
need more memory generally train faster; fragmentation decides whether the
fast configurations actually fit -- several of them only run with STAlloc.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, register_experiment
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import preset_config
from repro.simulator.runner import run_workload_suite
from repro.simulator.throughput import GPU_SPECS, ThroughputModel

#: (label, preset, micro-batch size) of the plotted configurations.
CONFIG_POINTS = [
    ("1F1B + recompute, mbs=2", "R", 2),
    ("1F1B, mbs=1", "Naive", 1),
    ("1F1B, mbs=2", "Naive", 2),
    ("VPP, mbs=2", "V", 2),
    ("VPP, mbs=4", "V", 4),
    ("1F1B, mbs=4", "Naive", 4),
]


@register_experiment("fig1b")
def run(*, quick: bool = False) -> ExperimentResult:
    """Reserved memory and throughput of Llama2-7B configurations, with feasibility."""
    model = get_model("llama2-7b")
    parallelism = ParallelismConfig(tensor_parallel=2, pipeline_parallel=4, data_parallel=1)
    points = CONFIG_POINTS[:3] if quick else CONFIG_POINTS
    throughput = ThroughputModel(GPU_SPECS["A800-80GB"])
    rows = []
    for label, preset, micro_batch_size in points:
        config = preset_config(
            model,
            preset,
            parallelism=parallelism,
            micro_batch_size=micro_batch_size,
            num_microbatches=16,
        )
        runs = run_workload_suite(config, ["torch2.3", "stalloc"], device_name="A800-80GB")
        torch_run, stalloc_run = runs["torch2.3"], runs["stalloc"]
        rows.append(
            {
                "config": label,
                "tflops_per_gpu": round(throughput.tflops(config), 1),
                "torch_reserved_gib": round(torch_run.replay.metrics.peak_reserved_gib, 1),
                "stalloc_reserved_gib": round(stalloc_run.replay.metrics.peak_reserved_gib, 1),
                "torch_feasible": "yes" if torch_run.success else "OOM",
                "stalloc_feasible": "yes" if stalloc_run.success else "OOM",
            }
        )
    only_with_stalloc = [
        row["config"] for row in rows if row["torch_feasible"] == "OOM" and row["stalloc_feasible"] == "yes"
    ]
    notes = "Higher-throughput configurations need more memory (Figure 1b)."
    if only_with_stalloc:
        notes += " Configurations feasible only with STAlloc: " + ", ".join(only_with_stalloc) + "."
    return ExperimentResult(
        experiment_id="fig1b",
        title="Memory vs throughput of Llama2-7B training configurations (8x A800)",
        rows=rows,
        notes=notes,
    )
