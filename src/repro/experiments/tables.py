"""Tables 1-3 of the evaluation section.

* Table 1: which training configurations of Qwen2.5-14B on 16 GPUs survive
  each allocator, and what throughput each configuration achieves.
* Table 2: profiling and plan-synthesis time for traces of increasing size.
* Table 3: composition of allocation types (static vs dynamic fallback) for
  the MoE model, with and without dynamic reuse of the static pool.
"""

from __future__ import annotations

import time

from repro.core.profiler import AllocationProfiler
from repro.core.synthesizer import PlanSynthesizer
from repro.experiments.common import A800_WORKLOADS, ExperimentResult, PRESETS, register_experiment
from repro.gpu.device import GIB
from repro.simulator.runner import (
    STALLOC,
    STALLOC_NO_REUSE,
    generate_trace,
    run_workload_suite,
)
from repro.simulator.throughput import GPU_SPECS, ThroughputModel
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig, preset_config


# ---------------------------------------------------------------------- #
# Table 1
# ---------------------------------------------------------------------- #
def _table1_configs(micro_batch_size: int, num_microbatches: int) -> list[tuple[str, TrainingConfig]]:
    """The four Qwen2.5-14B configurations of Table 1 (16 GPUs)."""
    model = get_model("qwen2.5-14b")

    def build(label, tp, pp, vpp, recompute):
        parallelism = ParallelismConfig(
            tensor_parallel=tp,
            pipeline_parallel=pp,
            data_parallel=16 // (tp * pp),
            virtual_pipeline_chunks=vpp,
        )
        return TrainingConfig(
            model=model,
            parallelism=parallelism,
            micro_batch_size=micro_batch_size,
            num_microbatches=num_microbatches,
            recompute=recompute,
            label=label,
        )

    return [
        ("Original (VPP, TP=2)", build("original", 2, 2, 2, False)),
        ("Disable VPP", build("no-vpp", 2, 2, 1, False)),
        ("Recomputation", build("recompute", 2, 2, 1, True)),
        ("TP=4", build("tp4", 4, 2, 1, False)),
    ]


@register_experiment("table1")
def run_table1(
    *,
    micro_batch_size: int = 2,
    num_microbatches: int = 8,
    device_capacity_gib: float | None = None,
    quick: bool = False,
) -> ExperimentResult:
    """Feasibility and throughput of Qwen2.5-14B configurations on 16 GPUs."""
    configs = _table1_configs(micro_batch_size, num_microbatches)
    if quick:
        configs = configs[:2]
    lineup = ["torch2.6", "torch_es", STALLOC]
    throughput = ThroughputModel(GPU_SPECS["H200-141GB"])
    rows = []
    for label, config in configs:
        runs = run_workload_suite(
            config,
            lineup,
            device_name="H200-141GB",
            device_capacity_gib=device_capacity_gib,
        )
        rows.append(
            {
                "config": label,
                "pytorch": "OK" if runs["torch2.6"].success else "OOM",
                "pytorch_es": "OK" if runs["torch_es"].success else "OOM",
                "stalloc": "OK" if runs[STALLOC].success else "OOM",
                "reserved_torch_gib": round(runs["torch2.6"].replay.metrics.peak_reserved_gib, 1),
                "reserved_stalloc_gib": round(runs[STALLOC].replay.metrics.peak_reserved_gib, 1),
                "throughput_tflops": round(throughput.tflops(config), 1),
            }
        )
    best = max(rows, key=lambda row: row["throughput_tflops"])
    return ExperimentResult(
        experiment_id="table1",
        title="Qwen2.5-14B on 16 GPUs: configuration feasibility and throughput",
        rows=rows,
        notes=(
            f"Highest-throughput configuration: {best['config']} at {best['throughput_tflops']} TFLOPS. "
            "Paper: only STAlloc runs the original VPP configuration, which outperforms the "
            "fallback configurations by 5.4-32.5% (Table 1)."
        ),
    )


# ---------------------------------------------------------------------- #
# Table 2
# ---------------------------------------------------------------------- #
#: Modelled slowdown of running one iteration through the native profiler
#: (driver call per tensor) relative to the caching allocator.
_NATIVE_DRIVER_CALL_SECONDS = 1e-4


@register_experiment("table2")
def run_table2(*, quick: bool = False) -> ExperimentResult:
    """Profiling and plan-synthesis time for traces of increasing complexity."""
    workloads = [
        ("GPT-2-N", "gpt2-345m", "Naive"),
        ("GPT-2-R", "gpt2-345m", "R"),
        ("Llama2-7B-N", "llama2-7b", "Naive"),
        ("Llama2-7B-R", "llama2-7b", "R"),
        ("Qwen1.5-MoE-N", "qwen1.5-moe-a2.7b", "Naive"),
        ("Qwen1.5-MoE-R", "qwen1.5-moe-a2.7b", "R"),
    ]
    if quick:
        workloads = workloads[:2]
    gpu = GPU_SPECS["A800-80GB"]
    throughput = ThroughputModel(gpu)
    profiler = AllocationProfiler()
    synthesizer = PlanSynthesizer()
    rows = []
    for label, model_key, preset in workloads:
        workload = A800_WORKLOADS[model_key]
        config = workload.preset(preset)
        trace = generate_trace(config)
        # Profiling cost: the paper's profiler runs `iterations` iterations
        # through the native GPU APIs, paying one driver call per event.
        iteration_seconds = throughput.estimate(config).iteration_seconds
        native_overhead = trace.num_events * _NATIVE_DRIVER_CALL_SECONDS
        profile_seconds = profiler.iterations * (iteration_seconds + native_overhead)
        started = time.perf_counter()
        profile = profiler.profile(trace)
        plan = synthesizer.synthesize(profile)
        plan_seconds = time.perf_counter() - started
        rows.append(
            {
                "config": label,
                "num_requests": trace.num_requests,
                "t_profile_s": round(profile_seconds, 1),
                "t_plan_s": round(plan_seconds, 2),
                "static_pool_gib": round(plan.pool_size / GIB, 2),
            }
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Profiling and plan-synthesis time",
        rows=rows,
        notes=(
            "t_profile models three profiled iterations through the native GPU APIs; t_plan is the "
            "measured wall-clock of this implementation's plan synthesizer (paper: seconds to a few "
            "minutes, Table 2)."
        ),
    )


# ---------------------------------------------------------------------- #
# Table 3
# ---------------------------------------------------------------------- #
@register_experiment("table3")
def run_table3(*, quick: bool = False) -> ExperimentResult:
    """Composition of allocation types for Qwen1.5-MoE under each preset."""
    workload = A800_WORKLOADS["qwen1.5-moe-a2.7b"]
    presets = ["Naive", "R"] if quick else PRESETS
    rows = []
    for preset in presets:
        config = workload.preset(preset)
        trace = generate_trace(config)
        profile = AllocationProfiler().profile(trace)
        peak_total = profile.peak_allocated_bytes()
        static_peak = _peak_bytes(profile.static_requests)
        runs = run_workload_suite(
            config, [STALLOC_NO_REUSE, STALLOC], device_name=workload.device_name
        )
        fallback_without = runs[STALLOC_NO_REUSE].replay.allocator_stats.get("fallback_peak_reserved", 0)
        fallback_with = runs[STALLOC].replay.allocator_stats.get("fallback_peak_reserved", 0)
        rows.append(
            {
                "config": preset,
                "total_gib": round(peak_total / GIB, 2),
                "static_gib": round(static_peak / GIB, 2),
                "dyn_fallback_no_reuse_gib": round(fallback_without / GIB, 2),
                "dyn_fallback_with_reuse_gib": round(fallback_with / GIB, 2),
            }
        )
    return ExperimentResult(
        experiment_id="table3",
        title="Composition of allocation types (Qwen1.5-MoE)",
        rows=rows,
        notes=(
            "Static allocations dominate total memory; enabling dynamic reuse shrinks the memory "
            "that falls back to the caching allocator, most visibly under recomputation (Table 3)."
        ),
    )


def _peak_bytes(requests) -> int:
    events: list[tuple[int, int]] = []
    for request in requests:
        events.append((request.alloc_time, request.size))
        events.append((request.free_time, -request.size))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak
