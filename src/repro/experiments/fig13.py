"""Figure 13: performance breakdown of STAlloc's static and dynamic allocators.

Training Qwen1.5-MoE-A2.7B under every optimization preset, three allocators
are compared: the vanilla caching allocator, STAlloc with the dynamic-reuse
path disabled (static plan only, dynamic requests always fall back), and the
full STAlloc.  The gap between the last two quantifies how much reusing idle
static-pool space for dynamic requests contributes (§9.4).
"""

from __future__ import annotations

from repro.experiments.common import A800_WORKLOADS, ExperimentResult, PRESETS, register_experiment
from repro.simulator.runner import STALLOC, STALLOC_NO_REUSE, run_workload_suite

BREAKDOWN_LINEUP = ["torch2.3", STALLOC_NO_REUSE, STALLOC]
LABELS = {
    "torch2.3": "Caching Allocator",
    STALLOC_NO_REUSE: "STAlloc w/o reuse",
    STALLOC: "STAlloc",
}


@register_experiment("fig13")
def run(*, quick: bool = False) -> ExperimentResult:
    """Memory efficiency of the breakdown variants on the MoE model."""
    workload = A800_WORKLOADS["qwen1.5-moe-a2.7b"]
    presets = ["Naive", "R"] if quick else PRESETS
    rows = []
    for preset in presets:
        config = workload.preset(preset)
        runs = run_workload_suite(config, BREAKDOWN_LINEUP, device_name=workload.device_name)
        for allocator in BREAKDOWN_LINEUP:
            run_ = runs[allocator]
            rows.append(
                {
                    "config": preset,
                    "allocator": LABELS[allocator],
                    "memory_efficiency_pct": round(100 * run_.memory_efficiency, 1),
                    "reserved_gib": round(run_.replay.metrics.peak_reserved_gib, 2),
                    "fallback_gib": round(
                        run_.replay.allocator_stats.get("fallback_peak_reserved", 0) / 2**30, 2
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="fig13",
        title="STAlloc performance breakdown on Qwen1.5-MoE (static vs dynamic allocator)",
        rows=rows,
        notes=(
            "Paper: the static plan alone captures ~91% of the fragmentation reduction; "
            "dynamic reuse removes a further share of the fallback allocations (§9.4)."
        ),
    )
