"""Figure 8: memory efficiency across models, optimizations and allocators.

For GPT-2, Llama2-7B and Qwen1.5-MoE-A2.7B, every combination of optimization
preset (Naive/R/V/VR/ZR/ZOR) is replayed through the five allocators of the
paper's comparison (PyTorch 2.0, GMLake, PyTorch 2.3, PyTorch expandable
segments, STAlloc) and the peak memory efficiency is reported.
"""

from __future__ import annotations

from repro.experiments.common import (
    A800_WORKLOADS,
    ExperimentResult,
    FULL_LINEUP,
    PRESETS,
    efficiency_row,
    register_experiment,
)
from repro.gpu.device import MIB
from repro.simulator.runner import run_workload_suite


def _run_model(model_key: str, experiment_id: str, *, quick: bool) -> ExperimentResult:
    workload = A800_WORKLOADS[model_key]
    presets = ["Naive", "R"] if quick else PRESETS
    lineup = ["torch2.3", "stalloc"] if quick else FULL_LINEUP
    rows = []
    stalloc_frag = []
    baseline_frag = []
    for preset in presets:
        config = workload.preset(preset)
        runs = run_workload_suite(config, lineup, device_name=workload.device_name)
        for allocator in lineup:
            run_ = runs[allocator]
            rows.append(efficiency_row(preset, allocator, run_))
            if allocator == "stalloc":
                stalloc_frag.append(run_.fragmentation_ratio)
            elif allocator == "torch2.3":
                baseline_frag.append(run_.fragmentation_ratio)
    reduction = 0.0
    if baseline_frag and sum(baseline_frag) > 0:
        reduction = 100.0 * (1.0 - sum(stalloc_frag) / sum(baseline_frag))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Memory efficiency of {workload.model_name} across optimizations and allocators",
        rows=rows,
        notes=(
            f"STAlloc reduces fragmentation memory vs PyTorch 2.3 by {reduction:.1f}% "
            "(paper reports 85-100% across these settings)."
        ),
    )


@register_experiment("fig8a")
def run_gpt2(*, quick: bool = False) -> ExperimentResult:
    """Figure 8(a): GPT-2."""
    return _run_model("gpt2-345m", "fig8a", quick=quick)


@register_experiment("fig8b")
def run_llama(*, quick: bool = False) -> ExperimentResult:
    """Figure 8(b): Llama2-7B."""
    return _run_model("llama2-7b", "fig8b", quick=quick)


@register_experiment("fig8c")
def run_moe(*, quick: bool = False) -> ExperimentResult:
    """Figure 8(c): Qwen1.5-MoE-A2.7B."""
    return _run_model("qwen1.5-moe-a2.7b", "fig8c", quick=quick)


@register_experiment("fig8_gmlake_fraglimit")
def run_gmlake_fraglimit(*, quick: bool = False) -> ExperimentResult:
    """The MoE GMLake ``fragLimit`` study described alongside Figure 8.

    Tuning GMLake's stitching threshold from 512 MiB down to 64 MiB improves
    its memory efficiency on MoE training, but the extra virtual-memory
    operations (the paper measures up to 1500 per iteration at ~30 ms each)
    destroy training throughput.
    """
    from repro.allocators.caching import CachingAllocatorConfig
    from repro.allocators.gmlake import GMLakeAllocator, GMLakeConfig
    from repro.gpu.device import Device, GIB
    from repro.simulator.replay import replay_trace
    from repro.simulator.runner import generate_trace

    workload = A800_WORKLOADS["qwen1.5-moe-a2.7b"]
    config = workload.preset("R" if quick else "Naive")
    trace = generate_trace(config)
    rows = []
    for frag_limit_mib in (512, 256, 64):
        device = Device(name="A800-80GB", capacity=80 * GIB)
        allocator = GMLakeAllocator(
            device,
            GMLakeConfig(frag_limit=frag_limit_mib * MIB, label=f"gmlake-{frag_limit_mib}MB"),
        )
        result = replay_trace(trace, allocator)
        rows.append(
            {
                "frag_limit_mib": frag_limit_mib,
                "memory_efficiency_pct": round(100 * result.memory_efficiency, 1),
                "vmm_ops_per_iter": result.allocator_stats["vmm_ops"],
                "vmm_overhead_seconds": round(result.overhead_seconds, 2),
            }
        )
    return ExperimentResult(
        experiment_id="fig8_gmlake_fraglimit",
        title="GMLake fragLimit trade-off on Qwen1.5-MoE",
        rows=rows,
        notes="Smaller fragLimit improves efficiency but multiplies VMM operations (§9.2).",
    )
