"""Figure 3: allocation-size distribution (spatial regularity).

The paper observes that among >50,000 allocations of one Llama2-7B training
iteration there are only ~32 distinct sizes above 512 bytes, and that the
regularity persists under recomputation and virtual pipelining.  This
experiment reports the distinct-size counts and a log-bucketed histogram for
the same three configurations.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.experiments.common import A800_WORKLOADS, ExperimentResult, register_experiment
from repro.simulator.runner import generate_trace


def _bucket_label(size: int) -> str:
    """Human-readable power-of-two bucket label (1K, 2K, ..., 128M)."""
    if size <= 0:
        return "0"
    exponent = int(math.floor(math.log2(size)))
    bucket = 2 ** exponent
    units = [(1 << 30, "G"), (1 << 20, "M"), (1 << 10, "K")]
    for scale, suffix in units:
        if bucket >= scale:
            return f"{bucket // scale}{suffix}"
    return str(bucket)


@register_experiment("fig3")
def run(*, min_size: int = 512, quick: bool = False) -> ExperimentResult:
    """Distinct allocation sizes and size histogram for None / R / V configurations."""
    workload = A800_WORKLOADS["llama2-7b"]
    presets = ["Naive", "R", "V"] if not quick else ["Naive", "R"]
    rows = []
    for preset in presets:
        config = workload.preset(preset)
        trace = generate_trace(config)
        sizes = [size for size in trace.allocation_sizes(min_size=min_size + 1)]
        histogram = Counter(_bucket_label(size) for size in sizes)
        top_buckets = ", ".join(
            f"{bucket}:{count}" for bucket, count in sorted(histogram.items(), key=lambda kv: -kv[1])[:6]
        )
        rows.append(
            {
                "config": preset,
                "num_allocations": len(sizes),
                "distinct_sizes": trace.distinct_sizes(min_size=min_size),
                "top_size_buckets": top_buckets,
            }
        )
    return ExperimentResult(
        experiment_id="fig3",
        title="Allocation size distribution during Llama2-7B training",
        rows=rows,
        notes=(
            "Paper: ~32 distinct sizes among >50,000 allocations larger than 512 B, "
            "with or without recomputation / virtual pipeline (Figure 3)."
        ),
    )
