"""Figure 12: end-to-end training throughput overhead of the allocators.

For the three §9.2 models trained with recomputation, the per-iteration
allocator overhead observed during replay (driver calls, virtual-memory
operations) is fed into the analytical throughput model and normalized against
the vanilla caching allocator: GMLake against PyTorch 2.0, expandable segments
and STAlloc against PyTorch 2.3 (matching the paper's normalization).
"""

from __future__ import annotations

from repro.experiments.common import A800_WORKLOADS, ExperimentResult, register_experiment
from repro.simulator.runner import run_workload_suite
from repro.simulator.throughput import GPU_SPECS, ThroughputModel

LINEUP = ["torch2.0", "gmlake", "torch2.3", "torch_es", "stalloc"]
#: Which baseline each allocator is normalized against (paper's convention).
NORMALIZE_AGAINST = {
    "torch2.0": "torch2.0",
    "gmlake": "torch2.0",
    "torch2.3": "torch2.3",
    "torch_es": "torch2.3",
    "stalloc": "torch2.3",
}


@register_experiment("fig12")
def run(*, quick: bool = False) -> ExperimentResult:
    """Normalized training throughput of every allocator on the three models."""
    model_keys = ["gpt2-345m"] if quick else list(A800_WORKLOADS)
    gpu = GPU_SPECS["A800-80GB"]
    model = ThroughputModel(gpu)
    rows = []
    for model_key in model_keys:
        workload = A800_WORKLOADS[model_key]
        config = workload.preset("R")
        runs = run_workload_suite(config, LINEUP, device_name=workload.device_name)
        tflops = {
            name: model.tflops(config, allocator_overhead_seconds=run_.replay.overhead_seconds)
            for name, run_ in runs.items()
        }
        for name in LINEUP:
            reference = tflops[NORMALIZE_AGAINST[name]]
            normalized = 100.0 * tflops[name] / reference if reference else 0.0
            rows.append(
                {
                    "model": workload.model_name,
                    "allocator": name,
                    "tflops_per_gpu": round(tflops[name], 1),
                    "normalized_throughput_pct": round(normalized, 2),
                    "allocator_overhead_s": round(runs[name].replay.overhead_seconds, 3),
                }
            )
    return ExperimentResult(
        experiment_id="fig12",
        title="Normalized training throughput by allocator (recomputation)",
        rows=rows,
        notes=(
            "Paper: no allocator loses meaningful throughput in these settings; STAlloc is within "
            "0.05% of PyTorch 2.3, while virtual-memory based allocators can dip under churny "
            "workloads (Figure 12)."
        ),
    )
