"""Figure 10: memory efficiency across micro-batch sizes.

Llama2-7B is trained with recomputation while the micro-batch size sweeps
1..64.  Activation sizes scale with the micro-batch size, so online allocators
degrade as blocks get larger and reuse mismatches get costlier, while STAlloc
stays flat; the largest micro-batches OOM for the baselines.
"""

from __future__ import annotations

from repro.experiments.common import (
    A800_WORKLOADS,
    ExperimentResult,
    FULL_LINEUP,
    efficiency_row,
    register_experiment,
)
from repro.simulator.runner import run_workload_suite

MICRO_BATCH_SIZES = [1, 2, 4, 8, 16, 32, 64]


@register_experiment("fig10")
def run(*, quick: bool = False) -> ExperimentResult:
    """Memory efficiency of Llama2-7B + recomputation over micro-batch sizes."""
    workload = A800_WORKLOADS["llama2-7b"]
    sizes = [1, 4, 16] if quick else MICRO_BATCH_SIZES
    lineup = ["torch2.3", "stalloc"] if quick else FULL_LINEUP
    rows = []
    for micro_batch_size in sizes:
        config = workload.preset("R", micro_batch_size=micro_batch_size)
        runs = run_workload_suite(config, lineup, device_name=workload.device_name)
        for allocator in lineup:
            rows.append(efficiency_row(f"mbs={micro_batch_size}", allocator, runs[allocator]))
    return ExperimentResult(
        experiment_id="fig10",
        title="Memory efficiency vs micro-batch size (Llama2-7B, recomputation)",
        rows=rows,
        notes=(
            "Paper: STAlloc stays ~99% efficient at every micro-batch size while the other "
            "allocators degrade as the micro-batch grows; the largest sizes OOM (Figure 10)."
        ),
    )
