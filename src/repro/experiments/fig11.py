"""Figure 11: generality across training frameworks (Colossal-AI).

GPT-2 is trained with Colossal-AI-style tensor offloading plus ZeRO-3 (fully
sharded parameters gathered layer-by-layer) at two batch sizes.  The gathered
parameter buffers and offloaded activations churn through the allocator and
fragment the online baselines; STAlloc plans around them.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, FULL_LINEUP, efficiency_row, register_experiment
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig
from repro.simulator.runner import run_workload_suite


def _colossalai_config(batch_size: int) -> TrainingConfig:
    return TrainingConfig(
        model=get_model("gpt2-345m"),
        parallelism=ParallelismConfig(tensor_parallel=1, pipeline_parallel=1, data_parallel=8),
        micro_batch_size=batch_size,
        num_microbatches=4,
        zero_stage=3,
        offload_activations=True,
        framework="colossalai",
        label=f"colossalai-bs{batch_size}",
    )


@register_experiment("fig11")
def run(*, quick: bool = False) -> ExperimentResult:
    """Memory efficiency on Colossal-AI (offload + ZeRO-3) at batch sizes 16 and 128."""
    batch_sizes = [16] if quick else [16, 128]
    lineup = ["torch2.3", "stalloc"] if quick else FULL_LINEUP
    rows = []
    for batch_size in batch_sizes:
        config = _colossalai_config(batch_size)
        runs = run_workload_suite(config, lineup, device_name="A800-80GB")
        for allocator in lineup:
            rows.append(efficiency_row(f"batch={batch_size}", allocator, runs[allocator]))
    return ExperimentResult(
        experiment_id="fig11",
        title="Memory efficiency on Colossal-AI (GPT-2, offload + ZeRO-3)",
        rows=rows,
        notes="Paper: STAlloc outperforms every baseline on both batch sizes (Figure 11).",
    )
