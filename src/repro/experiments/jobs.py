"""Job-level memory tables: every pipeline rank of a training job.

The paper evaluates STAlloc on whole distributed jobs, where a configuration
only works if *every* rank fits -- and the binding rank moves with the
optimization preset: without recomputation the first stage binds (it holds the
most in-flight micro-batches plus the embedding), with recomputation the last
stage usually does (its fp32 vocabulary logits dwarf the checkpointed
activations everyone else keeps).  This experiment reports that per-rank
asymmetry explicitly: per preset and allocator, the job peak (max over ranks),
the mean per-rank peak, the binding rank, job-level success, and the modelled
training throughput.
"""

from __future__ import annotations

from repro.experiments.common import (
    A800_WORKLOADS,
    ExperimentResult,
    PRESETS,
    register_experiment,
)
from repro.simulator.runner import run_job


def _job_row(preset: str, job) -> dict:
    return {
        "config": preset,
        "allocator": job.allocator_name,
        "num_ranks": job.num_ranks,
        "unique_ranks": len(job.class_runs),
        "binding_rank": job.binding_rank,
        "job_peak_gib": round(job.peak_allocated_gib, 3),
        "mean_rank_peak_gib": round(job.mean_peak_allocated_gib, 3),
        "reserved_gib": round(job.peak_reserved_gib, 3),
        "tflops_per_gpu": job.tflops,
        "tokens_per_second": job.tokens_per_second,
        "status": "ok" if job.success else f"OOM@ranks{job.oom_ranks}",
    }


@register_experiment("job_table")
def run_job_table(*, quick: bool = False) -> ExperimentResult:
    """Per-rank memory asymmetry of the GPT-2 job across presets."""
    workload = A800_WORKLOADS["gpt2-345m"]
    presets = ["Naive", "R"] if quick else PRESETS
    lineup = ["torch2.3", "stalloc"]
    scale = 0.25 if quick else 1.0
    rows = []
    binding_ranks = set()
    for preset in presets:
        config = workload.preset(preset, micro_batch_size=4 if quick else None)
        for allocator in lineup:
            job = run_job(
                config,
                allocator,
                ranks="all",
                device_name=workload.device_name,
                scale=scale,
            )
            rows.append(_job_row(preset, job))
            binding_ranks.add(job.binding_rank)
    return ExperimentResult(
        experiment_id="job_table",
        title="Job-level (all-rank) peaks of the GPT-2 job: binding rank per preset",
        rows=rows,
        notes=(
            f"Binding ranks observed: {sorted(binding_ranks)}. A job fits only if every "
            "rank fits; rank 0 binds while activations dominate, the last rank binds "
            "once recomputation shrinks them below the fp32 logits."
        ),
    )
