"""Job-level memory tables: every pipeline rank of a training job.

The paper evaluates STAlloc on whole distributed jobs, where a configuration
only works if *every* rank fits -- and the binding rank moves with the
optimization preset: without recomputation the first stage binds (it holds the
most in-flight micro-batches plus the embedding), with recomputation the last
stage usually does (its fp32 vocabulary logits dwarf the checkpointed
activations everyone else keeps).  This experiment reports that per-rank
asymmetry explicitly: per preset and allocator, the job peak (max over ranks),
the mean per-rank peak, the binding rank, job-level success, and the modelled
training throughput.
"""

from __future__ import annotations

from repro.experiments.common import (
    A800_WORKLOADS,
    ExperimentResult,
    PRESETS,
    register_experiment,
)
from repro.gpu.specs import GPU_SPECS
from repro.search.bounds import kv_cache_bytes_floor
from repro.simulator.runner import run_job
from repro.simulator.throughput import ThroughputModel
from repro.timeline import simulate_timeline
from repro.workloads.parallelism import rank_label


def _job_row(preset: str, job) -> dict:
    return {
        "config": preset,
        "allocator": job.allocator_name,
        "num_ranks": job.num_ranks,
        "unique_ranks": len(job.class_runs),
        "binding_rank": job.binding_rank,
        "job_peak_gib": round(job.peak_allocated_gib, 3),
        "mean_rank_peak_gib": round(job.mean_peak_allocated_gib, 3),
        "reserved_gib": round(job.peak_reserved_gib, 3),
        "tflops_per_gpu": job.tflops,
        "tokens_per_second": job.tokens_per_second,
        "status": "ok" if job.success else f"OOM@ranks{job.oom_ranks}",
    }


@register_experiment("job_table")
def run_job_table(*, quick: bool = False) -> ExperimentResult:
    """Per-rank memory asymmetry of the GPT-2 job across presets."""
    workload = A800_WORKLOADS["gpt2-345m"]
    presets = ["Naive", "R"] if quick else PRESETS
    lineup = ["torch2.3", "stalloc"]
    scale = 0.25 if quick else 1.0
    rows = []
    binding_ranks = set()
    for preset in presets:
        config = workload.preset(preset, micro_batch_size=4 if quick else None)
        for allocator in lineup:
            job = run_job(
                config,
                allocator,
                ranks="all",
                device_name=workload.device_name,
                scale=scale,
            )
            rows.append(_job_row(preset, job))
            binding_ranks.add(job.binding_rank)
    return ExperimentResult(
        experiment_id="job_table",
        title="Job-level (all-rank) peaks of the GPT-2 job: binding rank per preset",
        rows=rows,
        notes=(
            f"Binding ranks observed: {sorted(binding_ranks)}. A job fits only if every "
            "rank fits; rank 0 binds while activations dominate, the last rank binds "
            "once recomputation shrinks them below the fp32 logits."
        ),
    )


@register_experiment("ep_table")
def run_ep_table(*, quick: bool = False) -> ExperimentResult:
    """Expert-parallel rank asymmetry of the MoE job across router imbalance.

    At ``moe_imbalance == 0`` the router splits tokens exactly evenly, every
    EP rank of a stage is memory-identical, and the job deduplicates to its
    pipeline classes.  With a skewed router every (pp, ep) coordinate routes a
    different token load, the per-EP-rank peaks spread out, and the binding
    rank becomes a coordinate -- the paper's "dynamicity" argument (§5.2/§6.2)
    at the whole-job level.
    """
    workload = A800_WORKLOADS["qwen1.5-moe-a2.7b"]
    scale = 0.25 if quick else 0.5
    imbalances = [0.0, 0.6]
    allocators = ["torch2.3"] if quick else ["torch2.3", "stalloc"]
    rows = []
    for imbalance in imbalances:
        config = workload.preset("Naive", micro_batch_size=1 if quick else None).with_(
            moe_imbalance=imbalance, num_microbatches=4
        )
        for allocator in allocators:
            job = run_job(
                config,
                allocator,
                ranks="all",
                device_name=workload.device_name,
                scale=scale,
            )
            peaks = {
                rank_label(rank): round(run.replay.metrics.peak_allocated_gib, 3)
                for rank, run in job.runs_by_rank().items()
            }
            rows.append(
                {
                    "imbalance": imbalance,
                    "allocator": allocator,
                    "num_ranks": job.num_ranks,
                    "unique_ranks": len(job.class_runs),
                    "binding_rank": rank_label(job.binding_rank),
                    "job_peak_gib": round(job.peak_allocated_gib, 3),
                    "mean_rank_peak_gib": round(job.mean_peak_allocated_gib, 3),
                    "peak_spread_gib": round(max(peaks.values()) - min(peaks.values()), 3),
                    "status": "ok" if job.success else f"OOM@ranks{job.oom_ranks}",
                }
            )
    return ExperimentResult(
        experiment_id="ep_table",
        title="Expert-parallel asymmetry of the Qwen1.5-MoE job vs. router imbalance",
        rows=rows,
        notes=(
            "With imbalance 0 the EP ranks collapse into their pipeline stage's "
            "equivalence class (unique_ranks == pipeline classes); a skewed router "
            "splits every (pp, ep) coordinate into its own class and widens the "
            "per-rank peak spread the binding rank is chosen from."
        ),
    )


@register_experiment("comm_table")
def run_comm_table(*, quick: bool = False) -> ExperimentResult:
    """Peak memory vs. router imbalance, with and without all-to-all transients.

    The static planner must provision for the load-imbalance-driven memory
    spike of the MoE all-to-all: the dispatch/combine staging buffers scale
    with the tokens actually routed, so the binding EP rank's peak grows with
    ``moe_imbalance`` *through communication*, not just through the expert
    activations.  ``moe_comm_factor == 0`` is the comm-free baseline trace; the
    delta column isolates what communication adds to the provisioning target.
    """
    workload = A800_WORKLOADS["qwen1.5-moe-a2.7b"]
    scale = 0.25 if quick else 0.5
    imbalances = [0.0, 0.6] if quick else [0.0, 0.3, 0.6]
    comm_factors = [0.0, 1.0]
    allocator = "torch2.3"
    rows = []
    for imbalance in imbalances:
        peaks: dict[float, float] = {}
        for comm_factor in comm_factors:
            config = workload.preset("Naive", micro_batch_size=1 if quick else None).with_(
                moe_imbalance=imbalance,
                moe_comm_factor=comm_factor,
                num_microbatches=4,
            )
            job = run_job(
                config,
                allocator,
                ranks="all",
                device_name=workload.device_name,
                scale=scale,
            )
            peaks[comm_factor] = job.peak_allocated_gib
            rows.append(
                {
                    "imbalance": imbalance,
                    "comm_factor": comm_factor,
                    "binding_rank": rank_label(job.binding_rank),
                    "job_peak_gib": round(job.peak_allocated_gib, 3),
                    "comm_peak_gib": round(job.comm_peak_bytes / (1 << 30), 3),
                    "comm_delta_gib": round(
                        job.peak_allocated_gib - peaks[comm_factors[0]], 3
                    ),
                    "status": "ok" if job.success else f"OOM@ranks{job.oom_ranks}",
                }
            )
    return ExperimentResult(
        experiment_id="comm_table",
        title="All-to-all transients: job peak vs. router imbalance and comm factor",
        rows=rows,
        notes=(
            "comm_delta_gib is the peak growth over the comm-free trace of the same "
            "imbalance: the provisioning headroom the all-to-all staging buffers "
            "demand, which widens as routing skews toward hot experts."
        ),
    )


@register_experiment("gen_table")
def run_gen_table(*, quick: bool = False) -> ExperimentResult:
    """Generation workloads: KV-cache growth vs. decode steps, memory and time.

    A generation job is the paper's dynamic-allocation stress case turned up:
    every decode step re-allocates each layer's KV cache one token larger, so
    allocation sizes follow *sequence position* instead of a fixed per-phase
    inventory.  This table sweeps ``decode_steps`` for the GPT-2 job and
    reports, per step count, where the bytes go (job peak, live-KV peak, and
    the search planner's admissible KV floor) and where the time goes (the
    timeline's autoregressive decode tail next to the prefill-dominated
    iteration) -- the provisioning picture a static planner must get right.
    """
    workload = A800_WORKLOADS["gpt2-345m"]
    gpu = GPU_SPECS[workload.device_name]
    scale = 0.25 if quick else 0.5
    step_counts = [0, 8] if quick else [0, 8, 32]
    allocator = "torch2.3"
    rows = []
    baseline_peak: float | None = None
    for steps in step_counts:
        config = workload.preset("Naive", micro_batch_size=4 if quick else None).with_(
            workload_kind="generation", decode_steps=steps
        )
        job = run_job(
            config,
            allocator,
            ranks="all",
            device_name=workload.device_name,
            scale=scale,
        )
        timeline = simulate_timeline(config, gpu=gpu, scale=scale)
        if baseline_peak is None:
            baseline_peak = job.peak_allocated_gib
        rows.append(
            {
                "decode_steps": steps,
                "binding_rank": rank_label(job.binding_rank),
                "job_peak_gib": round(job.peak_allocated_gib, 3),
                "kv_peak_gib": round(job.kv_peak_bytes / (1 << 30), 3),
                "kv_floor_gib": round(
                    kv_cache_bytes_floor(config, scale=scale) / (1 << 30), 3
                ),
                "kv_delta_gib": round(job.peak_allocated_gib - baseline_peak, 3),
                "iteration_ms": round(timeline.iteration_seconds * 1e3, 3),
                "decode_ms": round(timeline.decode_seconds * 1e3, 3),
                "decode_pct": round(
                    100 * timeline.decode_seconds / timeline.iteration_seconds, 2
                ),
                "status": "ok" if job.success else f"OOM@ranks{job.oom_ranks}",
            }
        )
    return ExperimentResult(
        experiment_id="gen_table",
        title="Generation workloads: KV-cache growth and decode time vs. decode steps",
        rows=rows,
        notes=(
            "kv_peak_gib is the binding rank's live KV-cache high-water mark and "
            "kv_floor_gib the planner's admissible lower bound on it (floor <= peak "
            "always); kv_delta_gib is the job-peak growth over the prefill-only run. "
            "decode_ms is the autoregressive tail the timeline prices from per-step "
            "KV reads at HBM bandwidth."
        ),
    )


@register_experiment("timeline_table")
def run_timeline_table(*, quick: bool = False) -> ExperimentResult:
    """Discrete-event iteration time vs. router imbalance and comm factor.

    The memory tables above show *where the bytes go*; this table shows *where
    the time goes*.  The timeline simulator walks every (pp, ep) rank's real
    schedule: pipeline bubbles come out of the forward/backward send-recv
    dependencies and every MoE layer execution runs a synchronising all-to-all
    whose duration follows the maximum routed load across the EP group -- the
    same router draws that size the trace's COMM_BUFFER transients.  Imbalance
    therefore costs time twice, through hot-expert compute and through the
    collectives everyone must wait for, and the slowdown over the closed-form
    analytical estimate quantifies what the closed form cannot see.
    """
    workload = A800_WORKLOADS["qwen1.5-moe-a2.7b"]
    gpu = GPU_SPECS[workload.device_name]
    scale = 0.25 if quick else 0.5
    imbalances = [0.0, 0.6] if quick else [0.0, 0.3, 0.6]
    comm_factors = [0.0, 1.0]
    rows = []
    for imbalance in imbalances:
        for comm_factor in comm_factors:
            config = workload.preset("Naive", micro_batch_size=1 if quick else None).with_(
                moe_imbalance=imbalance,
                moe_comm_factor=comm_factor,
                num_microbatches=4,
            )
            timeline = simulate_timeline(config, gpu=gpu, scale=scale)
            analytical = ThroughputModel(gpu).estimate(config)
            rows.append(
                {
                    "imbalance": imbalance,
                    "comm_factor": comm_factor,
                    "iteration_ms": round(timeline.iteration_seconds * 1e3, 3),
                    "comm_ms": round(timeline.comm_seconds * 1e3, 3),
                    "stall_ms": round(timeline.stall_seconds * 1e3, 3),
                    "bubble_pct": round(100 * timeline.bubble_fraction, 2),
                    "mfu_pct": round(100 * timeline.mfu, 2),
                    "binding_rank": rank_label(timeline.binding_rank),
                    "analytical_ms": round(analytical.iteration_seconds * 1e3, 3),
                    "slowdown_vs_analytical": round(
                        timeline.iteration_seconds / analytical.iteration_seconds, 4
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="timeline_table",
        title="Timeline simulation: iteration time vs. router imbalance and comm factor",
        rows=rows,
        notes=(
            "slowdown_vs_analytical is the simulated iteration over the closed-form "
            "estimate: ~1.0 for a balanced comm-free job (the differential property "
            "the tests pin), growing with imbalance (hot-expert stragglers at every "
            "synchronising all-to-all) and with the comm factor (collective time on "
            "the critical path)."
        ),
    )
