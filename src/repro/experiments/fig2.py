"""Figure 2: PyTorch memory efficiency of GPT-2 with N / V / R optimizations.

The motivation figure: training GPT-2 on 8 A800 GPUs with the stock PyTorch
caching allocator, the baseline configuration is ~90% memory-efficient, but
enabling virtual pipelining or recomputation -- techniques that *should* help
-- visibly drops efficiency and wastes reserved memory.
"""

from __future__ import annotations

from repro.experiments.common import A800_WORKLOADS, ExperimentResult, register_experiment
from repro.simulator.runner import run_workload


@register_experiment("fig2")
def run(*, allocator: str = "torch2.3", quick: bool = False) -> ExperimentResult:
    """Memory efficiency of GPT-2 under no optimization, VPP, and recomputation."""
    workload = A800_WORKLOADS["gpt2-345m"]
    presets = {"N (no optimization)": "Naive", "V (virtual pipeline)": "V", "R (recomputation)": "R"}
    if quick:
        presets = {"N (no optimization)": "Naive", "R (recomputation)": "R"}
    rows = []
    for label, preset in presets.items():
        config = workload.preset(preset)
        run_ = run_workload(config, allocator, device_name=workload.device_name)
        rows.append(
            {
                "optimization": label,
                "allocated_gib": round(run_.replay.metrics.peak_allocated_gib, 2),
                "reserved_gib": round(run_.replay.metrics.peak_reserved_gib, 2),
                "memory_efficiency_pct": round(100 * run_.memory_efficiency, 1),
            }
        )
    return ExperimentResult(
        experiment_id="fig2",
        title=f"GPT-2 memory efficiency under training optimizations ({allocator})",
        rows=rows,
        notes=(
            "Paper: ~90% efficiency with no optimization, ~80% with virtual pipeline, "
            "~60% with recomputation (Figure 2)."
        ),
    )
