"""Experiment harnesses regenerating every table and figure of the paper.

Each experiment is a function registered under the paper's artifact id
(``fig2``, ``fig8a``, ``table1``, ...) that builds the workload, runs the
relevant allocators on a simulated device, and returns an
:class:`~repro.experiments.common.ExperimentResult` containing the rows/series
the paper reports.  ``python -m repro.cli run <id>`` prints any of them.
"""

from repro.experiments import fig1b, fig2, fig3, fig8, fig9, fig10, fig11, fig12, fig13, jobs, tables  # noqa: F401
from repro.experiments.common import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "get_experiment",
    "run_experiment",
]
