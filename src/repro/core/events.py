"""Memory-request event model.

The Allocation Profiler (§4 of the paper) organises every allocation and its
matching free into a *memory request event*::

    m := (s, t_s, t_e, p_s, p_e, dyn)

where ``s`` is the size, ``t_s``/``t_e`` are the allocation and free logical
timestamps, ``p_s``/``p_e`` the computation phases in which the allocation and
free occur, and ``dyn`` flags requests originating from dynamic (MoE expert)
layers.  Dynamic requests additionally carry the originating module names
``l_s``/``l_e`` used to form HomoLayer groups (§5.2).

This module defines that event model plus the raw alloc/free trace events the
workload generator emits and the profiler consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable


class PhaseKind(enum.Enum):
    """Coarse computation-phase categories within one training iteration."""

    INIT = "init"            # weight / optimizer-state materialisation
    FORWARD = "forward"      # forward pass of one micro-batch (per VPP chunk)
    BACKWARD = "backward"    # backward pass of one micro-batch (per VPP chunk)
    OPTIMIZER = "optimizer"  # optimizer step / gradient all-reduce
    OTHER = "other"          # anything outside the above (e.g. dataloader)
    DECODE = "decode"        # one autoregressive decode step over cached context


@dataclass(frozen=True, order=True)
class Phase:
    """One computation phase in a training iteration.

    Phases are totally ordered by ``index``, their position in the iteration's
    schedule.  Two requests belong to the same HomoPhase group exactly when
    their (allocation-phase, free-phase) pairs compare equal.
    """

    index: int
    kind: PhaseKind = field(compare=False)
    microbatch: int = field(default=-1, compare=False)
    chunk: int = field(default=0, compare=False)

    def label(self) -> str:
        """Human-readable label such as ``F(mb=3, chunk=0)``."""
        short = {
            PhaseKind.INIT: "INIT",
            PhaseKind.FORWARD: "F",
            PhaseKind.BACKWARD: "B",
            PhaseKind.OPTIMIZER: "OPT",
            PhaseKind.OTHER: "OTHER",
            PhaseKind.DECODE: "DEC",
        }[self.kind]
        if self.kind in (PhaseKind.FORWARD, PhaseKind.BACKWARD, PhaseKind.DECODE):
            return f"{short}(mb={self.microbatch}, chunk={self.chunk})"
        return short

    def __repr__(self) -> str:
        return f"Phase#{self.index}[{self.label()}]"


def phase_to_dict(phase: Phase) -> dict:
    """JSON-safe encoding shared by trace files and serialized plans."""
    return {
        "index": phase.index,
        "kind": phase.kind.value,
        "microbatch": phase.microbatch,
        "chunk": phase.chunk,
    }


def phase_from_dict(data: dict) -> Phase:
    """Inverse of :func:`phase_to_dict`."""
    return Phase(
        index=data["index"],
        kind=PhaseKind(data["kind"]),
        microbatch=data["microbatch"],
        chunk=data["chunk"],
    )


class TensorCategory(enum.Enum):
    """What kind of tensor a request backs (used for analysis and Table 3)."""

    WEIGHT = "weight"
    GRADIENT = "gradient"
    OPTIMIZER_STATE = "optimizer_state"
    ACTIVATION = "activation"
    TEMPORARY = "temporary"
    COMM_BUFFER = "comm_buffer"
    EXPERT_ACTIVATION = "expert_activation"
    OTHER = "other"
    # Appended last: category codes are the declaration order (columns.py),
    # so new members must never reorder the existing ones.
    KV_CACHE = "kv_cache"


class EventKind(enum.Enum):
    """Raw trace event kinds."""

    ALLOC = "alloc"
    FREE = "free"


@dataclass(frozen=True)
class TraceEvent:
    """A single allocation or free observed at torch-allocator level.

    ``time`` is a logical timestamp: the trace generator increments it once
    per event, which preserves ordering (the only property the planning
    algorithms rely on) without modelling wall-clock durations.
    """

    kind: EventKind
    req_id: int
    size: int
    time: int
    phase: Phase
    module: str = ""
    dyn: bool = False
    category: TensorCategory = TensorCategory.OTHER
    tag: str = ""

    def is_alloc(self) -> bool:
        return self.kind is EventKind.ALLOC

    def is_free(self) -> bool:
        return self.kind is EventKind.FREE


@dataclass(frozen=True)
class MemoryRequest:
    """A paired allocation/free: the planner's unit of work (``m`` in §4)."""

    req_id: int
    size: int
    alloc_time: int
    free_time: int
    alloc_phase: Phase
    free_phase: Phase
    dyn: bool = False
    alloc_module: str = ""
    free_module: str = ""
    category: TensorCategory = TensorCategory.OTHER
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        if self.free_time <= self.alloc_time:
            raise ValueError(
                f"free_time ({self.free_time}) must come after alloc_time ({self.alloc_time})"
            )

    # ------------------------------------------------------------------ #
    # Temporal helpers
    # ------------------------------------------------------------------ #
    @property
    def lifespan(self) -> int:
        """Length of the request's live interval in logical time."""
        return self.free_time - self.alloc_time

    @property
    def phase_pair(self) -> tuple[Phase, Phase]:
        """The (allocation phase, free phase) pair that keys HomoPhase groups."""
        return (self.alloc_phase, self.free_phase)

    @property
    def layer_pair(self) -> tuple[str, str]:
        """The (l_s, l_e) module pair that keys HomoLayer groups (dynamic only)."""
        return (self.alloc_module, self.free_module)

    def overlaps(self, other: "MemoryRequest") -> bool:
        """True when the two requests are live at the same time."""
        return self.alloc_time < other.free_time and other.alloc_time < self.free_time

    def overlaps_interval(self, start: int, end: int) -> bool:
        """True when the request is live anywhere in ``[start, end)``."""
        return self.alloc_time < end and start < self.free_time

    def shifted(self, delta: int) -> "MemoryRequest":
        """Return a copy with both timestamps shifted by ``delta``."""
        return replace(self, alloc_time=self.alloc_time + delta, free_time=self.free_time + delta)

    def memory_time(self) -> int:
        """The request's contribution to the time-memory product numerator."""
        return self.size * self.lifespan


def pair_events(events: Iterable[TraceEvent], *, end_of_trace: int | None = None) -> list[MemoryRequest]:
    """Pair raw alloc/free events into :class:`MemoryRequest` objects.

    Allocations that are never freed within the trace (persistent tensors such
    as weights and optimizer states) are closed at ``end_of_trace`` (defaults
    to one tick past the last observed event) with their free phase set to the
    phase of the final event.

    Raises ``ValueError`` on malformed traces (free without a matching alloc,
    duplicate allocation of the same request id).
    """
    events = list(events)
    if not events:
        return []
    last_time = max(e.time for e in events)
    last_phase = max(events, key=lambda e: (e.time, e.phase.index)).phase
    if end_of_trace is None:
        end_of_trace = last_time + 1

    open_allocs: dict[int, TraceEvent] = {}
    requests: list[MemoryRequest] = []
    for event in events:
        if event.is_alloc():
            if event.req_id in open_allocs:
                raise ValueError(f"request {event.req_id} allocated twice without a free")
            open_allocs[event.req_id] = event
        else:
            alloc = open_allocs.pop(event.req_id, None)
            if alloc is None:
                raise ValueError(f"free of unknown request {event.req_id}")
            requests.append(
                MemoryRequest(
                    req_id=alloc.req_id,
                    size=alloc.size,
                    alloc_time=alloc.time,
                    free_time=event.time,
                    alloc_phase=alloc.phase,
                    free_phase=event.phase,
                    dyn=alloc.dyn,
                    alloc_module=alloc.module,
                    free_module=event.module or alloc.module,
                    category=alloc.category,
                    tag=alloc.tag,
                )
            )
    for alloc in open_allocs.values():
        requests.append(
            MemoryRequest(
                req_id=alloc.req_id,
                size=alloc.size,
                alloc_time=alloc.time,
                free_time=max(end_of_trace, alloc.time + 1),
                alloc_phase=alloc.phase,
                free_phase=last_phase,
                dyn=alloc.dyn,
                alloc_module=alloc.module,
                free_module=alloc.module,
                category=alloc.category,
                tag=alloc.tag,
            )
        )
    requests.sort(key=lambda m: (m.alloc_time, m.req_id))
    return requests
