"""HomoSize groups and memory-layer construction (Algorithm 1, §5.1).

After HomoPhase planning and fusion, many local plans have *exactly* the same
size (every micro-batch behaves identically), differing only in lifespan.  A
*HomoSize group* collects the plans of one size; because any subset with
non-overlapping lifespans can share the same bytes, the group's local layout
is a stack of *memory-layers*: each layer is a byte range of the group's size
that several plans occupy one after another in time.

Algorithm 1 builds the layers greedily: plans are processed in allocation
order and appended to the layer whose last occupant frees latest but still
before the plan starts (minimising idle time), or to a brand-new layer when no
existing layer is free in time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.homophase import LocalPlan


@dataclass
class MemoryLayer:
    """A byte range (of fixed ``size``) shared over time by several plans."""

    size: int
    items: list[LocalPlan] = field(default_factory=list)
    #: Free time of the last item appended in time order (Algorithm 1's ``end``).
    end: int = -1
    #: Absolute base address, assigned by the global planner.
    base: int = 0

    def can_hold(self, plan: LocalPlan) -> bool:
        """True when ``plan`` fits spatially and does not overlap any occupant."""
        if plan.size > self.size:
            return False
        return all(
            not (plan.start_time < item.end_time and item.start_time < plan.end_time)
            for item in self.items
        )

    def append(self, plan: LocalPlan) -> None:
        self.items.append(plan)
        self.end = max(self.end, plan.end_time)

    def idle_time(self, horizon_start: int, horizon_end: int) -> int:
        """Total time within the horizon during which the layer holds nothing."""
        busy = sum(
            max(0, min(item.end_time, horizon_end) - max(item.start_time, horizon_start))
            for item in self.items
        )
        return max(0, (horizon_end - horizon_start) - busy)


def group_by_size(plans: list[LocalPlan]) -> dict[int, list[LocalPlan]]:
    """Partition local plans into HomoSize groups keyed by their size."""
    groups: dict[int, list[LocalPlan]] = defaultdict(list)
    for plan in plans:
        if plan.num_requests == 0:
            continue
        groups[plan.size].append(plan)
    return dict(groups)


def construct_memory_layers(plans: list[LocalPlan], size: int) -> list[MemoryLayer]:
    """Algorithm 1: minimal greedy layering of same-size plans.

    Plans are sorted by allocation (start) time; each plan is appended to the
    layer whose current ``end`` is the largest value still smaller than the
    plan's start time.  This minimises intra-layer idle gaps and, because the
    strategy is equivalent to interval-partitioning, uses the minimum possible
    number of layers.
    """
    if any(plan.size > size for plan in plans):
        raise ValueError("a plan is larger than the layer size it is being packed into")
    layers: list[MemoryLayer] = []
    for plan in sorted(plans, key=lambda p: (p.start_time, p.end_time)):
        best: MemoryLayer | None = None
        for layer in layers:
            if layer.end <= plan.start_time and (best is None or layer.end > best.end):
                best = layer
        if best is None:
            best = MemoryLayer(size=size)
            layers.append(best)
        best.append(plan)
    return layers
