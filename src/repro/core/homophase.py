"""HomoPhase grouping and TMP-guided group fusion (§5.1).

A *HomoPhase group* gathers static requests that are allocated and freed in
the same pair of computation phases.  Each group gets a *local plan*: a
relative-address layout computed by a time-ordered sweep that stacks
overlapping requests and reuses the space of requests that have already been
freed (for groups whose members all overlap this degenerates into the paper's
contiguous stacking).

Adjacent groups -- where one group's free phase equals another's allocation
phase -- are then *fused* so memory can be reused across the phase boundary.
A fusion is kept only when it raises the time-memory product (TMP, Eq. 2)
above the size-time weighted average of the two original plans (Figure 7).

Two fusion strategies are provided:

* ``"repack"`` (default): re-run the sweep over the union of both groups;
* ``"insertion"``: the paper's explicit greedy that walks the larger plan's
  member offsets and slots in the smaller plan's requests.

Both respect the same acceptance test; the ablation benchmark compares them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.events import MemoryRequest, Phase
from repro.core.intervals import IntervalSet


@dataclass(frozen=True)
class PlacedRequest:
    """A request placed at a relative offset inside a local plan."""

    request: MemoryRequest
    offset: int

    @property
    def end_offset(self) -> int:
        return self.offset + self.request.size


@dataclass
class LocalPlan:
    """A relative-address layout for a group of requests.

    Local plans are produced for HomoPhase groups and later become the members
    of HomoSize groups; the global planner finally lifts their relative
    offsets to absolute pool addresses.
    """

    placed: list[PlacedRequest] = field(default_factory=list)
    #: (earliest allocation phase, latest free phase) covered by the group.
    phase_span: tuple[Phase, Phase] | None = None

    @property
    def size(self) -> int:
        """Height of the plan: the reserved bytes it needs (``D_g.s``)."""
        return max((p.end_offset for p in self.placed), default=0)

    @property
    def start_time(self) -> int:
        return min((p.request.alloc_time for p in self.placed), default=0)

    @property
    def end_time(self) -> int:
        return max((p.request.free_time for p in self.placed), default=0)

    @property
    def num_requests(self) -> int:
        return len(self.placed)

    def time_memory_product(self) -> float:
        """TMP = sum(size * lifespan) / (height * group duration)  (Eq. 2)."""
        if not self.placed:
            return 1.0
        numerator = sum(p.request.memory_time() for p in self.placed)
        duration = self.end_time - self.start_time
        denominator = self.size * duration
        if denominator <= 0:
            return 1.0
        return numerator / denominator

    def conflicts(self, offset: int, request: MemoryRequest) -> bool:
        """Would placing ``request`` at ``offset`` overlap an existing member?"""
        end_offset = offset + request.size
        for placed in self.placed:
            if placed.offset < end_offset and offset < placed.end_offset:
                if placed.request.overlaps(request):
                    return True
        return False

    def add(self, request: MemoryRequest, offset: int) -> None:
        self.placed.append(PlacedRequest(request=request, offset=offset))

    def requests(self) -> list[MemoryRequest]:
        return [p.request for p in self.placed]

    def validate(self) -> None:
        """Assert the plan is free of spatio-temporal conflicts (test helper)."""
        ordered = sorted(self.placed, key=lambda p: p.offset)
        for index, placed in enumerate(ordered):
            for other in ordered[index + 1:]:
                if other.offset >= placed.end_offset:
                    break
                if placed.request.overlaps(other.request):
                    raise ValueError(
                        f"local plan conflict between requests "
                        f"{placed.request.req_id} and {other.request.req_id}"
                    )


def pack_requests(
    requests: Iterable[MemoryRequest],
    *,
    phase_span: tuple[Phase, Phase] | None = None,
) -> LocalPlan:
    """Lay out requests with a time-ordered best-fit sweep.

    Requests are processed in allocation order; space freed by requests whose
    lifespan has ended is reused (best fit), otherwise the plan grows at the
    top.  Requests with fully overlapping lifespans therefore end up stacked
    contiguously -- the paper's locally optimal layout for HomoPhase groups --
    while sequential (transient) requests reuse one another's space.
    """
    plan = LocalPlan(phase_span=phase_span)
    ordered = sorted(requests, key=lambda m: (m.alloc_time, m.req_id))
    free = IntervalSet()
    top = 0
    # Min-heap-by-free-time of (free_time, offset, size) for expiry.
    live: list[tuple[int, int, int]] = []
    for request in ordered:
        # Return the space of every request that has already been freed.
        still_live = []
        for free_time, offset, size in live:
            if free_time <= request.alloc_time:
                free.add(offset, offset + size)
            else:
                still_live.append((free_time, offset, size))
        live = still_live

        carved = free.carve(request.size, policy="best_fit")
        if carved is not None:
            offset = carved.start
        else:
            offset = top
            top += request.size
        plan.add(request, offset)
        live.append((request.free_time, offset, request.size))
    return plan


def build_homophase_groups(requests: list[MemoryRequest]) -> list[LocalPlan]:
    """Partition static requests into HomoPhase groups and plan each locally."""
    grouped: dict[tuple[Phase, Phase], list[MemoryRequest]] = defaultdict(list)
    for request in requests:
        grouped[request.phase_pair].append(request)
    plans = [
        pack_requests(members, phase_span=phase_pair)
        for phase_pair, members in grouped.items()
    ]
    plans.sort(key=lambda plan: (plan.start_time, plan.end_time))
    return plans


def fuse_plans_by_insertion(larger: LocalPlan, smaller: LocalPlan) -> LocalPlan:
    """The paper's explicit fusion greedy (Figure 6, upper left).

    Walk candidate addresses starting from the lowest member offset of the
    larger plan, repeatedly placing the earliest-starting unplaced request of
    the smaller plan that fits without a spatio-temporal conflict; when
    nothing fits at the current address, jump to the next member offset.
    Requests that cannot be slotted anywhere are stacked on top, so fusion
    never loses requests.
    """
    merged = LocalPlan(
        placed=list(larger.placed),
        phase_span=_merge_phase_span(larger, smaller),
    )
    pending = [p.request for p in sorted(smaller.placed, key=lambda p: p.request.alloc_time)]
    candidate_offsets = sorted({p.offset for p in larger.placed}) or [0]
    address = candidate_offsets[0]
    max_height = max(larger.size, smaller.size)

    while pending and address < max_height:
        placed_any = False
        for request in pending:
            if address + request.size <= max_height and not merged.conflicts(address, request):
                merged.add(request, address)
                pending.remove(request)
                address += request.size
                placed_any = True
                break
        if not placed_any:
            next_offsets = [offset for offset in candidate_offsets if offset > address]
            if not next_offsets:
                break
            address = next_offsets[0]

    top = merged.size
    for request in pending:
        merged.add(request, top)
        top += request.size
    return merged


def fuse_plans_by_repack(a: LocalPlan, b: LocalPlan) -> LocalPlan:
    """Fusion by re-running the sweep packer over both groups' requests."""
    return pack_requests(a.requests() + b.requests(), phase_span=_merge_phase_span(a, b))


def _merge_phase_span(a: LocalPlan, b: LocalPlan) -> tuple[Phase, Phase] | None:
    spans = [span for span in (a.phase_span, b.phase_span) if span is not None]
    if not spans:
        return None
    start = min((span[0] for span in spans), key=lambda phase: phase.index)
    end = max((span[1] for span in spans), key=lambda phase: phase.index)
    return (start, end)


def weighted_average_tmp(a: LocalPlan, b: LocalPlan) -> float:
    """Size-and-duration weighted average of two plans' TMPs (Figure 7)."""
    weight_a = max(a.size * max(a.end_time - a.start_time, 1), 1)
    weight_b = max(b.size * max(b.end_time - b.start_time, 1), 1)
    return (
        a.time_memory_product() * weight_a + b.time_memory_product() * weight_b
    ) / (weight_a + weight_b)


def attempt_fusion(a: LocalPlan, b: LocalPlan, *, strategy: str = "repack") -> LocalPlan | None:
    """Fuse two plans; return the fused plan if the TMP test accepts it."""
    if strategy == "repack":
        fused = fuse_plans_by_repack(a, b)
    elif strategy == "insertion":
        larger, smaller = (a, b) if a.size >= b.size else (b, a)
        fused = fuse_plans_by_insertion(larger, smaller)
    else:
        raise ValueError(f"unknown fusion strategy {strategy!r}")
    if fused.time_memory_product() > weighted_average_tmp(a, b):
        return fused
    return None


def fuse_adjacent_groups(
    plans: list[LocalPlan],
    *,
    strategy: str = "repack",
    enable_fusion: bool = True,
    max_group_requests: int = 20000,
) -> tuple[list[LocalPlan], int]:
    """Fuse adjacent HomoPhase groups whenever the TMP test accepts it.

    Two groups are *adjacent* when the free phase of one equals the allocation
    phase of the other.  Fusions are applied greedily until no adjacent pair
    passes the acceptance test.  Returns the surviving plans and the number of
    fusions performed.  ``max_group_requests`` caps the size of a fused group
    to bound planning time on extreme traces.
    """
    if not enable_fusion:
        return list(plans), 0
    working: list[LocalPlan | None] = list(plans)
    fused_count = 0
    progress = True
    while progress:
        progress = False
        by_start_phase: dict[int, list[int]] = defaultdict(list)
        for index, plan in enumerate(working):
            if plan is not None and plan.phase_span is not None:
                by_start_phase[plan.phase_span[0].index].append(index)
        for index, plan in enumerate(working):
            if plan is None or plan.phase_span is None:
                continue
            end_phase = plan.phase_span[1].index
            for other_index in by_start_phase.get(end_phase, []):
                other = working[other_index]
                if other is None or other is plan:
                    continue
                if plan.num_requests + other.num_requests > max_group_requests:
                    continue
                fused = attempt_fusion(plan, other, strategy=strategy)
                if fused is None:
                    continue
                working[index] = fused
                working[other_index] = None
                fused_count += 1
                progress = True
                break
            if progress:
                break
    return [plan for plan in working if plan is not None], fused_count
