"""Plan Synthesizer (§5): static allocation planning + dynamic reusable space.

The synthesizer partitions profiled requests into static and dynamic subsets,
produces a low-fragmentation :class:`StaticAllocationPlan` for the static
requests via HomoPhase/HomoSize grouping, then locates the Dynamic Reusable
Space each HomoLayer group of dynamic requests may use at runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.dynamic_space import (
    dynamic_request_group_index,
    homolayer_groups,
    locate_dynamic_reusable_spaces,
)
from repro.core.homophase import build_homophase_groups, fuse_adjacent_groups
from repro.core.plan import StaticAllocationPlan, SynthesizedPlan
from repro.core.planner import GlobalPlannerConfig, build_global_plan, plan_summary
from repro.core.profiler import ProfileResult


@dataclass
class SynthesizerConfig:
    """Tunable behaviour of the Plan Synthesizer.

    The defaults reproduce the paper's design; the switches exist for the
    ablation studies (fusion on/off, gap insertion on/off, planning order).
    """

    enable_fusion: bool = True
    fusion_strategy: str = "repack"
    enable_gap_insertion: bool = True
    descending_size_order: bool = True
    enable_dynamic_reuse: bool = True
    validate_plan: bool = True
    planner: GlobalPlannerConfig = field(init=False)

    def __post_init__(self) -> None:
        self.planner = GlobalPlannerConfig(
            descending_size_order=self.descending_size_order,
            enable_gap_insertion=self.enable_gap_insertion,
        )


class PlanSynthesizer:
    """Generates the ahead-of-time allocation plan from a profiling result."""

    def __init__(self, config: SynthesizerConfig | None = None):
        self.config = config or SynthesizerConfig()

    def synthesize(self, profile: ProfileResult) -> SynthesizedPlan:
        """Produce the static plan and dynamic reusable spaces for one profile."""
        started = time.perf_counter()
        static_requests = profile.static_requests
        dynamic_requests = profile.dynamic_requests

        # --- Static allocation planning (§5.1) -------------------------- #
        phase_groups = build_homophase_groups(static_requests)
        fused_groups, fusion_count = fuse_adjacent_groups(
            phase_groups,
            strategy=self.config.fusion_strategy,
            enable_fusion=self.config.enable_fusion,
        )
        static_plan, layers = build_global_plan(fused_groups, self.config.planner)
        if self.config.validate_plan:
            static_plan.validate()

        # --- Dynamic reusable space (§5.2) ------------------------------ #
        if self.config.enable_dynamic_reuse and dynamic_requests:
            reusable = locate_dynamic_reusable_spaces(
                dynamic_requests, static_plan, profile.module_spans
            )
        else:
            reusable = {}
        group_index = dynamic_request_group_index(dynamic_requests)

        elapsed = time.perf_counter() - started
        info = {
            "synthesis_seconds": elapsed,
            "num_static_requests": len(static_requests),
            "num_dynamic_requests": len(dynamic_requests),
            "num_homophase_groups": len(phase_groups),
            "num_groups_after_fusion": len(fused_groups),
            "num_fusions": fusion_count,
            "num_homolayer_groups": len(homolayer_groups(dynamic_requests)),
            "static_pool_bytes": static_plan.pool_size,
            "peak_static_demand_bytes": _peak_demand(static_requests),
            "layers": plan_summary(layers),
        }
        return SynthesizedPlan(
            static_plan=static_plan,
            dynamic_reusable_spaces=reusable,
            dynamic_request_groups=group_index,
            synthesis_info=info,
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def synthesize_static_only(self, profile: ProfileResult) -> StaticAllocationPlan:
        """Plan only the static requests (used by unit tests and ablations)."""
        return self.synthesize(profile).static_plan


def _peak_demand(requests) -> int:
    """Peak concurrent demand of a request set (lower bound for any plan)."""
    events: list[tuple[int, int]] = []
    for request in requests:
        events.append((request.alloc_time, request.size))
        events.append((request.free_time, -request.size))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak
