"""STAlloc core: profiler, plan synthesizer and runtime allocator.

This package contains the paper's primary contribution:

* :mod:`repro.core.events` -- the memory-request event model
  ``m := (s, t_s, t_e, p_s, p_e, dyn)`` (§4).
* :mod:`repro.core.profiler` -- the Allocation Profiler that pairs alloc/free
  events from a trace into memory-request events (§4).
* :mod:`repro.core.homophase` / :mod:`repro.core.homosize` /
  :mod:`repro.core.planner` -- the Plan Synthesizer's static allocation
  planning: HomoPhase grouping with TMP-guided fusion, HomoSize grouping with
  memory-layer construction (Algorithm 1), and descending-size global
  planning (§5.1).
* :mod:`repro.core.dynamic_space` -- Dynamic Reusable Space location through
  HomoLayer groups (§5.2).
* :mod:`repro.core.runtime` -- the Runtime Allocator with Static Allocator,
  Dynamic Allocator, Request Matcher and caching-allocator fallback (§6).
* :mod:`repro.core.stalloc` -- the :class:`STAlloc` facade tying the pipeline
  together (profile -> synthesize -> allocate).
"""

from repro.core.events import (
    EventKind,
    MemoryRequest,
    Phase,
    PhaseKind,
    TensorCategory,
    TraceEvent,
)
from repro.core.intervals import Interval, IntervalSet
from repro.core.plan import AllocationDecision, StaticAllocationPlan, SynthesizedPlan
from repro.core.profiler import AllocationProfiler, ProfileResult
from repro.core.synthesizer import PlanSynthesizer

#: Exports that (transitively) import repro.allocators are loaded lazily:
#: repro.allocators.base itself imports repro.core.events, so an eager import
#: here would make ``import repro.allocators`` (or anything that starts from
#: it, e.g. ``import repro.simulator.replay``) fail with a circular-import
#: error depending on which package happened to be imported first.
_LAZY_EXPORTS = {
    "RuntimeAllocator": ("repro.core.runtime", "RuntimeAllocator"),
    "STAlloc": ("repro.core.stalloc", "STAlloc"),
    "STAllocConfig": ("repro.core.stalloc", "STAllocConfig"),
}


def __getattr__(name: str):
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value

__all__ = [
    "EventKind",
    "MemoryRequest",
    "Phase",
    "PhaseKind",
    "TensorCategory",
    "TraceEvent",
    "Interval",
    "IntervalSet",
    "AllocationDecision",
    "StaticAllocationPlan",
    "SynthesizedPlan",
    "AllocationProfiler",
    "ProfileResult",
    "PlanSynthesizer",
    "RuntimeAllocator",
    "STAlloc",
    "STAllocConfig",
]
