"""STAlloc core: profiler, plan synthesizer and runtime allocator.

This package contains the paper's primary contribution:

* :mod:`repro.core.events` -- the memory-request event model
  ``m := (s, t_s, t_e, p_s, p_e, dyn)`` (§4).
* :mod:`repro.core.profiler` -- the Allocation Profiler that pairs alloc/free
  events from a trace into memory-request events (§4).
* :mod:`repro.core.homophase` / :mod:`repro.core.homosize` /
  :mod:`repro.core.planner` -- the Plan Synthesizer's static allocation
  planning: HomoPhase grouping with TMP-guided fusion, HomoSize grouping with
  memory-layer construction (Algorithm 1), and descending-size global
  planning (§5.1).
* :mod:`repro.core.dynamic_space` -- Dynamic Reusable Space location through
  HomoLayer groups (§5.2).
* :mod:`repro.core.runtime` -- the Runtime Allocator with Static Allocator,
  Dynamic Allocator, Request Matcher and caching-allocator fallback (§6).
* :mod:`repro.core.stalloc` -- the :class:`STAlloc` facade tying the pipeline
  together (profile -> synthesize -> allocate).
"""

from repro.core.events import (
    EventKind,
    MemoryRequest,
    Phase,
    PhaseKind,
    TensorCategory,
    TraceEvent,
)
from repro.core.intervals import Interval, IntervalSet
from repro.core.plan import AllocationDecision, StaticAllocationPlan, SynthesizedPlan
from repro.core.profiler import AllocationProfiler, ProfileResult
from repro.core.runtime import RuntimeAllocator
from repro.core.stalloc import STAlloc, STAllocConfig
from repro.core.synthesizer import PlanSynthesizer

__all__ = [
    "EventKind",
    "MemoryRequest",
    "Phase",
    "PhaseKind",
    "TensorCategory",
    "TraceEvent",
    "Interval",
    "IntervalSet",
    "AllocationDecision",
    "StaticAllocationPlan",
    "SynthesizedPlan",
    "AllocationProfiler",
    "ProfileResult",
    "PlanSynthesizer",
    "RuntimeAllocator",
    "STAlloc",
    "STAllocConfig",
]
