"""Allocation-plan data structures.

The Plan Synthesizer's output consists of:

* a :class:`StaticAllocationPlan` -- one :class:`AllocationDecision` per static
  request, i.e. the profiled request augmented with the start address ``a`` it
  must be placed at (``d := m + (a)`` in §5.1), together with the total size
  of the static memory pool those addresses live in;
* a set of *Dynamic Reusable Spaces* -- for every HomoLayer group of dynamic
  requests, the address intervals of the static pool that remain idle
  throughout that group's temporal range (§5.2).

Both are bundled in :class:`SynthesizedPlan`, which is what the Runtime
Allocator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import MemoryRequest
from repro.core.intervals import IntervalSet


@dataclass(frozen=True)
class AllocationDecision:
    """A static request together with its planned start address."""

    request: MemoryRequest
    address: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"planned address must be non-negative, got {self.address}")

    @property
    def size(self) -> int:
        return self.request.size

    @property
    def end_address(self) -> int:
        return self.address + self.request.size

    def conflicts_with(self, other: "AllocationDecision") -> bool:
        """True when the two decisions overlap in both space and time."""
        space_overlap = self.address < other.end_address and other.address < self.end_address
        return space_overlap and self.request.overlaps(other.request)


@dataclass
class StaticAllocationPlan:
    """Planned addresses for every static request of one iteration."""

    decisions: list[AllocationDecision] = field(default_factory=list)
    pool_size: int = 0

    def __post_init__(self) -> None:
        if self.pool_size == 0 and self.decisions:
            self.pool_size = max(decision.end_address for decision in self.decisions)

    def __len__(self) -> int:
        return len(self.decisions)

    def by_request_id(self) -> dict[int, AllocationDecision]:
        """Index the plan by the profiled request id."""
        return {decision.request.req_id: decision for decision in self.decisions}

    def peak_planned_bytes(self) -> int:
        """Highest end address used by any decision (<= ``pool_size``)."""
        if not self.decisions:
            return 0
        return max(decision.end_address for decision in self.decisions)

    def validate(self) -> None:
        """Check the fundamental planning constraint: no spatio-temporal overlap.

        Runs an address-ordered sweep so validation is ``O(n log n + k)`` with
        ``k`` the number of actually-overlapping address pairs, which is what
        the tests and the synthesizer's self-check use.
        """
        for decision in self.decisions:
            if decision.end_address > self.pool_size:
                raise ValueError(
                    f"decision for request {decision.request.req_id} ends at "
                    f"{decision.end_address}, beyond the pool size {self.pool_size}"
                )
        ordered = sorted(self.decisions, key=lambda d: d.address)
        active: list[AllocationDecision] = []
        for decision in ordered:
            still_active = []
            for other in active:
                if other.end_address > decision.address:
                    still_active.append(other)
                    if decision.conflicts_with(other):
                        raise ValueError(
                            "memory stomping: requests "
                            f"{decision.request.req_id} and {other.request.req_id} overlap "
                            "in both address range and lifespan"
                        )
            active = still_active
            active.append(decision)

    def allocated_time_memory(self) -> int:
        """Numerator of the plan-level time-memory product."""
        return sum(decision.request.memory_time() for decision in self.decisions)


@dataclass
class SynthesizedPlan:
    """Everything the Runtime Allocator needs: static plan + dynamic spaces."""

    static_plan: StaticAllocationPlan
    #: HomoLayer-group key (alloc module, free module) -> reusable address space.
    dynamic_reusable_spaces: dict[tuple[str, str], IntervalSet] = field(default_factory=dict)
    #: Profiled dynamic request id -> its HomoLayer-group key, used by the
    #: runtime Request Matcher to route dynamic requests to the right space.
    dynamic_request_groups: dict[int, tuple[str, str]] = field(default_factory=dict)
    #: Statistics recorded during synthesis (group counts, timings, ...).
    synthesis_info: dict = field(default_factory=dict)

    @property
    def pool_size(self) -> int:
        return self.static_plan.pool_size

    def reusable_space_for(self, alloc_module: str, free_module: str) -> IntervalSet:
        """Reusable space for a dynamic request's HomoLayer group (may be empty)."""
        return self.dynamic_reusable_spaces.get((alloc_module, free_module), IntervalSet())
