"""Allocation-plan data structures.

The Plan Synthesizer's output consists of:

* a :class:`StaticAllocationPlan` -- one :class:`AllocationDecision` per static
  request, i.e. the profiled request augmented with the start address ``a`` it
  must be placed at (``d := m + (a)`` in §5.1), together with the total size
  of the static memory pool those addresses live in;
* a set of *Dynamic Reusable Spaces* -- for every HomoLayer group of dynamic
  requests, the address intervals of the static pool that remain idle
  throughout that group's temporal range (§5.2).

Both are bundled in :class:`SynthesizedPlan`, which is what the Runtime
Allocator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import (
    MemoryRequest,
    Phase,
    TensorCategory,
    phase_from_dict,
    phase_to_dict,
)
from repro.core.intervals import IntervalSet


def _request_to_dict(request: MemoryRequest) -> dict:
    """Serialize a request, referring to phases by index (see the phase table)."""
    return {
        "req_id": request.req_id,
        "size": request.size,
        "alloc_time": request.alloc_time,
        "free_time": request.free_time,
        "alloc_phase": request.alloc_phase.index,
        "free_phase": request.free_phase.index,
        "dyn": request.dyn,
        "alloc_module": request.alloc_module,
        "free_module": request.free_module,
        "category": request.category.value,
        "tag": request.tag,
    }


def _request_from_dict(data: dict, phases: dict[int, Phase]) -> MemoryRequest:
    return MemoryRequest(
        req_id=data["req_id"],
        size=data["size"],
        alloc_time=data["alloc_time"],
        free_time=data["free_time"],
        alloc_phase=phases[data["alloc_phase"]],
        free_phase=phases[data["free_phase"]],
        dyn=data["dyn"],
        alloc_module=data["alloc_module"],
        free_module=data["free_module"],
        category=TensorCategory(data["category"]),
        tag=data["tag"],
    )


@dataclass(frozen=True)
class AllocationDecision:
    """A static request together with its planned start address."""

    request: MemoryRequest
    address: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"planned address must be non-negative, got {self.address}")

    @property
    def size(self) -> int:
        return self.request.size

    @property
    def end_address(self) -> int:
        return self.address + self.request.size

    def conflicts_with(self, other: "AllocationDecision") -> bool:
        """True when the two decisions overlap in both space and time."""
        space_overlap = self.address < other.end_address and other.address < self.end_address
        return space_overlap and self.request.overlaps(other.request)


@dataclass
class StaticAllocationPlan:
    """Planned addresses for every static request of one iteration."""

    decisions: list[AllocationDecision] = field(default_factory=list)
    pool_size: int = 0

    def __post_init__(self) -> None:
        if self.pool_size == 0 and self.decisions:
            self.pool_size = max(decision.end_address for decision in self.decisions)

    def __len__(self) -> int:
        return len(self.decisions)

    def by_request_id(self) -> dict[int, AllocationDecision]:
        """Index the plan by the profiled request id."""
        return {decision.request.req_id: decision for decision in self.decisions}

    def peak_planned_bytes(self) -> int:
        """Highest end address used by any decision (<= ``pool_size``)."""
        if not self.decisions:
            return 0
        return max(decision.end_address for decision in self.decisions)

    def validate(self) -> None:
        """Check the fundamental planning constraint: no spatio-temporal overlap.

        Runs an address-ordered sweep so validation is ``O(n log n + k)`` with
        ``k`` the number of actually-overlapping address pairs, which is what
        the tests and the synthesizer's self-check use.
        """
        for decision in self.decisions:
            if decision.end_address > self.pool_size:
                raise ValueError(
                    f"decision for request {decision.request.req_id} ends at "
                    f"{decision.end_address}, beyond the pool size {self.pool_size}"
                )
        ordered = sorted(self.decisions, key=lambda d: d.address)
        active: list[AllocationDecision] = []
        for decision in ordered:
            still_active = []
            for other in active:
                if other.end_address > decision.address:
                    still_active.append(other)
                    if decision.conflicts_with(other):
                        raise ValueError(
                            "memory stomping: requests "
                            f"{decision.request.req_id} and {other.request.req_id} overlap "
                            "in both address range and lifespan"
                        )
            active = still_active
            active.append(decision)

    def allocated_time_memory(self) -> int:
        """Numerator of the plan-level time-memory product."""
        return sum(decision.request.memory_time() for decision in self.decisions)

    # ------------------------------------------------------------------ #
    # Serialization (used by the sweep engine's persistent plan cache)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """JSON-safe representation (phases deduplicated into a table)."""
        phases: dict[int, Phase] = {}
        for decision in self.decisions:
            for phase in (decision.request.alloc_phase, decision.request.free_phase):
                phases.setdefault(phase.index, phase)
        return {
            "pool_size": self.pool_size,
            "phases": [phase_to_dict(phases[index]) for index in sorted(phases)],
            "decisions": [
                {"address": decision.address, "request": _request_to_dict(decision.request)}
                for decision in self.decisions
            ],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "StaticAllocationPlan":
        phases = {entry["index"]: phase_from_dict(entry) for entry in data["phases"]}
        decisions = [
            AllocationDecision(
                request=_request_from_dict(entry["request"], phases),
                address=entry["address"],
            )
            for entry in data["decisions"]
        ]
        return cls(decisions=decisions, pool_size=data["pool_size"])


@dataclass
class SynthesizedPlan:
    """Everything the Runtime Allocator needs: static plan + dynamic spaces."""

    static_plan: StaticAllocationPlan
    #: HomoLayer-group key (alloc module, free module) -> reusable address space.
    dynamic_reusable_spaces: dict[tuple[str, str], IntervalSet] = field(default_factory=dict)
    #: Profiled dynamic request id -> its HomoLayer-group key, used by the
    #: runtime Request Matcher to route dynamic requests to the right space.
    dynamic_request_groups: dict[int, tuple[str, str]] = field(default_factory=dict)
    #: Statistics recorded during synthesis (group counts, timings, ...).
    synthesis_info: dict = field(default_factory=dict)

    @property
    def pool_size(self) -> int:
        return self.static_plan.pool_size

    def reusable_space_for(self, alloc_module: str, free_module: str) -> IntervalSet:
        """Reusable space for a dynamic request's HomoLayer group (may be empty)."""
        return self.dynamic_reusable_spaces.get((alloc_module, free_module), IntervalSet())

    # ------------------------------------------------------------------ #
    # Serialization (used by the sweep engine's persistent plan cache)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """JSON-safe representation of the full plan (static + dynamic parts)."""
        return {
            "static_plan": self.static_plan.to_json_dict(),
            "dynamic_reusable_spaces": [
                {
                    "alloc_module": alloc_module,
                    "free_module": free_module,
                    "intervals": [[iv.start, iv.end] for iv in spaces],
                }
                for (alloc_module, free_module), spaces in self.dynamic_reusable_spaces.items()
            ],
            "dynamic_request_groups": [
                [req_id, group[0], group[1]]
                for req_id, group in self.dynamic_request_groups.items()
            ],
            "synthesis_info": self.synthesis_info,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "SynthesizedPlan":
        spaces = {
            (entry["alloc_module"], entry["free_module"]): IntervalSet(
                (start, end) for start, end in entry["intervals"]
            )
            for entry in data["dynamic_reusable_spaces"]
        }
        groups = {
            req_id: (alloc_module, free_module)
            for req_id, alloc_module, free_module in data["dynamic_request_groups"]
        }
        return cls(
            static_plan=StaticAllocationPlan.from_json_dict(data["static_plan"]),
            dynamic_reusable_spaces=spaces,
            dynamic_request_groups=groups,
            synthesis_info=data["synthesis_info"],
        )
