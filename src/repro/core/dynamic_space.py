"""Dynamic Reusable Space location (§5.2).

Dynamic (MoE expert) requests have unpredictable sizes but predictable
lifetimes: a request allocated in expert layer ``l_s`` is freed in layer
``l_e``.  All dynamic requests sharing the same ``(l_s, l_e)`` pair form a
*HomoLayer group*; the group's temporal range runs from the start of ``l_s``'s
execution to the end of ``l_e``'s execution.  Within that range, every address
of the static pool not touched by any planned static allocation is safe for
dynamic reuse -- the *Dynamic Reusable Space* handed to the runtime dynamic
allocator.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.events import MemoryRequest
from repro.core.intervals import IntervalSet
from repro.core.plan import StaticAllocationPlan


def homolayer_groups(dynamic_requests: list[MemoryRequest]) -> dict[tuple[str, str], list[MemoryRequest]]:
    """Group dynamic requests by their (allocation module, free module) pair."""
    groups: dict[tuple[str, str], list[MemoryRequest]] = defaultdict(list)
    for request in dynamic_requests:
        groups[request.layer_pair].append(request)
    return dict(groups)


def group_temporal_range(
    key: tuple[str, str],
    members: list[MemoryRequest],
    module_spans: dict[str, tuple[int, int]],
) -> tuple[int, int]:
    """Temporal range ``T(a, b) = [a.start, b.end]`` of one HomoLayer group.

    Falls back to the members' own alloc/free extremes when a module was not
    observed by the profiler (e.g. a module that only issues frees).
    """
    alloc_module, free_module = key
    start_span = module_spans.get(alloc_module)
    end_span = module_spans.get(free_module)
    start = start_span[0] if start_span else min(m.alloc_time for m in members)
    end = end_span[1] if end_span else max(m.free_time for m in members)
    # The range must at least cover the members themselves.
    start = min(start, min(m.alloc_time for m in members))
    end = max(end, max(m.free_time for m in members))
    return start, end


def locate_dynamic_reusable_spaces(
    dynamic_requests: list[MemoryRequest],
    static_plan: StaticAllocationPlan,
    module_spans: dict[str, tuple[int, int]],
) -> dict[tuple[str, str], IntervalSet]:
    """Compute the reusable address intervals for every HomoLayer group.

    For a group with temporal range ``T``, the occupied address set ``A_o`` is
    the union of the address ranges of every static decision whose lifespan
    intersects ``T`` (Eq. 4); the reusable space is its complement within the
    static pool (Eq. 5-6).  The static decisions are scanned with vectorised
    predicates so the cost is ``O(k * N)`` array operations plus
    ``O(sum r_i)`` interval insertions, matching the paper's batched sweep.
    """
    groups = homolayer_groups(dynamic_requests)
    if not groups:
        return {}
    pool_size = static_plan.pool_size
    decisions = static_plan.decisions
    if not decisions or pool_size == 0:
        return {key: IntervalSet() for key in groups}

    alloc_times = np.array([d.request.alloc_time for d in decisions], dtype=np.int64)
    free_times = np.array([d.request.free_time for d in decisions], dtype=np.int64)
    addresses = np.array([d.address for d in decisions], dtype=np.int64)
    ends = np.array([d.end_address for d in decisions], dtype=np.int64)

    spaces: dict[tuple[str, str], IntervalSet] = {}
    for key, members in groups.items():
        start, end = group_temporal_range(key, members, module_spans)
        # A static decision overlaps [start, end] when it is live at any
        # instant of the range (half-open lifespan [alloc, free)).
        mask = (alloc_times <= end) & (free_times > start)
        occupied = IntervalSet()
        for address, end_address in zip(addresses[mask], ends[mask]):
            occupied.add(int(address), int(end_address))
        spaces[key] = occupied.complement(0, pool_size)
    return spaces


def dynamic_request_group_index(dynamic_requests: list[MemoryRequest]) -> dict[int, tuple[str, str]]:
    """Map each profiled dynamic request id to its HomoLayer-group key."""
    return {request.req_id: request.layer_pair for request in dynamic_requests}
