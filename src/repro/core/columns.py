"""Structure-of-arrays (columnar) storage for allocation-trace events.

The object event model (:class:`repro.core.events.TraceEvent`) is ergonomic
but costs one Python object per event -- at production scale (millions of
events per rank) that makes every analytics pass, replay, and serialization
walk millions of attribute lookups.  This module stores one trace as parallel
``numpy`` ``int64`` columns instead:

``kind``         0 = alloc, 1 = free (:data:`KIND_CODES`)
``req_id``       the request id (tensor id)
``size``         bytes requested
``time``         logical timestamp
``phase_index``  ``Phase.index`` of the emitting phase
``module_index`` index into the interned :attr:`TraceColumns.modules` table
``dyn``          1 when the size is only known at runtime
``category``     index into :data:`CATEGORIES` (``TensorCategory`` order)
``tag_index``    index into the interned :attr:`TraceColumns.tags` table

Strings (module paths, tags) are interned into per-trace tables so the
columns stay pure ``int64``.  :class:`repro.workloads.trace.Trace` keeps its
object API as a thin lazy view over these columns: objects are materialized
only when someone actually touches ``trace.events``.

Analytics (`live_bytes`, peaks, histograms) are vectorized here and memoised
per instance; everything returns plain Python ints/lists so callers cannot
tell the difference from the old object-walking implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.events import EventKind, Phase, TensorCategory, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Event-kind codes (column ``kind``).
ALLOC = 0
FREE = 1
KIND_CODES = {EventKind.ALLOC: ALLOC, EventKind.FREE: FREE}
KINDS = (EventKind.ALLOC, EventKind.FREE)

#: Category codes follow the declaration order of :class:`TensorCategory`,
#: which is part of the serialization contract and stable.
CATEGORIES: tuple[TensorCategory, ...] = tuple(TensorCategory)
CATEGORY_CODES = {category: code for code, category in enumerate(CATEGORIES)}
COMM_BUFFER_CODE = CATEGORY_CODES[TensorCategory.COMM_BUFFER]
KV_CACHE_CODE = CATEGORY_CODES[TensorCategory.KV_CACHE]


class ColumnBuilder:
    """Append-only accumulator the trace generator emits events into.

    Appends are plain ``list.append`` (cheaper than growing numpy arrays
    element-wise); :meth:`build` converts to immutable columns once.
    """

    __slots__ = (
        "kind", "req_id", "size", "time", "phase_index", "module_index",
        "dyn", "category", "tag_index", "_modules", "_tags",
    )

    def __init__(self) -> None:
        self.kind: list[int] = []
        self.req_id: list[int] = []
        self.size: list[int] = []
        self.time: list[int] = []
        self.phase_index: list[int] = []
        self.module_index: list[int] = []
        self.dyn: list[int] = []
        self.category: list[int] = []
        self.tag_index: list[int] = []
        self._modules: dict[str, int] = {}
        self._tags: dict[str, int] = {}

    def intern_module(self, module: str) -> int:
        index = self._modules.get(module)
        if index is None:
            index = len(self._modules)
            self._modules[module] = index
        return index

    def intern_tag(self, tag: str) -> int:
        index = self._tags.get(tag)
        if index is None:
            index = len(self._tags)
            self._tags[tag] = index
        return index

    def append(
        self,
        kind: int,
        req_id: int,
        size: int,
        time: int,
        phase_index: int,
        module: str,
        dyn: bool,
        category: int,
        tag: str,
    ) -> None:
        self.kind.append(kind)
        self.req_id.append(req_id)
        self.size.append(size)
        self.time.append(time)
        self.phase_index.append(phase_index)
        self.module_index.append(self.intern_module(module))
        self.dyn.append(1 if dyn else 0)
        self.category.append(category)
        self.tag_index.append(self.intern_tag(tag))

    def __len__(self) -> int:
        return len(self.kind)

    def build(self) -> "TraceColumns":
        return TraceColumns(
            kind=np.asarray(self.kind, dtype=np.int64),
            req_id=np.asarray(self.req_id, dtype=np.int64),
            size=np.asarray(self.size, dtype=np.int64),
            time=np.asarray(self.time, dtype=np.int64),
            phase_index=np.asarray(self.phase_index, dtype=np.int64),
            module_index=np.asarray(self.module_index, dtype=np.int64),
            dyn=np.asarray(self.dyn, dtype=np.int64),
            category=np.asarray(self.category, dtype=np.int64),
            tag_index=np.asarray(self.tag_index, dtype=np.int64),
            modules=tuple(self._modules),
            tags=tuple(self._tags),
        )


@dataclass(frozen=True)
class Pairing:
    """Alloc/free pairing of a trace, when it is *simple*.

    A trace pairs simply when every request id is allocated at most once,
    freed at most once (after its allocation, with the same size), and every
    free has a matching allocation.  Generator traces always qualify;
    hand-built pathological traces (id reuse, mismatched sizes) fall back to
    the event-by-event replay loop.
    """

    ok: bool
    #: Event positions of alloc events, in trace order.
    alloc_pos: np.ndarray
    #: Event positions of free events, in trace order.
    free_pos: np.ndarray
    #: For each free event (in trace order): ordinal of its allocation among
    #: the alloc events.  Empty when ``ok`` is False.
    free_alloc_ordinal: np.ndarray
    #: Ordinals (among alloc events) of allocations never freed.
    survivor_ordinals: np.ndarray


class TraceColumns:
    """Immutable parallel int64 columns describing one trace.

    Derived quantities (live-bytes curve, pairing) are memoised: the arrays
    are treated as immutable once built, exactly like :class:`Trace` itself.
    """

    __slots__ = (
        "kind", "req_id", "size", "time", "phase_index", "module_index",
        "dyn", "category", "tag_index", "modules", "tags",
        "_live_cache", "_pairing_cache",
    )

    def __init__(
        self,
        *,
        kind: np.ndarray,
        req_id: np.ndarray,
        size: np.ndarray,
        time: np.ndarray,
        phase_index: np.ndarray,
        module_index: np.ndarray,
        dyn: np.ndarray,
        category: np.ndarray,
        tag_index: np.ndarray,
        modules: tuple[str, ...],
        tags: tuple[str, ...],
    ) -> None:
        self.kind = kind
        self.req_id = req_id
        self.size = size
        self.time = time
        self.phase_index = phase_index
        self.module_index = module_index
        self.dyn = dyn
        self.category = category
        self.tag_index = tag_index
        self.modules = modules
        self.tags = tags
        self._live_cache: np.ndarray | None = None
        self._pairing_cache: Pairing | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_events(cls, events: Sequence[TraceEvent]) -> "TraceColumns":
        # Columnar construction: one comprehension per column beats a
        # row-at-a-time builder by several times on object-backed traces.
        # ``dict.setdefault(key, len(dict))`` interns in insertion order
        # (the length is evaluated before any insertion happens).
        alloc = EventKind.ALLOC
        codes = CATEGORY_CODES
        modules: dict[str, int] = {}
        tags: dict[str, int] = {}
        return cls(
            kind=np.asarray(
                [ALLOC if e.kind is alloc else FREE for e in events], dtype=np.int64
            ),
            req_id=np.asarray([e.req_id for e in events], dtype=np.int64),
            size=np.asarray([e.size for e in events], dtype=np.int64),
            time=np.asarray([e.time for e in events], dtype=np.int64),
            phase_index=np.asarray([e.phase.index for e in events], dtype=np.int64),
            module_index=np.asarray(
                [modules.setdefault(e.module, len(modules)) for e in events],
                dtype=np.int64,
            ),
            dyn=np.asarray([1 if e.dyn else 0 for e in events], dtype=np.int64),
            category=np.asarray([codes[e.category] for e in events], dtype=np.int64),
            tag_index=np.asarray(
                [tags.setdefault(e.tag, len(tags)) for e in events], dtype=np.int64
            ),
            modules=tuple(modules),
            tags=tuple(tags),
        )

    def to_events(self, phases: Iterable[Phase]) -> list[TraceEvent]:
        """Materialize the object view (one ``TraceEvent`` per row)."""
        phase_by_index = {phase.index: phase for phase in phases}
        modules = self.modules
        tags = self.tags
        return [
            TraceEvent(
                kind=KINDS[kind],
                req_id=req_id,
                size=size,
                time=time,
                phase=phase_by_index[phase_index],
                module=modules[module_index],
                dyn=bool(dyn),
                category=CATEGORIES[category],
                tag=tags[tag_index],
            )
            for kind, req_id, size, time, phase_index, module_index, dyn, category, tag_index in zip(
                self.kind.tolist(),
                self.req_id.tolist(),
                self.size.tolist(),
                self.time.tolist(),
                self.phase_index.tolist(),
                self.module_index.tolist(),
                self.dyn.tolist(),
                self.category.tolist(),
                self.tag_index.tolist(),
            )
        ]

    # ------------------------------------------------------------------ #
    # Vectorized analytics
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        return int(self.kind.shape[0])

    def signed_sizes(self) -> np.ndarray:
        return np.where(self.kind == ALLOC, self.size, -self.size)

    def live_bytes(self) -> np.ndarray:
        """Running live bytes after each event (the allocation curve)."""
        if self._live_cache is None:
            self._live_cache = np.cumsum(self.signed_sizes())
        return self._live_cache

    def peak_allocated_bytes(self) -> int:
        # Positive steps only come from allocs, so the prefix maximum is
        # always attained immediately after an alloc -- identical to the
        # object loop that only samples the peak after allocations.
        if self.num_events == 0:
            return 0
        return max(0, int(self.live_bytes().max()))

    def comm_peak_bytes(self) -> int:
        mask = self.category == COMM_BUFFER_CODE
        if not mask.any():
            return 0
        comm = self.signed_sizes()[mask]
        return max(0, int(np.cumsum(comm).max()))

    def kv_peak_bytes(self) -> int:
        mask = self.category == KV_CACHE_CODE
        if not mask.any():
            return 0
        kv = self.signed_sizes()[mask]
        return max(0, int(np.cumsum(kv).max()))

    def total_allocated_bytes(self) -> int:
        return int(self.size[self.kind == ALLOC].sum())

    @property
    def num_requests(self) -> int:
        return int((self.kind == ALLOC).sum())

    @property
    def num_dynamic_requests(self) -> int:
        return int(((self.kind == ALLOC) & (self.dyn == 1)).sum())

    def allocation_sizes(self, *, min_size: int = 0) -> list[int]:
        mask = self.kind == ALLOC
        if min_size:
            mask &= self.size >= min_size
        return self.size[mask].tolist()

    def distinct_sizes(self, *, min_size: int = 512) -> int:
        mask = (self.kind == ALLOC) & (self.size > min_size)
        return int(np.unique(self.size[mask]).shape[0])

    def size_histogram_items(self, *, min_size: int = 0) -> list[tuple[int, int]]:
        mask = self.kind == ALLOC
        if min_size:
            mask &= self.size >= min_size
        values, counts = np.unique(self.size[mask], return_counts=True)
        return list(zip(values.tolist(), counts.tolist()))

    def static_dynamic_split(self) -> tuple[int, int]:
        alloc = self.kind == ALLOC
        dynamic = int(self.size[alloc & (self.dyn == 1)].sum())
        static = int(self.size[alloc & (self.dyn == 0)].sum())
        return static, dynamic

    def category_bytes(self) -> dict[str, int]:
        alloc = self.kind == ALLOC
        totals: dict[str, int] = {}
        present = np.unique(self.category[alloc])
        for code in present.tolist():
            total = int(self.size[alloc & (self.category == code)].sum())
            totals[CATEGORIES[code].value] = total
        return totals

    def end_time(self) -> int:
        if self.num_events == 0:
            return 0
        return int(self.time[-1]) + 1

    # ------------------------------------------------------------------ #
    # Alloc/free pairing (batch-replay support)
    # ------------------------------------------------------------------ #
    def pairing(self) -> Pairing:
        """Match frees to their allocations; memoised per trace."""
        if self._pairing_cache is None:
            self._pairing_cache = self._compute_pairing()
        return self._pairing_cache

    def _compute_pairing(self) -> Pairing:
        alloc_pos = np.flatnonzero(self.kind == ALLOC)
        free_pos = np.flatnonzero(self.kind == FREE)
        empty = np.empty(0, dtype=np.int64)

        def invalid() -> Pairing:
            return Pairing(
                ok=False,
                alloc_pos=alloc_pos,
                free_pos=free_pos,
                free_alloc_ordinal=empty,
                survivor_ordinals=empty,
            )

        alloc_ids = self.req_id[alloc_pos]
        free_ids = self.req_id[free_pos]
        if np.unique(alloc_ids).shape[0] != alloc_ids.shape[0]:
            return invalid()
        if np.unique(free_ids).shape[0] != free_ids.shape[0]:
            return invalid()
        order = np.argsort(alloc_ids, kind="stable")
        sorted_ids = alloc_ids[order]
        slots = np.searchsorted(sorted_ids, free_ids)
        if slots.shape[0] and (
            (slots >= sorted_ids.shape[0]).any()
            or (sorted_ids[np.minimum(slots, sorted_ids.shape[0] - 1)] != free_ids).any()
        ):
            return invalid()
        free_alloc_ordinal = order[slots] if slots.shape[0] else empty
        matched_pos = alloc_pos[free_alloc_ordinal]
        if (free_pos <= matched_pos).any():
            return invalid()
        if (self.size[free_pos] != self.size[matched_pos]).any():
            return invalid()
        freed = np.zeros(alloc_pos.shape[0], dtype=bool)
        freed[free_alloc_ordinal] = True
        survivor_ordinals = np.flatnonzero(~freed)
        return Pairing(
            ok=True,
            alloc_pos=alloc_pos,
            free_pos=free_pos,
            free_alloc_ordinal=free_alloc_ordinal,
            survivor_ordinals=survivor_ordinals,
        )
