"""The STAlloc facade: profile -> synthesize -> runtime allocation.

:class:`STAlloc` ties the three components of the paper together behind one
object so downstream users (examples, experiments, the replay simulator) can
write::

    stalloc = STAlloc.from_trace(trace)
    allocator = stalloc.build_runtime_allocator(device)

which mirrors deploying the real system: run the Allocation Profiler for a few
iterations, feed the result to the Plan Synthesizer, then load the Runtime
Allocator (a pluggable PyTorch allocator in the original) for the actual
training run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.plan import SynthesizedPlan
from repro.core.profiler import AllocationProfiler, ProfileResult
from repro.core.runtime import RuntimeAllocator
from repro.core.synthesizer import PlanSynthesizer, SynthesizerConfig
from repro.gpu.device import Device
from repro.workloads.trace import Trace

#: Version of the serialized-plan format written by :meth:`STAlloc.to_json_dict`.
#: Bump on incompatible changes so persistent caches discard stale entries.
PLAN_FORMAT_VERSION = 1


@dataclass
class STAllocConfig:
    """End-to-end configuration of the STAlloc pipeline."""

    enable_fusion: bool = True
    fusion_strategy: str = "repack"
    enable_gap_insertion: bool = True
    descending_size_order: bool = True
    enable_dynamic_reuse: bool = True
    validate_plan: bool = True
    profiler_iterations: int = 3

    def synthesizer_config(self) -> SynthesizerConfig:
        return SynthesizerConfig(
            enable_fusion=self.enable_fusion,
            fusion_strategy=self.fusion_strategy,
            enable_gap_insertion=self.enable_gap_insertion,
            descending_size_order=self.descending_size_order,
            enable_dynamic_reuse=self.enable_dynamic_reuse,
            validate_plan=self.validate_plan,
        )


@dataclass
class STAlloc:
    """Profiled + planned STAlloc instance for one training configuration."""

    profile: ProfileResult
    plan: SynthesizedPlan
    config: STAllocConfig = field(default_factory=STAllocConfig)
    #: Planning report computed before serialization; set on instances loaded
    #: from a serialized plan, whose (discarded) profile can no longer
    #: contribute to the report.
    cached_report: dict | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trace(cls, trace: Trace, config: STAllocConfig | None = None) -> "STAlloc":
        """Run the full offline pipeline (profiler + plan synthesizer) on a trace."""
        config = config or STAllocConfig()
        profiler = AllocationProfiler(iterations=config.profiler_iterations)
        profile = profiler.profile(trace)
        synthesizer = PlanSynthesizer(config.synthesizer_config())
        plan = synthesizer.synthesize(profile)
        return cls(profile=profile, plan=plan, config=config)

    @classmethod
    def from_profile(cls, profile: ProfileResult, config: STAllocConfig | None = None) -> "STAlloc":
        """Synthesize a plan from an existing profiling result."""
        config = config or STAllocConfig()
        synthesizer = PlanSynthesizer(config.synthesizer_config())
        plan = synthesizer.synthesize(profile)
        return cls(profile=profile, plan=plan, config=config)

    # ------------------------------------------------------------------ #
    # Runtime
    # ------------------------------------------------------------------ #
    def build_runtime_allocator(self, device: Device) -> RuntimeAllocator:
        """Instantiate the runtime allocator backed by this instance's plan."""
        return RuntimeAllocator(
            device,
            self.plan,
            enable_dynamic_reuse=self.config.enable_dynamic_reuse,
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def static_pool_bytes(self) -> int:
        return self.plan.pool_size

    def planning_report(self) -> dict:
        """Summary of the offline pipeline: group counts, pool size, timings."""
        if self.cached_report is not None:
            return dict(self.cached_report)
        report = dict(self.plan.synthesis_info)
        report.update(self.profile.summary())
        peak = self.profile.peak_allocated_bytes()
        if self.plan.pool_size:
            report["plan_overhead_ratio"] = self.plan.pool_size / max(
                report.get("peak_static_demand_bytes", peak), 1
            )
        return report

    # ------------------------------------------------------------------ #
    # Serialization (plans are cached on disk by the sweep engine)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """JSON-safe snapshot: plan + pipeline config + precomputed report.

        The profiling result itself is not serialized -- the runtime allocator
        only needs the synthesized plan, and the parts of the profile that
        feed reporting are captured in the stored planning report.
        """
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "config": asdict(self.config),
            "plan": self.plan.to_json_dict(),
            "report": self.planning_report(),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "STAlloc":
        """Rebuild a planned STAlloc instance from :meth:`to_json_dict` output."""
        version = data.get("format_version")
        if version != PLAN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported plan format version {version!r} (expected {PLAN_FORMAT_VERSION})"
            )
        return cls(
            profile=ProfileResult(),
            plan=SynthesizedPlan.from_json_dict(data["plan"]),
            config=STAllocConfig(**data["config"]),
            cached_report=data["report"],
        )

    def save_plan(self, path: str | Path) -> None:
        """Write the serialized plan to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_json_dict()), encoding="utf-8")

    @classmethod
    def load_plan(cls, path: str | Path) -> "STAlloc":
        """Load an instance previously stored with :meth:`save_plan`."""
        return cls.from_json_dict(json.loads(Path(path).read_text(encoding="utf-8")))
