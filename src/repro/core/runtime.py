"""Runtime Allocator (§6): static allocator + dynamic allocator + fallback.

At training time STAlloc reserves one contiguous *static memory pool* sized by
the Static Allocation Plan and serves requests as follows:

* the **Request Matcher** routes each incoming request: static requests whose
  size matches the plan go to the Static Allocator, dynamic (MoE) requests go
  to the Dynamic Allocator, anything unexpected falls back;
* the **Static Allocator** simply hands out the pre-planned address (O(1));
  if the planned range is unexpectedly busy -- a plan mismatch -- the request
  falls back instead of stomping memory;
* the **Dynamic Allocator** intersects the request's pre-computed Dynamic
  Reusable Space with the pool's currently free intervals and carves the
  best-fit candidate (Eq. 7); when nothing fits it falls back;
* the **fallback** is a PyTorch-style caching allocator on the same device,
  guaranteeing robustness for mismatches and overflow.

Reserved memory is therefore ``static pool size + fallback reserved bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocators.base import AllocationHints, Allocator, Placement
from repro.allocators.caching import CachingAllocator, CachingAllocatorConfig
from repro.core.intervals import IntervalSet
from repro.core.plan import SynthesizedPlan
from repro.gpu.device import Device


@dataclass
class _PoolPlacement:
    """A live allocation inside the static memory pool."""

    address: int
    size: int
    source: str  # "static" or "dynamic"


class RuntimeAllocator(Allocator):
    """STAlloc's runtime allocator, driven by a synthesized plan."""

    name = "stalloc"

    def __init__(
        self,
        device: Device,
        plan: SynthesizedPlan,
        *,
        enable_dynamic_reuse: bool = True,
        fallback_config: CachingAllocatorConfig | None = None,
    ):
        super().__init__()
        self.device = device
        self.plan = plan
        self.enable_dynamic_reuse = enable_dynamic_reuse
        self._decisions = plan.static_plan.by_request_id()
        self._pool_size = plan.pool_size
        self._pool_allocation = device.malloc(self._pool_size) if self._pool_size else None
        self.stats.device_malloc_calls += 1 if self._pool_allocation else 0
        #: Currently free address intervals of the static pool (``A_a``).
        self._available = IntervalSet.full(0, self._pool_size) if self._pool_size else IntervalSet()
        self._pool_placements: dict[int, _PoolPlacement] = {}
        self.fallback = CachingAllocator(device, fallback_config or CachingAllocatorConfig(label="stalloc-fallback"))
        self._fallback_requests: set[int] = set()
        self.stats.extra.update(
            {
                "static_pool_bytes": self._pool_size,
                "static_bytes": 0,
                "dynamic_pool_bytes": 0,
                "fallback_bytes": 0,
                "dynamic_fallback_bytes": 0,
            }
        )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def reserved_bytes(self) -> int:
        return self._pool_size + self.fallback.reserved_bytes

    @property
    def pool_free_bytes(self) -> int:
        """Bytes of the static pool not currently backing any request."""
        return self._available.total

    # ------------------------------------------------------------------ #
    # Request Matcher
    # ------------------------------------------------------------------ #
    def _do_allocate(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        if hints.dyn:
            return self._allocate_dynamic(req_id, size, hints)
        return self._allocate_static(req_id, size, hints)

    # ------------------------------------------------------------------ #
    # Static Allocator
    # ------------------------------------------------------------------ #
    def _allocate_static(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        decision = self._decisions.get(req_id)
        if decision is None or decision.request.size != size:
            # The runtime request does not match the profiled plan.
            self.stats.plan_mismatches += 1
            return self._allocate_fallback(req_id, size, hints)
        if not self._available.contains(decision.address, decision.end_address):
            # The planned range is busy (e.g. an earlier mismatch cascaded);
            # never stomp memory -- fall back instead.
            self.stats.plan_mismatches += 1
            return self._allocate_fallback(req_id, size, hints)
        self._available.remove(decision.address, decision.end_address)
        self._pool_placements[req_id] = _PoolPlacement(decision.address, size, "static")
        self.stats.extra["static_bytes"] += size
        return Placement(pool="static", address=decision.address, size=size)

    # ------------------------------------------------------------------ #
    # Dynamic Allocator
    # ------------------------------------------------------------------ #
    def _allocate_dynamic(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        if not self.enable_dynamic_reuse or self._pool_size == 0:
            self.stats.extra["dynamic_fallback_bytes"] += size
            return self._allocate_fallback(req_id, size, hints)
        group_key = self.plan.dynamic_request_groups.get(req_id)
        if group_key is None:
            # Unseen dynamic request: derive the group from the module hint,
            # assuming allocation and free happen in the same module.
            group_key = (hints.module, hints.module)
        reusable = self.plan.dynamic_reusable_spaces.get(group_key)
        if reusable is None and hints.module:
            # Fall back to any group allocated from the same module.
            for (alloc_module, _free_module), space in self.plan.dynamic_reusable_spaces.items():
                if alloc_module == hints.module:
                    reusable = space
                    break
        if not reusable:
            self.stats.extra["dynamic_fallback_bytes"] += size
            return self._allocate_fallback(req_id, size, hints)
        candidates = self._available.intersection(reusable)
        carved = candidates.best_fit(size)
        if carved is None:
            self.stats.extra["dynamic_fallback_bytes"] += size
            return self._allocate_fallback(req_id, size, hints)
        address = carved.start
        self._available.remove(address, address + size)
        self._pool_placements[req_id] = _PoolPlacement(address, size, "dynamic")
        self.stats.extra["dynamic_pool_bytes"] += size
        return Placement(pool="static", address=address, size=size)

    # ------------------------------------------------------------------ #
    # Fallback caching allocator
    # ------------------------------------------------------------------ #
    def _allocate_fallback(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        self.stats.fallback_allocs += 1
        self.stats.extra["fallback_bytes"] += size
        placement = self.fallback.allocate(req_id, size, hints)
        self._fallback_requests.add(req_id)
        self.stats.extra["fallback_peak_reserved"] = max(
            self.stats.extra.get("fallback_peak_reserved", 0), self.fallback.reserved_bytes
        )
        return placement

    # ------------------------------------------------------------------ #
    # Free
    # ------------------------------------------------------------------ #
    def _do_free(self, req_id: int) -> None:
        if req_id in self._fallback_requests:
            self._fallback_requests.remove(req_id)
            self.fallback.free(req_id)
            return
        placement = self._pool_placements.pop(req_id)
        self._available.add(placement.address, placement.address + placement.size)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Return the static pool and all cached fallback segments to the device."""
        if self._pool_allocation is not None:
            self.device.free(self._pool_allocation)
            self._pool_allocation = None
        self.fallback.release_cached_segments()

    def overhead_seconds(self) -> float:
        """STAlloc adds no per-request driver calls; only the fallback does."""
        return self.fallback.overhead_seconds()
