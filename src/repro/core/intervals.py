"""Address-interval set algebra.

Both the plan synthesizer (when locating Dynamic Reusable Space, §5.2) and the
runtime Dynamic Allocator (when intersecting reusable space with currently
free space, §6.2) operate on sets of half-open integer intervals
``[start, end)`` over the byte-address space of the static memory pool.

:class:`IntervalSet` keeps its member intervals disjoint, non-empty and sorted
by start address, and provides the union / difference / intersection /
complement operations those components need, plus best-fit and first-fit
carving used for actual allocation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` of byte addresses."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"interval end ({self.end}) must exceed start ({self.start})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, other: "Interval") -> bool:
        return self.start <= other.start and other.end <= self.end

    def contains_point(self, address: int) -> bool:
        return self.start <= address < self.end


class IntervalSet:
    """A set of disjoint, sorted, half-open integer intervals.

    The set is mutable; all mutating operations keep the canonical form
    (sorted, disjoint, no empty intervals, adjacent intervals merged).
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[tuple[int, int] | Interval] = ()):
        self._starts: list[int] = []
        self._ends: list[int] = []
        for interval in intervals:
            start, end = self._coerce(interval)
            self.add(start, end)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(interval: tuple[int, int] | Interval) -> tuple[int, int]:
        if isinstance(interval, Interval):
            return interval.start, interval.end
        start, end = interval
        return int(start), int(end)

    @classmethod
    def full(cls, start: int, end: int) -> "IntervalSet":
        """A set covering the single interval ``[start, end)``."""
        out = cls()
        out.add(start, end)
        return out

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._starts = list(self._starts)
        out._ends = list(self._ends)
        return out

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        for start, end in zip(self._starts, self._ends):
            yield Interval(start, end)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        spans = ", ".join(f"[{s}, {e})" for s, e in zip(self._starts, self._ends))
        return f"IntervalSet({spans})"

    def intervals(self) -> Sequence[Interval]:
        """Return the member intervals as a list."""
        return list(self)

    @property
    def total(self) -> int:
        """Total covered length in bytes."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    @property
    def span(self) -> Interval | None:
        """The bounding interval from the lowest start to the highest end."""
        if not self._starts:
            return None
        return Interval(self._starts[0], self._ends[-1])

    def contains(self, start: int, end: int) -> bool:
        """True when the whole of ``[start, end)`` is covered by the set."""
        if end <= start:
            raise ValueError("contains() requires a non-empty interval")
        idx = bisect.bisect_right(self._starts, start) - 1
        if idx < 0:
            return False
        return self._ends[idx] >= end and self._starts[idx] <= start

    def contains_point(self, address: int) -> bool:
        idx = bisect.bisect_right(self._starts, address) - 1
        return idx >= 0 and address < self._ends[idx]

    # ------------------------------------------------------------------ #
    # Mutating set operations
    # ------------------------------------------------------------------ #
    def add(self, start: int, end: int) -> None:
        """Union ``[start, end)`` into the set (merging adjacent intervals)."""
        if end <= start:
            if end == start:
                return
            raise ValueError(f"invalid interval [{start}, {end})")
        # Find the window of existing intervals that touch or overlap the new one.
        lo = bisect.bisect_left(self._ends, start)
        hi = bisect.bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        self._starts.insert(lo, start)
        self._ends.insert(lo, end)

    def remove(self, start: int, end: int) -> None:
        """Subtract ``[start, end)`` from the set."""
        if end <= start:
            if end == start:
                return
            raise ValueError(f"invalid interval [{start}, {end})")
        lo = bisect.bisect_right(self._ends, start)
        hi = bisect.bisect_left(self._starts, end)
        if lo >= hi:
            return
        new_starts: list[int] = []
        new_ends: list[int] = []
        first_start, last_end = self._starts[lo], self._ends[hi - 1]
        if first_start < start:
            new_starts.append(first_start)
            new_ends.append(start)
        if end < last_end:
            new_starts.append(end)
            new_ends.append(last_end)
        self._starts[lo:hi] = new_starts
        self._ends[lo:hi] = new_ends

    # ------------------------------------------------------------------ #
    # Non-mutating set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "IntervalSet") -> "IntervalSet":
        out = self.copy()
        for interval in other:
            out.add(interval.start, interval.end)
        return out

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        out = self.copy()
        for interval in other:
            out.remove(interval.start, interval.end)
        return out

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Intersect two sets with a linear merge over their intervals."""
        out = IntervalSet()
        a = list(zip(self._starts, self._ends))
        b = list(zip(other._starts, other._ends))
        i = j = 0
        while i < len(a) and j < len(b):
            start = max(a[i][0], b[j][0])
            end = min(a[i][1], b[j][1])
            if start < end:
                out.add(start, end)
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return out

    def complement(self, start: int, end: int) -> "IntervalSet":
        """Return ``[start, end)`` minus this set."""
        out = IntervalSet.full(start, end)
        return out.difference(self)

    # ------------------------------------------------------------------ #
    # Allocation-style carving
    # ------------------------------------------------------------------ #
    def best_fit(self, size: int) -> Interval | None:
        """Smallest member interval that can hold ``size`` bytes (ties: lowest address)."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        best: Interval | None = None
        for interval in self:
            if interval.length >= size and (best is None or interval.length < best.length):
                best = interval
        return best

    def first_fit(self, size: int) -> Interval | None:
        """Lowest-addressed member interval that can hold ``size`` bytes."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        for interval in self:
            if interval.length >= size:
                return interval
        return None

    def carve(self, size: int, *, policy: str = "best_fit") -> Interval | None:
        """Allocate ``size`` bytes out of the set and return the carved interval.

        The carved bytes are removed from the set.  Returns ``None`` when no
        member interval is large enough.
        """
        finder = self.best_fit if policy == "best_fit" else self.first_fit
        candidate = finder(size)
        if candidate is None:
            return None
        carved = Interval(candidate.start, candidate.start + size)
        self.remove(carved.start, carved.end)
        return carved
