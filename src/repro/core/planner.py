"""Global static allocation planning (§5.1, Figure 6 right).

The global planner receives the (possibly fused) HomoPhase local plans,
groups them by size into HomoSize groups, and lays the groups out in
*descending* size order:

1. requests of the current size are first slotted into idle time windows of
   the memory-layers created for larger sizes ("Requests Insertion" in
   Figure 6) -- smaller plans fit into the unused intervals of larger ones;
2. whatever cannot be inserted builds new memory-layers via Algorithm 1;
3. finally every layer receives an absolute base address (layers are simply
   stacked) and each original request's address becomes
   ``layer.base + plan-relative offset``.

The output is a :class:`~repro.core.plan.StaticAllocationPlan` whose pool size
is the sum of the layer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.homophase import LocalPlan
from repro.core.homosize import MemoryLayer, construct_memory_layers, group_by_size
from repro.core.plan import AllocationDecision, StaticAllocationPlan


@dataclass
class GlobalPlannerConfig:
    """Policy knobs of the global planner (exposed for ablation benchmarks)."""

    #: Process HomoSize groups from largest to smallest (the paper's order).
    #: Ascending order is only useful to demonstrate why descending wins.
    descending_size_order: bool = True
    #: Allow smaller plans to reuse idle windows of larger layers.
    enable_gap_insertion: bool = True


def build_global_plan(
    plans: list[LocalPlan],
    config: GlobalPlannerConfig | None = None,
) -> tuple[StaticAllocationPlan, list[MemoryLayer]]:
    """Assign absolute addresses to every request of every local plan."""
    config = config or GlobalPlannerConfig()
    groups = group_by_size(plans)
    sizes = sorted(groups, reverse=config.descending_size_order)

    layers: list[MemoryLayer] = []
    for size in sizes:
        pending: list[LocalPlan] = []
        for plan in sorted(groups[size], key=lambda p: (p.start_time, p.end_time)):
            if config.enable_gap_insertion and _insert_into_existing_layer(plan, layers):
                continue
            pending.append(plan)
        layers.extend(construct_memory_layers(pending, size))

    base = 0
    decisions: list[AllocationDecision] = []
    for layer in layers:
        layer.base = base
        base += layer.size
        for item in layer.items:
            for placed in item.placed:
                decisions.append(
                    AllocationDecision(request=placed.request, address=layer.base + placed.offset)
                )
    static_plan = StaticAllocationPlan(decisions=decisions, pool_size=base)
    return static_plan, layers


def _insert_into_existing_layer(plan: LocalPlan, layers: list[MemoryLayer]) -> bool:
    """Place ``plan`` into the tightest existing layer with a free time window."""
    best: MemoryLayer | None = None
    for layer in layers:
        if layer.can_hold(plan) and (best is None or layer.size < best.size):
            best = layer
    if best is None:
        return False
    best.append(plan)
    return True


def plan_reserved_bytes(layers: list[MemoryLayer]) -> int:
    """Total bytes the layered plan reserves (sum of layer sizes)."""
    return sum(layer.size for layer in layers)


def plan_summary(layers: list[MemoryLayer]) -> dict:
    """Small report used in synthesis_info and the ablation benchmarks."""
    return {
        "num_layers": len(layers),
        "reserved_bytes": plan_reserved_bytes(layers),
        "layer_sizes": [layer.size for layer in layers],
        "items_per_layer": [len(layer.items) for layer in layers],
    }
