"""Allocation Profiler (§4).

The profiler consumes the raw allocation/free event stream of one training
iteration (in the real system: every torch-level malloc/free, executed through
the native GPU APIs so fragmentation cannot cause spurious OOMs) and organises
it into the memory-request events the Plan Synthesizer works on, preserving
the training-level context needed for grouping: computation phase,
micro-batch, module name and the dynamicity flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import MemoryRequest, Phase
from repro.workloads.trace import Trace


@dataclass
class ProfileResult:
    """Everything the Plan Synthesizer needs from a profiling run."""

    requests: list[MemoryRequest] = field(default_factory=list)
    module_spans: dict[str, tuple[int, int]] = field(default_factory=dict)
    phases: list[Phase] = field(default_factory=list)
    end_time: int = 0
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def static_requests(self) -> list[MemoryRequest]:
        """Requests with deterministic size and lifespan (``M_s``)."""
        return [request for request in self.requests if not request.dyn]

    @property
    def dynamic_requests(self) -> list[MemoryRequest]:
        """Requests originating from dynamic (MoE expert) layers (``M_d``)."""
        return [request for request in self.requests if request.dyn]

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def peak_allocated_bytes(self) -> int:
        """Theoretical peak demand, from a sweep over the paired requests."""
        events: list[tuple[int, int]] = []
        for request in self.requests:
            events.append((request.alloc_time, request.size))
            events.append((request.free_time, -request.size))
        events.sort()
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        return peak

    def total_allocated_bytes(self) -> int:
        return sum(request.size for request in self.requests)

    def summary(self) -> dict:
        """Compact profiling report (used by Table 2 and the CLI)."""
        static = self.static_requests
        dynamic = self.dynamic_requests
        return {
            "num_requests": self.num_requests,
            "num_static_requests": len(static),
            "num_dynamic_requests": len(dynamic),
            "static_bytes": sum(r.size for r in static),
            "dynamic_bytes": sum(r.size for r in dynamic),
            "peak_allocated_bytes": self.peak_allocated_bytes(),
            "num_phases": len(self.phases),
            "num_modules": len(self.module_spans),
        }


class AllocationProfiler:
    """Turns a raw trace into the Plan Synthesizer's input."""

    def __init__(self, *, iterations: int = 3):
        if iterations < 1:
            raise ValueError("profiling needs at least one iteration")
        #: Number of iterations the real profiler observes before planning;
        #: only used by the overhead model (the trace itself is one iteration
        #: because training iterations repeat the same request stream).
        self.iterations = iterations

    def profile(self, trace: Trace) -> ProfileResult:
        """Pair the trace's events into memory-request events."""
        requests = trace.to_requests()
        return ProfileResult(
            requests=requests,
            module_spans=dict(trace.module_spans),
            phases=list(trace.phases),
            end_time=trace.end_time(),
            metadata={
                "model_name": trace.metadata.model_name,
                "config_label": trace.metadata.config_label,
                "description": trace.metadata.description,
            },
        )
