"""STAlloc reproduction: spatio-temporal GPU memory planning for LLM training.

This package reproduces the system described in *"STAlloc: Enhancing Memory
Efficiency in Large-Scale Model Training with Spatio-Temporal Planning"*
(EuroSys '26) as a pure-Python simulation:

* :mod:`repro.gpu` -- simulated GPU memory device and virtual-memory API.
* :mod:`repro.allocators` -- baseline allocators (PyTorch caching allocator,
  expandable segments, GMLake-style stitching, native).
* :mod:`repro.workloads` -- LLM training workload models and allocation-trace
  generation (dense and MoE models, parallelism, recomputation, ZeRO, ...).
* :mod:`repro.core` -- the STAlloc contribution: allocation profiler, plan
  synthesizer, and hybrid static/dynamic runtime allocator.
* :mod:`repro.simulator` -- trace replay, memory metrics, and an analytical
  throughput model.
* :mod:`repro.timeline` -- discrete-event iteration-time simulation over the
  per-rank schedules, with routed-load all-to-all communication costs.
* :mod:`repro.experiments` -- harnesses regenerating every table and figure of
  the paper's evaluation.
"""

from repro.version import __version__

__all__ = ["__version__"]
