"""Discrete-event iteration-time simulation (the timing twin of the traces).

Where :mod:`repro.workloads.tracegen` turns a configuration into the
*allocation* behaviour of every rank, this package turns the same
configuration -- same schedules, same router draws -- into its *timing*
behaviour: per-rank event streams whose pipeline bubbles and expert-parallel
straggler stalls emerge from dependencies instead of closed-form fractions.
See :mod:`repro.timeline.simulator` for the model.
"""

from repro.timeline.export import chrome_trace_dict, write_chrome_trace
from repro.timeline.simulator import (
    TIMELINE_VERSION,
    RankTimeline,
    TimelineEvent,
    TimelineResult,
    TimelineSimulator,
    clear_timeline_memo,
    simulate_timeline,
)

__all__ = [
    "TIMELINE_VERSION",
    "RankTimeline",
    "TimelineEvent",
    "TimelineResult",
    "TimelineSimulator",
    "chrome_trace_dict",
    "clear_timeline_memo",
    "simulate_timeline",
    "write_chrome_trace",
]
