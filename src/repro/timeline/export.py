"""Export simulated timelines as Chrome trace-event JSON.

The output loads directly into ``chrome://tracing`` / Perfetto
(https://ui.perfetto.dev): one process, one thread row per simulated
``(pp, ep)`` rank coordinate, one complete ("X") slice per timeline event.
Times convert from simulated seconds to the format's microseconds.

The exporter walks :meth:`RankTimeline.iter_records` -- the raw record
stream -- so exporting never materializes :class:`TimelineEvent` objects.
The event/container conventions live in :mod:`repro.timeline.chrome`, shared
with the observability Chrome sink (:mod:`repro.obs.sinks`) so both kinds of
trace open identically.
"""

from __future__ import annotations

import json
from typing import IO

from repro.gpu.specs import NodeTopology
from repro.timeline.chrome import (
    SECONDS_TO_US,
    count_trace_events,
    process_name_event,
    slice_event,
    thread_name_event,
    trace_container,
)
from repro.timeline.simulator import TimelineResult

#: Event names priced as all-to-all collectives (tier-annotated on export).
_COMM_NAMES = frozenset({"a2a_dispatch", "a2a_combine"})

#: Perfetto colour grouping: slice categories by what the rank is doing.
_CATEGORY = {
    "init": "marker",
    "optimizer": "marker",
    "forward": "compute",
    "backward": "compute",
    "expert_forward": "expert",
    "expert_backward": "expert",
    "a2a_dispatch": "comm",
    "a2a_combine": "comm",
    "stall": "stall",
}


def chrome_trace_dict(result: TimelineResult) -> dict:
    """Render ``result`` as a Chrome trace-event ``dict`` (one process).

    Thread ids follow the sorted rank order; thread-name metadata labels each
    row ``pp<stage>/ep<rank>`` so Perfetto's track names read like the paper's
    rank coordinates.  Zero-duration markers (init/optimizer) become instant
    ("i") events so they stay visible at any zoom level.  On a multi-node
    fabric every a2a slice carries a ``tier`` arg: ``"intra"`` when the
    stage's expert-parallel group sits on one node, ``"mixed"`` when it spans
    nodes (part of the bytes crossed the slow tier).
    """
    coordinates = [(rank.rank + (0,))[:2] for rank in result.ranks]
    topology = NodeTopology(
        pipeline_parallel=max((stage for stage, _ in coordinates), default=0) + 1,
        expert_parallel=max((ep for _, ep in coordinates), default=0) + 1,
        gpus_per_node=result.gpus_per_node,
    )
    events: list[dict] = [
        process_name_event(f"stalloc-repro timeline: {result.description}")
    ]
    for tid, rank in enumerate(result.ranks):
        stage, ep = (rank.rank + (0,))[:2]
        events.append(thread_name_event(f"pp{stage}/ep{ep}", tid=tid))
        spans = topology.ep_group_spans_nodes(stage)
        for kind, start, duration, microbatch, chunk, layer in rank.iter_records():
            args = {"microbatch": microbatch, "chunk": chunk, "layer": layer}
            if kind in _COMM_NAMES:
                args["tier"] = "mixed" if spans else "intra"
            events.append(
                slice_event(
                    kind,
                    _CATEGORY.get(kind, "other"),
                    start * SECONDS_TO_US,
                    duration * SECONDS_TO_US,
                    tid=tid,
                    args=args,
                )
            )
    return trace_container(
        events,
        gpu=result.gpu_name,
        gpus_per_node=result.gpus_per_node,
        iteration_seconds=result.iteration_seconds,
        timeline_version=result.timeline_version,
    )


def write_chrome_trace(result: TimelineResult, destination: str | IO[str]) -> int:
    """Write ``result`` as Chrome trace JSON to a path or open text stream.

    Returns the number of trace events written (slices + instants, excluding
    name metadata).
    """
    payload = chrome_trace_dict(result)
    if hasattr(destination, "write"):
        json.dump(payload, destination, indent=1)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
    return count_trace_events(payload)
