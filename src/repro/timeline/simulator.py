"""Discrete-event iteration-time simulator with routed-load all-to-all costs.

The analytical :class:`~repro.simulator.throughput.ThroughputModel` collapses
an iteration into one closed-form expression: a pipeline-bubble *fraction*, a
tensor-parallel *multiplier*, and no notion of which rank binds.  This module
instead *executes* the iteration: every ``(pp, ep)`` rank coordinate walks its
real 1F1B/interleaved schedule (:func:`repro.workloads.schedule.build_schedule`
-- the exact phase order the allocation traces are generated from) and emits
timestamped compute and communication events.  Three things then *emerge*
instead of being assumed:

* **pipeline bubbles** -- a stage's forward waits for the upstream stage's
  forward (and its backward for the downstream backward), so warm-up/drain
  idle time falls out of the send/recv dependency graph;
* **all-to-all stalls** -- each MoE layer execution runs a dispatch (forward)
  and combine (backward) collective across the expert-parallel group.  The
  collective is *synchronising*: it starts when the last EP peer arrives and
  its duration scales with the **maximum** routed bytes across the group, so
  router imbalance turns directly into straggler time.  The routed loads come
  from the same memoised :class:`~repro.workloads.moe.ExpertRouter` draws that
  size the COMM_BUFFER transients in the allocation trace -- one gating
  decision drives both the memory and the timing model;
* **straggler ranks** -- each EP rank's expert FFN time scales with its local
  routed load, so the binding rank of an imbalanced job is the coordinate
  whose experts attract the most tokens.

Compute durations are calibrated against the analytical model's FLOPs
accounting (the forward/backward of one (micro-batch, chunk) unit gets its
share of ``model_flops / num_gpus``, with the same recomputation and
tensor-parallel multipliers), so with a balanced router and no communication
the simulated iteration converges to the closed-form estimate -- the
differential property the test suite pins.  INIT and OPTIMIZER phases are
zero-duration markers, mirroring the analytical model's scope.

Three cluster-shaped refinements (TIMELINE_VERSION 2):

* **tiered fabric** -- when the :class:`~repro.gpu.specs.GPUSpec` carries
  distinct intra-/inter-node bandwidths and a node size, each all-to-all
  participant's duration prices its routed bytes at its *tier mix* (the
  share of EP peers on its node moves at the fast tier, the rest at the slow
  tier, per :class:`~repro.gpu.specs.NodeTopology`); the synchronising
  collective still completes with its slowest participant.  A single-node or
  equal-tier spec takes the flat single-tier path, bit-identical to the
  version-1 simulator;
* **communication/compute overlap** -- ``TrainingConfig.comm_overlap_factor``
  hides up to that fraction of each collective under the expert compute that
  consumes it: the expert FFN starts ``min(factor * a2a, expert)`` seconds
  before the collective retires.  The a2a event keeps its full duration (so
  ``comm_seconds`` and stall accounting stay honest); only the critical path
  shortens;
* **per-phase allocator overhead** -- ``allocator_overhead_seconds`` (the
  replay's measured per-iteration driver-call cost) is split evenly over the
  ``2 * num_microbatches * chunks`` forward/backward phase units and added to
  each phase's duration *inside* the schedule, so allocator choice moves
  ``iteration_seconds`` through the dependency structure (a slower allocator
  deepens pipeline bubbles downstream) instead of shifting a constant.  With
  no bubbles (pp == 1, dense) the injection degenerates to the old additive
  ``iteration + overhead`` exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.core.events import PhaseKind
from repro.gpu.specs import GPUSpec, NodeTopology, get_gpu
from repro.obs.tracer import span as _obs_span
from repro.simulator.throughput import ThroughputEstimate, ThroughputModel
from repro.workloads.memory_model import ACT_BYTES
from repro.workloads.moe import ExpertRouter
from repro.workloads.schedule import PhaseSpec, build_schedule
from repro.workloads.tracegen import config_fingerprint
from repro.workloads.training import TrainingConfig

#: Bump whenever the simulator's event stream changes for an unchanged
#: configuration, so the golden timeline fixtures fail loudly (and get
#: regenerated) instead of drifting silently.
#: Version 2: hierarchical network fabric (per-tier all-to-all pricing via
#: NodeTopology), comm/compute overlap (``comm_overlap_factor``), per-phase
#: allocator-overhead injection, and ``gpus_per_node`` in the serialized
#: header.  Degenerate configurations (single-node/equal-tier, zero overlap,
#: zero overhead) reproduce version-1 event durations bit-exactly.
#: Version 3: inference and generation workloads -- forward-only pipelines
#: plus autoregressive ``decode`` events whose duration combines a per-token
#: compute share with a KV-read memory term priced at the device's HBM
#: bandwidth.  Training event streams keep their version-2 durations exactly
#: (only the serialized header's version field rotates the digests).
TIMELINE_VERSION = 3

#: Event kinds in code order (the ``kind`` column of the record buffers).
KIND_NAMES = (
    "init",
    "optimizer",
    "forward",
    "backward",
    "expert_forward",
    "expert_backward",
    "a2a_dispatch",
    "a2a_combine",
    "stall",
    "decode",
)
K_INIT = 0
K_OPTIMIZER = 1
K_FORWARD = 2
K_BACKWARD = 3
K_EXPERT_FORWARD = 4
K_EXPERT_BACKWARD = 5
K_A2A_DISPATCH = 6
K_A2A_COMBINE = 7
K_STALL = 8
K_DECODE = 9
_COMPUTE_CODES = frozenset(
    (K_FORWARD, K_BACKWARD, K_EXPERT_FORWARD, K_EXPERT_BACKWARD, K_DECODE)
)
_COMM_CODES = frozenset((K_A2A_DISPATCH, K_A2A_COMBINE))

#: Compiled dense execution plans, keyed by ``(pp, chunks, num_microbatches,
#: workload_kind, decode_steps)`` -- the only inputs the schedule's dataflow
#: order depends on.
_PLAN_CACHE: dict[tuple, tuple[list[tuple], int]] = {}
_PLAN_CACHE_MAX = 64


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped activity of one ``(pp, ep)`` rank coordinate.

    ``kind`` is one of:

    * ``init`` / ``optimizer`` -- zero-duration phase markers;
    * ``forward`` / ``backward`` -- dense compute (per layer for MoE phases,
      per (micro-batch, chunk) unit for dense models);
    * ``expert_forward`` / ``expert_backward`` -- the routed expert FFN work,
      whose duration scales with this rank's local token load;
    * ``a2a_dispatch`` / ``a2a_combine`` -- the synchronising all-to-all
      collective of one layer execution (duration from the max routed bytes
      across the EP group);
    * ``stall`` -- time spent waiting: for an upstream/downstream pipeline
      stage, or for slower EP peers to reach a collective.
    """

    rank: tuple
    kind: str
    start: float
    duration: float
    microbatch: int = -1
    chunk: int = 0
    #: Model-global layer id for per-layer events (-1 for phase-level ones);
    #: matches the layer ids the trace generator keys router draws on.
    layer: int = -1

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class TimelineColumns:
    """Structure-of-arrays view of one rank's event stream."""

    kind: "np.ndarray"
    start: "np.ndarray"
    duration: "np.ndarray"
    microbatch: "np.ndarray"
    chunk: "np.ndarray"
    layer: "np.ndarray"

    @property
    def num_events(self) -> int:
        return int(self.kind.shape[0])


class RankTimeline:
    """Event stream and time accounting of one simulated rank coordinate.

    The simulator emits events as plain ``(kind_code, start, duration,
    microbatch, chunk, layer)`` records; :class:`TimelineEvent` objects (and
    the numpy :attr:`columns` view) are materialized lazily, only when a
    consumer actually asks for them.
    """

    __slots__ = (
        "rank", "compute_seconds", "comm_seconds", "stall_seconds",
        "finish_seconds", "_events", "_records", "_columns",
    )

    def __init__(
        self,
        rank: tuple,
        events: list[TimelineEvent] | None = None,
        compute_seconds: float = 0.0,
        comm_seconds: float = 0.0,
        stall_seconds: float = 0.0,
        finish_seconds: float = 0.0,
        *,
        records: list[tuple] | None = None,
    ):
        if events is not None and records is not None:
            raise ValueError("pass either events or records, not both")
        self.rank = rank
        self.compute_seconds = compute_seconds
        self.comm_seconds = comm_seconds
        self.stall_seconds = stall_seconds
        self.finish_seconds = finish_seconds
        self._events: list[TimelineEvent] | None = events
        self._records: list[tuple] | None = records
        if self._events is None and self._records is None:
            self._events = []
        self._columns: TimelineColumns | None = None

    @property
    def num_events(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._events)

    def iter_records(self):
        """Yield ``(kind_name, start, duration, microbatch, chunk, layer)``."""
        if self._records is not None:
            names = KIND_NAMES
            for kind, start, duration, microbatch, chunk, layer in self._records:
                yield names[kind], start, duration, microbatch, chunk, layer
        else:
            for event in self._events:
                yield (
                    event.kind, event.start, event.duration,
                    event.microbatch, event.chunk, event.layer,
                )

    @property
    def events(self) -> list[TimelineEvent]:
        """Object view of the event stream (materialized lazily, memoised)."""
        if self._events is None:
            rank = self.rank
            names = KIND_NAMES
            self._events = [
                TimelineEvent(
                    rank=rank,
                    kind=names[kind],
                    start=start,
                    duration=duration,
                    microbatch=microbatch,
                    chunk=chunk,
                    layer=layer,
                )
                for kind, start, duration, microbatch, chunk, layer in self._records
            ]
        return self._events

    @property
    def columns(self) -> TimelineColumns:
        """Numpy structure-of-arrays view (built lazily, memoised)."""
        if self._columns is None:
            if self._records is not None:
                rows = self._records
                kinds = [r[0] for r in rows]
                starts = [r[1] for r in rows]
                durations = [r[2] for r in rows]
                microbatches = [r[3] for r in rows]
                chunks = [r[4] for r in rows]
                layers = [r[5] for r in rows]
            else:
                code_of = {name: code for code, name in enumerate(KIND_NAMES)}
                kinds = [code_of[e.kind] for e in self._events]
                starts = [e.start for e in self._events]
                durations = [e.duration for e in self._events]
                microbatches = [e.microbatch for e in self._events]
                chunks = [e.chunk for e in self._events]
                layers = [e.layer for e in self._events]
            self._columns = TimelineColumns(
                kind=np.asarray(kinds, dtype=np.int64),
                start=np.asarray(starts, dtype=np.float64),
                duration=np.asarray(durations, dtype=np.float64),
                microbatch=np.asarray(microbatches, dtype=np.int64),
                chunk=np.asarray(chunks, dtype=np.int64),
                layer=np.asarray(layers, dtype=np.int64),
            )
        return self._columns


@dataclass
class TimelineResult:
    """The simulated iteration: per-rank event streams plus derived metrics."""

    gpu_name: str
    description: str
    ranks: list[RankTimeline]
    iteration_seconds: float
    model_flops_per_iteration: float
    num_gpus: int
    tokens_per_iteration: int
    peak_tflops: float
    #: Node size of the simulated fabric (0 = single node); lets consumers
    #: (Chrome-trace export) rebuild the NodeTopology for tier annotations.
    gpus_per_node: int = 0
    #: Allocator overhead injected into the phase durations (0 when the
    #: simulation ran overhead-free); already part of
    #: :attr:`iteration_seconds`, recorded so downstream accounting never
    #: charges it twice.
    allocator_overhead_seconds: float = 0.0
    timeline_version: int = TIMELINE_VERSION

    @property
    def num_events(self) -> int:
        return sum(rank.num_events for rank in self.ranks)

    @property
    def compute_seconds(self) -> float:
        """Busy (compute) time of the busiest rank."""
        return max(rank.compute_seconds for rank in self.ranks)

    @property
    def comm_seconds(self) -> float:
        """All-to-all time of the most communication-bound rank."""
        return max(rank.comm_seconds for rank in self.ranks)

    @property
    def stall_seconds(self) -> float:
        """Explicit wait time (pipeline + straggler) of the most stalled rank."""
        return max(rank.stall_seconds for rank in self.ranks)

    @property
    def decode_seconds(self) -> float:
        """Autoregressive decode time of the most decode-bound rank.

        Summed from the ``decode`` events (a subset of each rank's compute
        time); 0.0 for training and inference simulations, whose event
        streams contain no decode steps.
        """
        best = 0.0
        for rank in self.ranks:
            total = 0.0
            for kind, _, duration, _, _, _ in rank.iter_records():
                if kind == "decode":
                    total += duration
            if total > best:
                best = total
        return best

    @property
    def bubble_fraction(self) -> float:
        """Fraction of the iteration the busiest rank is *not* computing.

        For a dense balanced pipeline this reduces to the classical
        ``(p - 1) / (chunks * m + p - 1)`` bubble fraction; with all-to-all
        collectives it additionally counts communication and straggler time,
        i.e. everything that keeps the binding rank's SMs idle.
        """
        if self.iteration_seconds <= 0:
            return 0.0
        return max(0.0, 1.0 - self.compute_seconds / self.iteration_seconds)

    @property
    def mfu(self) -> float:
        """Model-FLOPs utilisation implied by the simulated iteration time.

        When the simulation ran with injected allocator overhead (see
        :attr:`allocator_overhead_seconds`) the iteration already charges it
        -- in its scheduled position, not as a constant -- so this matches
        what the estimate's :attr:`ThroughputEstimate.mfu` reports; an
        overhead-free simulation yields the pure zero-overhead MFU.
        """
        if self.peak_tflops <= 0 or self.iteration_seconds <= 0:
            return 0.0
        achieved = self.model_flops_per_iteration / self.num_gpus / self.iteration_seconds
        return achieved / (self.peak_tflops * 1e12)

    @property
    def binding_rank(self) -> tuple:
        """The coordinate that finishes last (ties break to the lowest coord)."""
        return min(
            (rank for rank in self.ranks),
            key=lambda r: (-r.finish_seconds, r.rank),
        ).rank

    def rank_timeline(self, rank: tuple) -> RankTimeline:
        for timeline in self.ranks:
            if timeline.rank == tuple(rank):
                return timeline
        raise KeyError(f"no timeline for rank {rank!r}")

    def to_estimate(self, *, allocator_overhead_seconds: float = 0.0) -> ThroughputEstimate:
        """Adapt the simulation into the shared throughput-estimate shape.

        ``allocator_overhead_seconds`` here is *additional* overhead to add
        on top of the iteration -- a simulation that already had its overhead
        injected into the phase durations (see
        :attr:`allocator_overhead_seconds`) must be adapted with the default
        0, otherwise the overhead would be charged twice.
        """
        return ThroughputEstimate(
            iteration_seconds=self.iteration_seconds,
            model_flops_per_iteration=self.model_flops_per_iteration,
            num_gpus=self.num_gpus,
            allocator_overhead_seconds=allocator_overhead_seconds,
            tokens_per_iteration=self.tokens_per_iteration,
            comm_seconds=self.comm_seconds,
            bubble_fraction=self.bubble_fraction,
            decode_seconds=self.decode_seconds,
            peak_tflops=self.peak_tflops,
            source="timeline",
        )

    # ------------------------------------------------------------------ #
    # Canonical serialization (golden-fixture digests)
    # ------------------------------------------------------------------ #
    def iter_jsonl(self):
        """Canonical JSON-lines rendering of the simulation (sorted keys).

        Two results serialize identically exactly when their event streams
        are equal, which is what :meth:`digest` and the golden timeline
        fixtures rely on.  Floats serialize through ``repr`` (shortest exact
        form), so equality is bit-exact, not approximate.
        """
        header = {
            "timeline_version": self.timeline_version,
            "gpu": self.gpu_name,
            "description": self.description,
            "num_gpus": self.num_gpus,
            "gpus_per_node": self.gpus_per_node,
            "iteration_seconds": self.iteration_seconds,
        }
        yield json.dumps(header, sort_keys=True, separators=(",", ":"))
        for rank in self.ranks:
            coord = list(rank.rank)
            for kind, start, duration, microbatch, chunk, layer in rank.iter_records():
                yield json.dumps(
                    {
                        "rank": coord,
                        "kind": kind,
                        "start": start,
                        "duration": duration,
                        "mb": microbatch,
                        "chunk": chunk,
                        "layer": layer,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )

    def digest(self) -> str:
        """SHA-256 over the canonical serialization (content address)."""
        hasher = hashlib.sha256()
        for line in self.iter_jsonl():
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def as_dict(self) -> dict:
        return {
            "gpu": self.gpu_name,
            "description": self.description,
            "iteration_seconds": self.iteration_seconds,
            "comm_seconds": self.comm_seconds,
            "stall_seconds": self.stall_seconds,
            "decode_seconds": self.decode_seconds,
            "bubble_fraction": self.bubble_fraction,
            "mfu": self.mfu,
            "num_events": self.num_events,
            "binding_rank": list(self.binding_rank),
            "timeline_version": self.timeline_version,
        }


class TimelineSimulator:
    """Simulates one training iteration of every ``(pp, ep)`` rank coordinate.

    The simulation advances *group phases*: expert-parallel peers of one
    pipeline stage execute the identical schedule (only their routed loads
    differ), so one phase of stage ``r`` is processed for all its EP ranks
    together, with per-rank cursors that the synchronising collectives pull
    back into lockstep.  Cross-stage dependencies (activation sends between
    consecutive layer blocks, gradient sends on the way back) gate when a
    group phase may start; phases are processed in dependency order, which is
    exactly a discrete-event execution of the schedule.

    One modelling note on interleaved (virtual-pipeline) schedules: the
    memory-oriented schedule in :mod:`repro.workloads.schedule` drains
    backward units in FIFO order, while true dataflow retires them in reverse
    block order.  The timeline therefore models backward dependencies within
    a chunk's pipeline chain (stage ``r`` waits for stage ``r + 1``) and cuts
    the last-stage wrap edge between chunks -- keeping the simulation
    deadlock-free for every schedule the generator can produce while still
    letting warm-up/drain bubbles emerge from the chains that exist.
    """

    def __init__(
        self,
        config: TrainingConfig,
        *,
        gpu: GPUSpec | str = "A800-80GB",
        seed: int = 0,
        scale: float = 1.0,
        allocator_overhead_seconds: float = 0.0,
    ):
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if allocator_overhead_seconds < 0.0:
            raise ValueError(
                "allocator_overhead_seconds must be >= 0, "
                f"got {allocator_overhead_seconds}"
            )
        self.config = config
        self.gpu = get_gpu(gpu)
        self.seed = seed
        self.scale = scale
        self.allocator_overhead_seconds = allocator_overhead_seconds
        parallelism = config.parallelism
        model = config.model
        self.pp = parallelism.pipeline_parallel
        self.ep = parallelism.expert_parallel if model.is_moe else 1
        self.chunks = parallelism.virtual_pipeline_chunks
        self.num_microbatches = config.num_microbatches
        if model.is_moe and self.ep > 1 and model.num_experts % self.ep:
            raise ValueError(
                f"num_experts ({model.num_experts}) must be divisible by "
                f"expert_parallel ({self.ep}) so the expert-parallel slices "
                f"cover every expert exactly once"
            )
        full_layers = parallelism.layers_per_chunk(model.num_layers)
        #: Simulated layers per chunk, matching TraceGenerator.layers_per_chunk
        #: so router draws key on the same model-global layer ids the
        #: allocation trace uses.
        self.layers = max(1, round(full_layers * scale))
        self.tokens = config.micro_batch_size * config.sequence_length

        # -------------------------------------------------------------- #
        # Durations, calibrated against the analytical FLOPs accounting
        # -------------------------------------------------------------- #
        analytical = ThroughputModel(self.gpu)
        #: Workload-executed model FLOPs: the full train-step accounting for
        #: training (fraction 1.0 -- multiplying is a bit-exact no-op), its
        #: forward third for inference/generation.
        self.model_flops = analytical.model_flops_per_iteration(
            config
        ) * analytical.workload_flops_fraction(config)
        per_gpu_flops = self.model_flops / parallelism.num_gpus
        seconds_per_flop = (
            analytical.communication_multiplier(config) / self.gpu.achievable_flops
        )
        unit_flops = per_gpu_flops / (self.num_microbatches * self.chunks)
        #: Forward / backward seconds of one (micro-batch, chunk) unit.  The
        #: classical 1:2 forward:backward split, plus one extra forward in
        #: the backward under recomputation -- summed over all units this
        #: reproduces the analytical compute_multiplier exactly.  Forward-only
        #: workloads spend the whole (already workload-scaled) unit in the
        #: forward and never schedule a backward.
        if config.is_training:
            self.forward_unit_seconds = unit_flops / 3.0 * seconds_per_flop
            self.backward_unit_seconds = unit_flops * 2.0 / 3.0 * seconds_per_flop
            if config.recompute:
                self.backward_unit_seconds += unit_flops / 3.0 * seconds_per_flop
        else:
            self.forward_unit_seconds = unit_flops * seconds_per_flop
            self.backward_unit_seconds = 0.0

        #: Allocator driver-call cost injected into every compute phase unit:
        #: the replay-measured per-iteration overhead split evenly over the
        #: phase units one rank executes -- ``2 * m * chunks``
        #: forward/backward units for training, ``(1 + decode_steps) * m *
        #: chunks`` forward/decode units for the forward-only workloads.
        #: Summed back over a bubble-free schedule this reproduces the old
        #: additive ``iteration + overhead`` exactly (adding 0.0 is a
        #: bit-exact no-op, so an overhead-free simulation stays
        #: byte-identical).
        if config.is_training:
            phase_units = 2.0 * self.num_microbatches * self.chunks
        else:
            phase_units = (1.0 + config.decode_steps) * self.num_microbatches * self.chunks
        self.unit_overhead_seconds = allocator_overhead_seconds / phase_units
        self.dense_forward_seconds = self.forward_unit_seconds + self.unit_overhead_seconds
        self.dense_backward_seconds = (
            self.backward_unit_seconds + self.unit_overhead_seconds
        )

        #: Decode-step durations by step ordinal (index ``s - 1`` for step
        #: ``s``): each step computes one token per sequence -- a
        #: ``1 / sequence_length`` share of the prefill unit -- and re-reads
        #: the whole cached context through the attention kernels, priced at
        #: the device's HBM bandwidth.  The KV sizing mirrors
        #: ``MemoryModel.kv_bytes_per_token`` (2 * hidden * ACT_BYTES / tp)
        #: so the timing and memory models grow together.
        if config.workload_kind == "generation" and config.decode_steps > 0:
            per_token_compute = self.forward_unit_seconds / config.sequence_length
            kv_per_token = (
                2.0 * model.hidden_size * ACT_BYTES
                / parallelism.tensor_parallel
                * config.micro_batch_size
            )
            hbm_bytes_per_sec = self.gpu.hbm_gbytes_per_sec * 1e9
            self.decode_unit_durations = tuple(
                per_token_compute
                + self.layers * kv_per_token * config.context_tokens_at(step)
                / hbm_bytes_per_sec
                + self.unit_overhead_seconds
                for step in range(1, config.decode_steps + 1)
            )
        else:
            self.decode_unit_durations = ()

        # -------------------------------------------------------------- #
        # Fabric: node topology and per-(stage, ep) fast-tier fractions
        # -------------------------------------------------------------- #
        self.topology = NodeTopology(
            pipeline_parallel=self.pp,
            expert_parallel=self.ep,
            gpus_per_node=self.gpu.gpus_per_node,
        )
        #: Whether the hierarchical pricing path is active.  Single-node or
        #: equal-tier specs use the flat formula -- bit-identical to the
        #: single-tier simulator -- at the effective fast-tier rate (which
        #: falls back to the stock ``a2a_gbytes_per_sec``).
        self._tiered = self.gpu.is_tiered
        self._flat_rate = self.gpu.intra_tier_gbytes_per_sec
        if self._tiered:
            self._intra_fracs = [
                [self.topology.intra_fraction(stage, ep) for ep in range(self.ep)]
                for stage in range(self.pp)
            ]
        else:
            self._intra_fracs = None

        #: Fraction of one layer's compute that lives in the routed experts
        #: (scales with each EP rank's local load); 0 for dense models.
        self.expert_share = self._expert_flops_share()

        if model.is_moe:
            self.num_local_experts = max(1, model.num_experts // self.ep)
            self._router = ExpertRouter(
                num_experts=model.num_experts,
                num_local_experts=self.num_local_experts,
                top_k=model.moe_top_k,
                seed=seed,
                imbalance=config.moe_imbalance,
                ep_rank=0,
            )
        else:
            self.num_local_experts = 0
            self._router = None
        #: Per-simulation memo of (loads, balanced, a2a_duration) keyed by
        #: (global_layer, microbatch); see :meth:`_layer_exec`.
        self._layer_exec_cache: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------ #
    # Duration helpers
    # ------------------------------------------------------------------ #
    def _expert_flops_share(self) -> float:
        """Share of one layer's per-token FLOPs spent in routed experts."""
        model = self.config.model
        if not model.is_moe:
            return 0.0
        expert = 6.0 * model.moe_top_k * model.expert_params()
        dense = 6.0 * (
            model.attention_params()
            + 2 * model.hidden_size
            + model.hidden_size * model.num_experts
        )
        if model.moe_shared_expert_ffn:
            h, f = model.hidden_size, model.moe_shared_expert_ffn
            dense += 6.0 * ((2 if model.gated_mlp else 1) * h * f + f * h)
        dense += 12.0 * model.hidden_size * self.config.sequence_length
        total = dense + expert
        return expert / total if total > 0 else 0.0

    def _a2a_seconds(self, stage: int, loads: list[int]) -> float:
        """Duration of one all-to-all collective of stage ``stage``.

        A synchronising collective completes when its slowest participant has
        moved its data.  On a flat (single-node or equal-tier) fabric that is
        the **maximum** routed bytes across the EP group over the one rate --
        the same ``moe_comm_factor``-scaled activation bytes the trace stages
        as COMM_BUFFER transients.  On a tiered fabric each participant's
        transfer prices its bytes at its *tier mix*: the fraction of EP peers
        on its node moves at the intra-node rate, the remainder crosses at
        the inter-node rate, and the collective takes as long as the slowest
        participant's mix.
        """
        factor = self.config.moe_comm_factor
        if factor <= 0 or not loads:
            return 0.0
        hidden = self.config.model.hidden_size
        if not self._tiered:
            max_tokens = max(loads)
            if max_tokens <= 0:
                return 0.0
            bytes_moved = factor * max_tokens * hidden * ACT_BYTES
            return bytes_moved / (self._flat_rate * 1e9)
        intra = self.gpu.intra_tier_gbytes_per_sec * 1e9
        inter = self.gpu.inter_tier_gbytes_per_sec * 1e9
        fracs = self._intra_fracs[stage]
        duration = 0.0
        for ep, tokens in enumerate(loads):
            if tokens <= 0:
                continue
            bytes_moved = factor * tokens * hidden * ACT_BYTES
            fraction = fracs[ep]
            seconds = (
                bytes_moved * fraction / intra
                + bytes_moved * (1.0 - fraction) / inter
            )
            if seconds > duration:
                duration = seconds
        return duration

    def _global_layer(self, stage: int, chunk: int, layer: int) -> int:
        """Model-global layer id of one execution (same mapping as tracegen)."""
        return (chunk * self.pp + stage) * self.layers + layer

    def _routed_loads(self, global_layer: int, microbatch: int) -> list[int]:
        """Per-EP-rank routed token assignments of one layer execution."""
        counts = self._router.route_global(
            self.tokens, layer=global_layer, microbatch=microbatch
        )
        local = self.num_local_experts
        return [
            sum(counts[ep * local:(ep + 1) * local]) for ep in range(self.ep)
        ]

    # ------------------------------------------------------------------ #
    # Dependencies
    # ------------------------------------------------------------------ #
    def _dependency(self, stage: int, spec: PhaseSpec):
        """Cross-stage phase this phase must wait for (None when unconstrained).

        Layer blocks are numbered ``b = chunk * pp + stage`` (the Megatron
        interleaving assignment).  A forward consumes the activations of
        block ``b - 1``; a backward consumes the gradients of block ``b + 1``
        along the within-chunk pipeline chain (see the class docstring for
        why the interleaved wrap edge is cut).
        """
        if spec.kind is PhaseKind.FORWARD:
            block = spec.chunk * self.pp + stage
            if block == 0:
                return None
            src_stage = (block - 1) % self.pp
            src_chunk = (block - 1) // self.pp
            return (src_stage, "F", spec.microbatch, src_chunk)
        if spec.kind is PhaseKind.BACKWARD:
            block = spec.chunk * self.pp + stage
            if block == self.chunks * self.pp - 1:
                return None  # the loss block: its own forward precedes it in-schedule
            if stage == self.pp - 1:
                return None  # interleaved wrap edge (cut, see class docstring)
            return (stage + 1, "B", spec.microbatch, spec.chunk)
        if spec.kind is PhaseKind.DECODE:
            # A decode step flows through the same block chain as a forward;
            # block 0 additionally waits for the token the *previous* step
            # (or the prefill, for step 1) sampled on the last block -- the
            # autoregressive feedback edge.
            block = spec.chunk * self.pp + stage
            if block > 0:
                src_stage = (block - 1) % self.pp
                src_chunk = (block - 1) // self.pp
                return (src_stage, "D", spec.microbatch, src_chunk, spec.step)
            last_block = self.chunks * self.pp - 1
            last_stage = last_block % self.pp
            last_chunk = last_block // self.pp
            if spec.step == 1:
                return (last_stage, "F", spec.microbatch, last_chunk)
            return (last_stage, "D", spec.microbatch, last_chunk, spec.step - 1)
        return None

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(self, *, force_general: bool = False) -> TimelineResult:
        """Simulate the iteration.

        ``force_general`` routes a dense model through the general event loop
        instead of the compiled fast path; the two are kept bit-identical
        (totals and event streams) by a differential test, which is what lets
        the fast path stay trustworthy as the general loop grows features.
        """
        if self._router is None and not force_general:
            return self._run_dense()
        return self._run_grouped()

    # -- Dense fast path: compiled plan + tight scalar loop ------------- #
    def _compiled_plan(self) -> tuple[list[tuple], int]:
        """Topologically-ordered execution plan of the dense schedule.

        The schedule, its cross-stage dependencies, and therefore the order
        in which phases become executable depend only on ``(pp, chunks,
        num_microbatches)`` -- never on durations (each phase starts when its
        own stage is free *and* its dependency has ended, so the dataflow
        order is fixed by the graph).  The plan is computed once per geometry
        and cached; running it binds the config's actual durations.

        Each entry is ``(stage, kind_code, duration_selector, dep_slot,
        end_slot, microbatch, chunk)`` where slots index a flat array holding
        phase end times (-1 when absent) and the duration selector picks
        0.0 / forward / backward seconds at run time (selector ``2 + s``
        picks the duration of decode step ``s``).
        """
        key = (
            self.pp, self.chunks, self.num_microbatches,
            self.config.workload_kind, self.config.decode_steps,
        )
        plan = _PLAN_CACHE.get(key)
        if plan is None:
            plan = self._build_plan()
            if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
                _PLAN_CACHE.clear()
            _PLAN_CACHE[key] = plan
        return plan

    def _build_plan(self) -> tuple[list[tuple], int]:
        schedules = {
            stage: build_schedule(
                self.config.parallelism, self.num_microbatches, stage,
                workload_kind=self.config.workload_kind,
                decode_steps=self.config.decode_steps,
            )
            for stage in range(self.pp)
        }
        entries: list[tuple] = []
        slot_ids: dict[tuple, int] = {}
        next_index = [0] * self.pp
        remaining = sum(len(schedule) for schedule in schedules.values())
        while remaining:
            progressed = False
            for stage in range(self.pp):
                index = next_index[stage]
                if index >= len(schedules[stage]):
                    continue
                spec = schedules[stage][index]
                dependency = self._dependency(stage, spec)
                if dependency is not None and dependency not in slot_ids:
                    continue
                if spec.kind is PhaseKind.INIT or spec.kind is PhaseKind.OPTIMIZER:
                    code = K_INIT if spec.kind is PhaseKind.INIT else K_OPTIMIZER
                    entries.append((stage, code, 0, -1, -1, -1, 0))
                elif spec.kind is PhaseKind.DECODE:
                    end_key = (stage, "D", spec.microbatch, spec.chunk, spec.step)
                    end_slot = slot_ids.setdefault(end_key, len(slot_ids))
                    dep_slot = slot_ids[dependency] if dependency is not None else -1
                    entries.append((
                        stage,
                        K_DECODE,
                        2 + spec.step,
                        dep_slot,
                        end_slot,
                        spec.microbatch,
                        spec.chunk,
                    ))
                else:
                    forward = spec.kind is PhaseKind.FORWARD
                    end_key = (stage, "F" if forward else "B", spec.microbatch, spec.chunk)
                    end_slot = slot_ids.setdefault(end_key, len(slot_ids))
                    dep_slot = slot_ids[dependency] if dependency is not None else -1
                    entries.append((
                        stage,
                        K_FORWARD if forward else K_BACKWARD,
                        1 if forward else 2,
                        dep_slot,
                        end_slot,
                        spec.microbatch,
                        spec.chunk,
                    ))
                next_index[stage] += 1
                remaining -= 1
                progressed = True
            if not progressed:  # pragma: no cover - guards future schedule changes
                raise RuntimeError(
                    "timeline deadlock: no executable phase left "
                    f"(next indices {next_index})"
                )
        return entries, len(slot_ids)

    def _run_dense(self) -> TimelineResult:
        plan, num_slots = self._compiled_plan()
        pp = self.pp
        clocks = [0.0] * pp
        ends = [0.0] * num_slots
        buffers: list[list[tuple]] = [[] for _ in range(pp)]
        # Accumulated in emission order, so the += chains are bit-identical
        # to the previous per-event ``total += duration`` accumulation.
        compute_totals = [0.0] * pp
        stall_totals = [0.0] * pp
        durations = (
            0.0, self.dense_forward_seconds, self.dense_backward_seconds,
            *self.decode_unit_durations,
        )
        for stage, code, selector, dep_slot, end_slot, microbatch, chunk in plan:
            clock = clocks[stage]
            buffer = buffers[stage]
            if dep_slot >= 0:
                ready = ends[dep_slot]
                if ready > clock:
                    buffer.append((K_STALL, clock, ready - clock, microbatch, chunk, -1))
                    stall_totals[stage] += ready - clock
                    clock = ready
            duration = durations[selector]
            buffer.append((code, clock, duration, microbatch, chunk, -1))
            if selector:
                compute_totals[stage] += duration
                clock += duration
            if end_slot >= 0:
                ends[end_slot] = clock
            clocks[stage] = clock

        rank_timelines = [
            RankTimeline(
                rank=(stage, 0),
                compute_seconds=compute_totals[stage],
                comm_seconds=0.0,
                stall_seconds=stall_totals[stage],
                finish_seconds=clocks[stage],
                records=buffers[stage],
            )
            for stage in range(pp)
        ]
        return self._result(rank_timelines, max(clocks))

    # -- Grouped (MoE) path: per-EP cursors + synchronising collectives - #
    def _run_grouped(self) -> TimelineResult:
        schedules = {
            stage: build_schedule(
                self.config.parallelism, self.num_microbatches, stage,
                workload_kind=self.config.workload_kind,
                decode_steps=self.config.decode_steps,
            )
            for stage in range(self.pp)
        }
        eps = range(self.ep)
        clocks = {(stage, ep): 0.0 for stage in range(self.pp) for ep in eps}
        events: dict[tuple, list[tuple]] = {coord: [] for coord in clocks}
        totals = {coord: {"compute": 0.0, "comm": 0.0, "stall": 0.0} for coord in clocks}
        ends: dict[tuple, dict[int, float]] = {}

        next_index = [0] * self.pp
        remaining = sum(len(schedule) for schedule in schedules.values())
        while remaining:
            progressed = False
            for stage in range(self.pp):
                index = next_index[stage]
                if index >= len(schedules[stage]):
                    continue
                spec = schedules[stage][index]
                dependency = self._dependency(stage, spec)
                if dependency is not None and dependency not in ends:
                    continue
                self._run_phase(stage, spec, dependency, clocks, events, totals, ends)
                next_index[stage] += 1
                remaining -= 1
                progressed = True
            if not progressed:  # pragma: no cover - guards future schedule changes
                raise RuntimeError(
                    "timeline deadlock: no executable phase left "
                    f"(next indices {next_index})"
                )

        iteration = max(clocks.values())
        rank_timelines = [
            RankTimeline(
                rank=coord,
                compute_seconds=totals[coord]["compute"],
                comm_seconds=totals[coord]["comm"],
                stall_seconds=totals[coord]["stall"],
                finish_seconds=clocks[coord],
                records=events[coord],
            )
            for coord in sorted(clocks)
        ]
        return self._result(rank_timelines, iteration)

    def _result(self, rank_timelines: list[RankTimeline], iteration: float) -> TimelineResult:
        return TimelineResult(
            gpu_name=self.gpu.name,
            description=self.config.describe(),
            ranks=rank_timelines,
            iteration_seconds=iteration,
            model_flops_per_iteration=self.model_flops,
            num_gpus=self.config.parallelism.num_gpus,
            tokens_per_iteration=self.config.tokens_per_iteration,
            peak_tflops=self.gpu.peak_tflops,
            gpus_per_node=self.gpu.gpus_per_node,
            allocator_overhead_seconds=self.allocator_overhead_seconds,
        )

    # ------------------------------------------------------------------ #
    # Phase bodies
    # ------------------------------------------------------------------ #
    def _emit(self, events, totals, coord, kind, start, duration, spec=None, layer=-1):
        if spec is not None:
            events[coord].append(
                (kind, start, duration, spec.microbatch, spec.chunk, layer)
            )
        else:
            events[coord].append((kind, start, duration, -1, 0, layer))
        if kind in _COMPUTE_CODES:
            totals[coord]["compute"] += duration
        elif kind in _COMM_CODES:
            totals[coord]["comm"] += duration
        elif kind == K_STALL:
            totals[coord]["stall"] += duration

    def _run_phase(self, stage, spec, dependency, clocks, events, totals, ends):
        if spec.kind in (PhaseKind.INIT, PhaseKind.OPTIMIZER):
            kind = K_INIT if spec.kind is PhaseKind.INIT else K_OPTIMIZER
            for ep in range(self.ep):
                coord = (stage, ep)
                self._emit(events, totals, coord, kind, clocks[coord], 0.0)
            return

        if spec.kind is PhaseKind.DECODE:
            # One dense decode event per EP rank: decode steps re-read the
            # cached context and run dense single-token kernels, with no
            # routed expert dispatch (MoE routing happened at prefill), so
            # the EP group neither synchronises nor diverges here.
            duration = self.decode_unit_durations[spec.step - 1]
            cursors = {}
            for ep in range(self.ep):
                coord = (stage, ep)
                start = clocks[coord]
                if dependency is not None:
                    start = max(start, ends[dependency][ep])
                if start > clocks[coord]:
                    self._emit(
                        events, totals, coord, K_STALL, clocks[coord],
                        start - clocks[coord], spec,
                    )
                self._emit(events, totals, coord, K_DECODE, start, duration, spec)
                cursors[ep] = start + duration
            ends[(stage, "D", spec.microbatch, spec.chunk, spec.step)] = dict(cursors)
            for ep, cursor in cursors.items():
                clocks[(stage, ep)] = cursor
            return

        forward = spec.kind is PhaseKind.FORWARD
        cursors: dict[int, float] = {}
        for ep in range(self.ep):
            coord = (stage, ep)
            start = clocks[coord]
            if dependency is not None:
                start = max(start, ends[dependency][ep])
            if start > clocks[coord]:
                self._emit(
                    events, totals, coord, K_STALL, clocks[coord],
                    start - clocks[coord], spec,
                )
            cursors[ep] = start

        if self._router is None:
            # Dense model through the general loop (force_general): one
            # event of the full unit duration per phase, accumulated in the
            # same order as the compiled plan so the two paths stay
            # bit-identical.
            duration = (
                self.dense_forward_seconds if forward else self.dense_backward_seconds
            )
            dense_kind = K_FORWARD if forward else K_BACKWARD
            for ep in cursors:
                self._emit(
                    events, totals, (stage, ep), dense_kind,
                    cursors[ep], duration, spec,
                )
                cursors[ep] += duration
        else:
            self._run_moe_layers(stage, spec, forward, cursors, events, totals)

        key = (stage, "F" if forward else "B", spec.microbatch, spec.chunk)
        ends[key] = dict(cursors)
        for ep, cursor in cursors.items():
            clocks[(stage, ep)] = cursor

    def _layer_exec(self, stage: int, global_layer: int, microbatch: int):
        """Memoised ``(loads, balanced, a2a_duration)`` of one layer execution.

        The forward dispatch and backward combine of the same (layer,
        micro-batch) execution reuse one gating decision, so the routed
        loads -- and everything derived from them -- are computed once.
        ``stage`` selects the tier mix of the collective on a hierarchical
        fabric; the memo key stays ``(global_layer, microbatch)`` because the
        global layer id already encodes the stage uniquely.
        """
        key = (global_layer, microbatch)
        cached = self._layer_exec_cache.get(key)
        if cached is None:
            loads = self._routed_loads(global_layer, microbatch)
            balanced = sum(loads) / self.ep if self.ep else 0.0
            a2a_duration = self._a2a_seconds(stage, loads)
            cached = (loads, balanced, a2a_duration)
            self._layer_exec_cache[key] = cached
        return cached

    def _run_moe_layers(self, stage, spec, forward, cursors, events, totals):
        unit = self.forward_unit_seconds if forward else self.backward_unit_seconds
        per_layer = unit / self.layers
        expert_base = per_layer * self.expert_share
        # The phase's allocator-overhead share rides on the dense part (the
        # framework's Python/driver work brackets the dense kernels), never
        # on the load-scaled expert compute.
        dense_part = per_layer - expert_base + self.unit_overhead_seconds / self.layers
        overlap = self.config.comm_overlap_factor
        dense_kind = K_FORWARD if forward else K_BACKWARD
        expert_kind = K_EXPERT_FORWARD if forward else K_EXPERT_BACKWARD
        a2a_kind = K_A2A_DISPATCH if forward else K_A2A_COMBINE
        layer_order = range(self.layers) if forward else reversed(range(self.layers))

        for layer in layer_order:
            global_layer = self._global_layer(stage, spec.chunk, layer)
            loads, balanced, a2a_duration = self._layer_exec(
                stage, global_layer, spec.microbatch
            )

            if forward:
                # Dense compute produces the tokens the dispatch will route.
                for ep in cursors:
                    self._emit(
                        events, totals, (stage, ep), dense_kind,
                        cursors[ep], dense_part, spec, global_layer,
                    )
                    cursors[ep] += dense_part
            # The collective synchronises the EP group: it begins when the
            # last peer arrives, and everyone resumes together when it ends.
            # With a zero comm factor the synchronisation (and its stalls)
            # still happens, but no zero-duration event is emitted -- the
            # comm-free event stream stays free of no-op markers.
            begin = max(cursors.values())
            for ep in cursors:
                coord = (stage, ep)
                if begin > cursors[ep]:
                    self._emit(
                        events, totals, coord, K_STALL, cursors[ep],
                        begin - cursors[ep], spec, global_layer,
                    )
                if a2a_duration > 0:
                    self._emit(
                        events, totals, coord, a2a_kind, begin, a2a_duration,
                        spec, global_layer,
                    )
                cursors[ep] = begin + a2a_duration
            # Expert FFN (or its gradients): scales with the local load.
            # ``comm_overlap_factor`` hides up to that fraction of the
            # collective under the expert compute consuming its tokens: the
            # expert starts early by ``min(factor * a2a, expert)`` seconds.
            # The a2a event above keeps its full duration -- comm_seconds
            # and the stall accounting stay honest -- only the cursor (the
            # critical path) shortens.
            for ep in cursors:
                expert_duration = (
                    expert_base * (loads[ep] / balanced) if balanced > 0 else 0.0
                )
                if expert_duration > 0:
                    hidden = (
                        min(overlap * a2a_duration, expert_duration)
                        if overlap > 0.0 and a2a_duration > 0.0
                        else 0.0
                    )
                    start = cursors[ep] - hidden
                    self._emit(
                        events, totals, (stage, ep), expert_kind,
                        start, expert_duration, spec, global_layer,
                    )
                    cursors[ep] = start + expert_duration
            if not forward:
                # Dense gradient work follows the combine + expert gradients.
                for ep in cursors:
                    self._emit(
                        events, totals, (stage, ep), dense_kind,
                        cursors[ep], dense_part, spec, global_layer,
                    )
                    cursors[ep] += dense_part


# ---------------------------------------------------------------------- #
# Memoised entry point
# ---------------------------------------------------------------------- #
#: Small in-process memo: a sweep point runs one configuration through
#: several allocators, and the timeline (allocator-independent) would
#: otherwise be recomputed for each of them.
_MEMO: dict[tuple, TimelineResult] = {}
_MEMO_MAX = 8


def simulate_timeline(
    config: TrainingConfig,
    *,
    gpu: GPUSpec | str = "A800-80GB",
    seed: int = 0,
    scale: float = 1.0,
    allocator_overhead_seconds: float = 0.0,
) -> TimelineResult:
    """Simulate one iteration of ``config`` on ``gpu`` (memoised).

    Returns the full :class:`TimelineResult`; callers needing the shared
    estimate shape use :meth:`TimelineResult.to_estimate`.  Results are
    treated as immutable -- the memo hands the same object to every caller.
    ``allocator_overhead_seconds`` injects the replay-measured allocator
    overhead into the phase durations (see the class docs); it is part of
    the memo key, so allocators with different overheads never alias.
    """
    spec = get_gpu(gpu)
    # The whole (frozen, hashable) spec is part of the key, not just its
    # name: a caller passing a customised GPUSpec under a stock name must
    # never be served a result computed for different hardware constants.
    # The spec carries the fabric tier fields and node size, so a fabric
    # customisation rotates the key automatically.
    key = (
        config_fingerprint(config, seed=seed, scale=scale),
        spec,
        float(allocator_overhead_seconds),
        TIMELINE_VERSION,
    )
    cached = _MEMO.get(key)
    if cached is not None:
        return cached
    # Span only on the memo-miss path: a memo hit is a dict lookup and must
    # stay one.
    with _obs_span("timeline.simulate", model=config.model.name):
        result = TimelineSimulator(
            config,
            gpu=spec,
            seed=seed,
            scale=scale,
            allocator_overhead_seconds=allocator_overhead_seconds,
        ).run()
    _MEMO[key] = result
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.pop(next(iter(_MEMO)))
    return result


def clear_timeline_memo() -> None:
    """Drop memoised timelines (tests use this to force fresh simulations)."""
    _MEMO.clear()
