"""Shared Chrome trace-event JSON building blocks.

Both the timeline exporter (:mod:`repro.timeline.export`, simulated rank
timelines) and the observability Chrome sink (:mod:`repro.obs.sinks`, real
wall-time spans of the toolchain itself) emit the same trace-event dialect so
either file opens in ``chrome://tracing`` / https://ui.perfetto.dev.  This
module holds the conventions they share: microsecond timestamps, complete
("X") slices for durations, instant ("i") events for zero-duration markers,
process/thread-name metadata ("M") events, and the ``traceEvents`` +
``displayTimeUnit`` + ``otherData`` container shape.

Kept dependency-free (no simulator imports) so the observability layer can
use it without pulling the timeline machinery into every instrumented module.
"""

from __future__ import annotations

#: Simulated/observed seconds -> trace-event microseconds.
SECONDS_TO_US = 1e6


def process_name_event(name: str, *, pid: int = 0) -> dict:
    """Metadata event naming one Perfetto process row."""
    return {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "args": {"name": name}}


def thread_name_event(name: str, *, pid: int = 0, tid: int = 0) -> dict:
    """Metadata event naming one Perfetto thread (track) row."""
    return {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid, "args": {"name": name}}


def slice_event(
    name: str,
    category: str,
    start_us: float,
    duration_us: float,
    *,
    pid: int = 0,
    tid: int = 0,
    args: dict | None = None,
) -> dict:
    """One duration slice: a complete ("X") event, or an instant ("i") event
    when the duration is zero so the marker stays visible at any zoom level."""
    event = {
        "name": name,
        "cat": category,
        "pid": pid,
        "tid": tid,
        "ts": start_us,
        "args": args or {},
    }
    if duration_us > 0:
        event["ph"] = "X"
        event["dur"] = duration_us
    else:
        event["ph"] = "i"
        event["s"] = "t"  # instant event scoped to its thread
    return event


def trace_container(events: list[dict], **other_data) -> dict:
    """The top-level document Perfetto expects, with repo-wide defaults."""
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(other_data),
    }


def count_trace_events(payload: dict) -> int:
    """Number of non-metadata events in a trace container (slices + instants)."""
    return sum(1 for event in payload["traceEvents"] if event["ph"] != "M")
