"""Allocator registry.

Experiments refer to allocators by the short names used in the paper's
figures ("torch2.0", "gmlake", "torch2.3", "torch_es", "stalloc"); the
registry maps those names to factory callables so harness code never needs to
know construction details.  STAlloc itself is registered lazily by
:mod:`repro.simulator.runner` because building it requires a profiling pass.
"""

from __future__ import annotations

from typing import Callable

from repro.allocators.base import Allocator
from repro.allocators.caching import CachingAllocator, torch20_config, torch23_config
from repro.allocators.expandable import ExpandableSegmentsAllocator
from repro.allocators.gmlake import GMLakeAllocator
from repro.allocators.native import NativeAllocator
from repro.gpu.device import Device

AllocatorFactory = Callable[[Device], Allocator]

_REGISTRY: dict[str, AllocatorFactory] = {
    "native": NativeAllocator,
    "torch2.0": lambda device: CachingAllocator(device, torch20_config()),
    "torch2.3": lambda device: CachingAllocator(device, torch23_config()),
    "torch2.6": lambda device: CachingAllocator(device, torch23_config()),
    "torch_es": ExpandableSegmentsAllocator,
    "gmlake": GMLakeAllocator,
}


def available_allocators() -> list[str]:
    """Names accepted by :func:`create_allocator`."""
    return sorted(_REGISTRY)


def register_allocator(name: str, factory: AllocatorFactory, *, overwrite: bool = False) -> None:
    """Register a custom allocator factory under ``name``."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"allocator {name!r} is already registered")
    _REGISTRY[name] = factory


def create_allocator(name: str, device: Device) -> Allocator:
    """Instantiate the allocator registered under ``name`` for ``device``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown allocator {name!r}; available: {', '.join(available_allocators())}"
        ) from None
    return factory(device)
