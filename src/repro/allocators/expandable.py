"""PyTorch ``expandable_segments:True`` allocator.

Instead of carving fixed-size segments out of ``cudaMalloc`` allocations, the
expandable-segments mode reserves one huge *virtual* address range per pool
and maps 2 MiB physical granules into it on demand (CUDA VMM API).  A segment
can therefore grow in place instead of forcing a brand-new segment when a
request does not fit, which removes most segment-level fragmentation.  The
costs are (a) physical memory is handled at 2 MiB granularity and (b) every
grow/shrink is a driver VMM call -- the paper measures noticeable throughput
loss in recomputation-heavy and MoE workloads from exactly these calls.

The simulation models each pool as a single expandable arena:

* live allocations are carved best-fit out of the arena's free space;
* if nothing fits, the arena grows at its tail by whole granules;
* if the device cannot supply granules, free granule-aligned regions are
  unmapped (returned to the device) and the growth is retried;
* reserved bytes = currently mapped physical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.allocators.base import AllocationHints, Allocator, Placement
from repro.core.intervals import IntervalSet
from repro.gpu.device import Device, MIB, align_up
from repro.gpu.errors import OutOfMemoryError
from repro.gpu.virtual_memory import DEFAULT_GRANULE, PhysicalHandle, VirtualMemoryManager

#: Requests at or below this size go to the small arena (matches the caching
#: allocator's small/large split so comparisons are apples-to-apples).
SMALL_POOL_THRESHOLD = 1 * MIB

#: Modelled latency of one VMM map/unmap operation.
VMM_OP_SECONDS = 2e-3


@dataclass
class ExpandableSegmentsConfig:
    """Policy knobs for the expandable-segments allocator."""

    granule: int = DEFAULT_GRANULE
    small_pool_threshold: int = SMALL_POOL_THRESHOLD
    min_block_size: int = 512
    label: str = "torch_es"

    def round_size(self, size: int) -> int:
        if size < self.min_block_size:
            return self.min_block_size
        return align_up(size, self.min_block_size)

    def pool_for(self, rounded: int) -> str:
        return "small" if rounded <= self.small_pool_threshold else "large"


@dataclass
class _Arena:
    """One expandable segment: a virtual range with granules mapped on demand."""

    pool: str
    virtual_start: int
    mapped: IntervalSet = field(default_factory=IntervalSet)       # mapped virtual space
    free: IntervalSet = field(default_factory=IntervalSet)         # mapped and unallocated
    handles: dict[int, PhysicalHandle] = field(default_factory=dict)  # keyed by virtual offset
    tail: int = 0  # first never-mapped offset (the growth point)

    @property
    def mapped_bytes(self) -> int:
        return self.mapped.total


class ExpandableSegmentsAllocator(Allocator):
    """Virtual-memory backed allocator emulating PyTorch expandable segments."""

    name = "torch_es"

    def __init__(self, device: Device, config: ExpandableSegmentsConfig | None = None):
        super().__init__()
        self.device = device
        self.config = config or ExpandableSegmentsConfig()
        self.name = self.config.label
        self.vmm = VirtualMemoryManager(device, granule=self.config.granule)
        self._arenas: dict[str, _Arena] = {}
        self._placements: dict[int, tuple[str, int, int]] = {}  # req_id -> (pool, offset, size)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def reserved_bytes(self) -> int:
        return sum(arena.mapped_bytes for arena in self._arenas.values())

    def arena(self, pool: str) -> _Arena:
        """Return (creating on first use) the arena backing ``pool``."""
        if pool not in self._arenas:
            # Reserve an effectively unbounded virtual range for the arena.
            vrange = self.vmm.reserve_range(4 * self.device.capacity)
            self._arenas[pool] = _Arena(pool=pool, virtual_start=vrange.start)
        return self._arenas[pool]

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def _do_allocate(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        rounded = self.config.round_size(size)
        pool = self.config.pool_for(rounded)
        arena = self.arena(pool)
        carved = arena.free.carve(rounded, policy="best_fit")
        if carved is None:
            self.stats.cache_misses += 1
            self._grow(arena, rounded)
            carved = arena.free.carve(rounded, policy="best_fit")
            if carved is None:
                # Reclaim under memory pressure may have punched a hole into
                # the tail region we were counting on; grow by the full
                # request size so the new tail run is contiguous.
                self._grow(arena, rounded, count_tail_free=False)
                carved = arena.free.carve(rounded, policy="best_fit")
            if carved is None:  # pragma: no cover - growth guarantees a fit
                raise OutOfMemoryError(rounded, self.device.usable_capacity, self.device.in_use)
        else:
            self.stats.cache_hits += 1
        self._placements[req_id] = (pool, carved.start, rounded)
        return Placement(pool=f"es:{pool}", address=carved.start, size=rounded)

    def _grow(self, arena: _Arena, rounded: int, *, count_tail_free: bool = True) -> None:
        """Map enough granules at the arena tail to fit a ``rounded`` request."""
        # Free space already touching the tail still counts toward the request.
        tail_free = 0
        if count_tail_free:
            for interval in arena.free:
                if interval.end == arena.tail:
                    tail_free = interval.length
        needed = align_up(max(rounded - tail_free, 0), self.config.granule)
        granules = needed // self.config.granule
        for _ in range(granules):
            handle = self._create_handle_with_reclaim()
            offset = arena.tail
            self.vmm.map(arena.virtual_start + offset, handle)
            self.stats.vmm_ops += 1
            arena.handles[offset] = handle
            arena.mapped.add(offset, offset + self.config.granule)
            arena.free.add(offset, offset + self.config.granule)
            arena.tail += self.config.granule

    def _create_handle_with_reclaim(self) -> PhysicalHandle:
        """Create a physical granule, unmapping idle granules under pressure."""
        try:
            handle = self.vmm.create_handle()
        except OutOfMemoryError:
            if self._reclaim_free_granules() == 0:
                raise
            handle = self.vmm.create_handle()
        self.stats.vmm_ops += 1
        return handle

    def _reclaim_free_granules(self) -> int:
        """Unmap granules that are entirely free and return them to the device.

        Returns the number of granules reclaimed.  Mirrors expandable
        segments' behaviour of releasing physical memory only under pressure.
        """
        reclaimed = 0
        for arena in self._arenas.values():
            for interval in list(arena.free):
                start = align_up(interval.start, self.config.granule)
                while start + self.config.granule <= interval.end:
                    handle = arena.handles.pop(start, None)
                    if handle is not None:
                        self.vmm.unmap(arena.virtual_start + start)
                        self.vmm.release_handle(handle)
                        self.stats.vmm_ops += 2
                        arena.mapped.remove(start, start + self.config.granule)
                        arena.free.remove(start, start + self.config.granule)
                        reclaimed += 1
                    start += self.config.granule
        return reclaimed

    # ------------------------------------------------------------------ #
    # Free
    # ------------------------------------------------------------------ #
    def _do_free(self, req_id: int) -> None:
        pool, offset, rounded = self._placements.pop(req_id)
        arena = self._arenas[pool]
        arena.free.add(offset, offset + rounded)

    def overhead_seconds(self) -> float:
        return self.stats.vmm_ops * VMM_OP_SECONDS
