"""Common allocator interface and statistics.

Every allocator in this repository -- the PyTorch-style baselines and
STAlloc's runtime allocator alike -- implements :class:`Allocator`.  The
replay simulator drives allocators exclusively through this interface, keyed
by the trace's request ids, which keeps the experiment harness completely
allocator-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.events import Phase, TensorCategory


@dataclass(frozen=True)
class AllocationHints:
    """Side-band information accompanying an allocation request.

    PyTorch's pluggable-allocator interface only passes a size and a stream;
    STAlloc additionally observes the current computation phase and module
    through its lightweight instrumentation hooks (§8).  The hints carry that
    information; baseline allocators are free to ignore it.
    """

    phase: Phase | None = None
    module: str = ""
    dyn: bool = False
    category: TensorCategory = TensorCategory.OTHER
    stream: int = 0


@dataclass(frozen=True)
class Placement:
    """Where a live request currently resides.

    ``pool`` identifies the backing region (e.g. ``"static"``, ``"caching"``,
    ``"segment:3"``); ``address`` is the byte offset inside that pool.  The
    replay simulator uses placements only for consistency checking and
    reporting -- allocators are the source of truth.
    """

    pool: str
    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size


@dataclass
class AllocatorStats:
    """Operation counters shared by every allocator implementation."""

    alloc_calls: int = 0
    free_calls: int = 0
    device_malloc_calls: int = 0
    device_free_calls: int = 0
    vmm_ops: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    splits: int = 0
    merges: int = 0
    stitches: int = 0
    fallback_allocs: int = 0
    plan_mismatches: int = 0
    peak_reserved: int = 0
    peak_allocated: int = 0
    extra: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        """Plain-dict view used in experiment reports."""
        data = {
            "alloc_calls": self.alloc_calls,
            "free_calls": self.free_calls,
            "device_malloc_calls": self.device_malloc_calls,
            "device_free_calls": self.device_free_calls,
            "vmm_ops": self.vmm_ops,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "splits": self.splits,
            "merges": self.merges,
            "stitches": self.stitches,
            "fallback_allocs": self.fallback_allocs,
            "plan_mismatches": self.plan_mismatches,
            "peak_reserved": self.peak_reserved,
            "peak_allocated": self.peak_allocated,
        }
        data.update(self.extra)
        return data


class Allocator(abc.ABC):
    """Abstract GPU memory allocator driven by the replay simulator.

    Subclasses must implement :meth:`allocate` and :meth:`free`, and report
    how much device memory they have reserved through :attr:`reserved_bytes`.
    ``allocated_bytes`` (the sum of live *requested* sizes) is tracked here so
    that the memory-efficiency metric is computed identically for every
    allocator.
    """

    #: Short identifier used in experiment tables (subclasses override).
    name: str = "allocator"

    def __init__(self) -> None:
        self.stats = AllocatorStats()
        self._live_sizes: dict[int, int] = {}
        self._allocated_bytes = 0

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _do_allocate(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        """Allocate ``size`` bytes for request ``req_id`` and return its placement."""

    @abc.abstractmethod
    def _do_free(self, req_id: int) -> None:
        """Free the memory backing request ``req_id``."""

    @property
    @abc.abstractmethod
    def reserved_bytes(self) -> int:
        """Device memory currently reserved by this allocator (``M_r``)."""

    # ------------------------------------------------------------------ #
    # Template methods (bookkeeping shared by all allocators)
    # ------------------------------------------------------------------ #
    def allocate(self, req_id: int, size: int, hints: AllocationHints | None = None) -> Placement:
        """Serve an allocation request.

        Raises :class:`repro.gpu.errors.OutOfMemoryError` when the request
        cannot be satisfied.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if req_id in self._live_sizes:
            raise ValueError(f"request {req_id} is already live")
        hints = hints or AllocationHints()
        placement = self._do_allocate(req_id, int(size), hints)
        self.stats.alloc_calls += 1
        self._live_sizes[req_id] = int(size)
        self._allocated_bytes += int(size)
        self.stats.peak_allocated = max(self.stats.peak_allocated, self._allocated_bytes)
        self.stats.peak_reserved = max(self.stats.peak_reserved, self.reserved_bytes)
        return placement

    def free(self, req_id: int) -> None:
        """Free a previously allocated request."""
        if req_id not in self._live_sizes:
            raise KeyError(f"request {req_id} is not live")
        self._do_free(req_id)
        self.stats.free_calls += 1
        self._allocated_bytes -= self._live_sizes.pop(req_id)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def allocated_bytes(self) -> int:
        """Sum of the requested sizes of live allocations (``M_a``)."""
        return self._allocated_bytes

    @property
    def live_requests(self) -> int:
        return len(self._live_sizes)

    @property
    def memory_efficiency(self) -> float:
        """Instantaneous efficiency ``E = M_a / M_r`` (1.0 when nothing is reserved)."""
        reserved = self.reserved_bytes
        if reserved == 0:
            return 1.0
        return self._allocated_bytes / reserved

    def batch_replay(self, trace, *, stop_on_oom: bool = True) -> int | None:
        """Apply a whole trace in one vectorized pass, when possible.

        Returns the number of events applied (``trace.num_events``) after
        mutating this allocator and its device into *exactly* the end state
        the event-by-event replay loop would have produced -- same stats,
        same live allocations, same peaks -- or ``None`` when the trace needs
        per-event replay: the allocator was already used, an allocation would
        fail (failures must be modelled event by event), per-event hints
        drive the allocator's decisions, or the trace's alloc/free pairing is
        not simple.  The default can never batch-replay.
        """
        return None

    def iteration_boundary(self) -> None:
        """Hook invoked by the simulator between training iterations.

        Baseline allocators ignore it; STAlloc's runtime allocator uses it to
        rewind its plan cursor to the start of the next iteration.
        """

    def overhead_seconds(self) -> float:
        """Extra wall-clock time this allocator added to one iteration.

        Used by the throughput model.  The default charges nothing; allocators
        that issue virtual-memory or driver calls override this.
        """
        return 0.0
