"""Native allocator: one driver call per tensor.

Every allocation goes straight to ``cudaMalloc`` and every free to
``cudaFree``.  Reserved memory therefore equals allocated memory (no
fragmentation at the allocator level), which is why the paper's Allocation
Profiler runs in this mode: it can trace configurations that would OOM under
the caching allocator, and an OOM under the native allocator proves the
configuration is infeasible regardless of fragmentation (§8).

The price is speed -- each driver call costs on the order of a tenth of a
millisecond, so profiling runs at 10-30% of normal training speed (Table 2).
"""

from __future__ import annotations

import itertools

from repro.allocators.base import AllocationHints, Allocator, Placement
from repro.gpu.device import DRIVER_ALIGNMENT, Device, PhysicalAllocation

#: Modelled latency of one cudaMalloc/cudaFree driver call.
DRIVER_CALL_SECONDS = 1e-4


class NativeAllocator(Allocator):
    """Pass-through allocator mapping every request to a driver allocation."""

    name = "native"

    def __init__(self, device: Device):
        super().__init__()
        self.device = device
        self._allocations: dict[int, PhysicalAllocation] = {}

    @property
    def reserved_bytes(self) -> int:
        return sum(allocation.size for allocation in self._allocations.values())

    def _do_allocate(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        allocation = self.device.malloc(size)
        self.stats.device_malloc_calls += 1
        self._allocations[req_id] = allocation
        return Placement(pool="device", address=allocation.address, size=allocation.size)

    def _do_free(self, req_id: int) -> None:
        allocation = self._allocations.pop(req_id)
        self.device.free(allocation)
        self.stats.device_free_calls += 1

    def overhead_seconds(self) -> float:
        calls = self.stats.device_malloc_calls + self.stats.device_free_calls
        return calls * DRIVER_CALL_SECONDS

    # ------------------------------------------------------------------ #
    # Vectorized batch replay
    # ------------------------------------------------------------------ #
    def batch_replay(self, trace, *, stop_on_oom: bool = True) -> int | None:
        """Replay a whole trace in one vectorized pass.

        The native allocator is exactly batch-replayable: the device enforces
        only capacity (no placement, no size rounding) and hints are ignored,
        so the event loop's entire effect is determined by the trace's
        live-bytes curve and alloc/free pairing -- both precomputed on the
        trace's columns.  The replay succeeds without OOM iff the curve's
        maximum fits in the device's free bytes; in that case this method
        reconstructs the exact end state (live allocations with the addresses
        the sequential driver counter would have assigned, all device and
        allocator counters, both peaks) without executing per-event Python.

        Falls back (returns ``None``) whenever the loop could behave
        differently: a would-be OOM (per-event failure accounting), a reused
        or mismatched request id, a non-positive size (the loop raises), a
        subclass overriding the per-event behaviour, or an allocator/device
        that is not fresh.
        """
        if type(self) is not NativeAllocator:
            return None  # subclasses may change per-event behaviour
        device = self.device
        if (
            self._live_sizes
            or self.stats.alloc_calls
            or self.stats.free_calls
            or device.in_use
            or device.stats.malloc_calls
            or device.stats.free_calls
        ):
            return None  # mid-stream state: replay event by event
        columns = trace.columns
        num_events = columns.num_events
        if num_events == 0:
            return 0
        pairing = columns.pairing()
        if not pairing.ok:
            return None
        sizes = columns.size
        alloc_sizes = sizes[pairing.alloc_pos]
        num_allocs = int(pairing.alloc_pos.shape[0])
        num_frees = int(pairing.free_pos.shape[0])
        if num_allocs and int(alloc_sizes.min()) <= 0:
            return None  # the event loop raises ValueError on these
        curve = columns.live_bytes()
        peak = max(0, int(curve.max()))
        if peak > device.free_bytes:
            return None  # would OOM: the loop models the failure precisely
        final_live = int(curve[-1])

        # Reconstruct the exact end state of the sequential replay.  The
        # device's address counter hands the i-th malloc the address
        # (DRIVER_ALIGNMENT + i) * DRIVER_ALIGNMENT; surviving allocations
        # keep theirs, and the counter advances past every batched malloc.
        survivor_req_ids = columns.req_id[pairing.alloc_pos[pairing.survivor_ordinals]]
        survivor_sizes = alloc_sizes[pairing.survivor_ordinals]
        for ordinal, req_id, size in zip(
            pairing.survivor_ordinals.tolist(),
            survivor_req_ids.tolist(),
            survivor_sizes.tolist(),
        ):
            address = (DRIVER_ALIGNMENT + ordinal) * DRIVER_ALIGNMENT
            allocation = PhysicalAllocation(address=address, size=size)
            device._allocations[address] = allocation
            self._allocations[req_id] = allocation
            self._live_sizes[req_id] = size
        device._next_address = itertools.count(DRIVER_ALIGNMENT + num_allocs)
        device._in_use = final_live
        device.stats.malloc_calls += num_allocs
        device.stats.free_calls += num_frees
        device.stats.bytes_allocated_total += int(alloc_sizes.sum())
        device.stats.peak_in_use = max(device.stats.peak_in_use, peak)
        self._allocated_bytes = final_live
        self.stats.alloc_calls += num_allocs
        self.stats.free_calls += num_frees
        self.stats.device_malloc_calls += num_allocs
        self.stats.device_free_calls += num_frees
        self.stats.peak_allocated = max(self.stats.peak_allocated, peak)
        # reserved == allocated for the native allocator at every instant.
        self.stats.peak_reserved = max(self.stats.peak_reserved, peak)
        return num_events
