"""Native allocator: one driver call per tensor.

Every allocation goes straight to ``cudaMalloc`` and every free to
``cudaFree``.  Reserved memory therefore equals allocated memory (no
fragmentation at the allocator level), which is why the paper's Allocation
Profiler runs in this mode: it can trace configurations that would OOM under
the caching allocator, and an OOM under the native allocator proves the
configuration is infeasible regardless of fragmentation (§8).

The price is speed -- each driver call costs on the order of a tenth of a
millisecond, so profiling runs at 10-30% of normal training speed (Table 2).
"""

from __future__ import annotations

from repro.allocators.base import AllocationHints, Allocator, Placement
from repro.gpu.device import Device, PhysicalAllocation

#: Modelled latency of one cudaMalloc/cudaFree driver call.
DRIVER_CALL_SECONDS = 1e-4


class NativeAllocator(Allocator):
    """Pass-through allocator mapping every request to a driver allocation."""

    name = "native"

    def __init__(self, device: Device):
        super().__init__()
        self.device = device
        self._allocations: dict[int, PhysicalAllocation] = {}

    @property
    def reserved_bytes(self) -> int:
        return sum(allocation.size for allocation in self._allocations.values())

    def _do_allocate(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        allocation = self.device.malloc(size)
        self.stats.device_malloc_calls += 1
        self._allocations[req_id] = allocation
        return Placement(pool="device", address=allocation.address, size=allocation.size)

    def _do_free(self, req_id: int) -> None:
        allocation = self._allocations.pop(req_id)
        self.device.free(allocation)
        self.stats.device_free_calls += 1

    def overhead_seconds(self) -> float:
        calls = self.stats.device_malloc_calls + self.stats.device_free_calls
        return calls * DRIVER_CALL_SECONDS
