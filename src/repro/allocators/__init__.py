"""Baseline GPU memory allocators.

These are the systems STAlloc is compared against in the paper's evaluation:

* :class:`~repro.allocators.native.NativeAllocator` -- every request goes
  straight to the device (``cudaMalloc``/``cudaFree``).  Used by the
  Allocation Profiler, and as the "no fragmentation" reference.
* :class:`~repro.allocators.caching.CachingAllocator` -- a re-implementation
  of PyTorch's CUDA caching allocator (best-fit with block split/merge,
  small/large pools, 512-byte rounding, empty-cache-on-OOM), with ``Torch
  2.0`` and ``Torch 2.3`` presets.
* :class:`~repro.allocators.expandable.ExpandableSegmentsAllocator` --
  PyTorch's ``expandable_segments:True`` mode built on the virtual-memory API.
* :class:`~repro.allocators.gmlake.GMLakeAllocator` -- GMLake-style virtual
  memory stitching on top of the caching allocator, with a configurable
  ``frag_limit``.

All allocators implement the :class:`~repro.allocators.base.Allocator`
interface so the replay simulator and the experiments can treat them
uniformly.
"""

from repro.allocators.base import AllocationHints, Allocator, AllocatorStats, Placement
from repro.allocators.caching import (
    CachingAllocator,
    CachingAllocatorConfig,
    torch20_config,
    torch23_config,
)
from repro.allocators.expandable import ExpandableSegmentsAllocator, ExpandableSegmentsConfig
from repro.allocators.gmlake import GMLakeAllocator, GMLakeConfig
from repro.allocators.native import NativeAllocator
from repro.allocators.registry import available_allocators, create_allocator

__all__ = [
    "Allocator",
    "AllocatorStats",
    "AllocationHints",
    "Placement",
    "CachingAllocator",
    "CachingAllocatorConfig",
    "torch20_config",
    "torch23_config",
    "ExpandableSegmentsAllocator",
    "ExpandableSegmentsConfig",
    "GMLakeAllocator",
    "GMLakeConfig",
    "NativeAllocator",
    "available_allocators",
    "create_allocator",
]
