"""GMLake-style virtual-memory-stitching allocator.

GMLake (ASPLOS '24) keeps PyTorch's caching allocator but, when a large
request cannot be served by any single contiguous free block, it *stitches*
several non-contiguous free physical blocks into one contiguous virtual span
using the CUDA VMM API.  Stitching avoids reserving a brand-new segment, so
fragmentation drops -- but only blocks at least ``frag_limit`` bytes large
participate (smaller "stranded" blocks are not worth the driver calls), each
stitched piece is handled at 2 MiB granularity, and every stitch costs VMM
operations whose latency becomes visible under churny (e.g. MoE) workloads.
The paper reproduces exactly this trade-off when tuning ``frag_limit`` from
512 MiB down to 64 MiB (§9.2).

The simulation composes the behaviour on top of
:class:`~repro.allocators.caching.CachingAllocator`:

* small-pool behaviour is untouched;
* a large-pool miss first attempts to assemble the request from free blocks
  of at least ``frag_limit`` bytes (largest first), charging VMM operations
  per stitched piece, before falling back to a fresh segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocators.base import AllocationHints, Placement
from repro.allocators.caching import Block, CachingAllocator, CachingAllocatorConfig
from repro.gpu.device import Device, MIB, align_up
from repro.gpu.virtual_memory import DEFAULT_GRANULE

#: Modelled latency of a VMM operation; the paper reports ~30 ms per
#: defragmentation operation under MoE churn (map + access-set + bookkeeping).
VMM_OP_SECONDS = 3e-2


@dataclass
class GMLakeConfig:
    """GMLake policy knobs."""

    #: Only free blocks at least this large are eligible for stitching
    #: (GMLake's ``fragLimit``; the shipped default is 512 MiB).
    frag_limit: int = 512 * MIB
    #: Physical granularity of stitched pieces.
    granule: int = DEFAULT_GRANULE
    #: Stitching is only attempted for requests at least this large.
    min_stitch_request: int = 32 * MIB
    label: str = "gmlake"


class GMLakeAllocator(CachingAllocator):
    """Caching allocator augmented with virtual-memory stitching."""

    def __init__(
        self,
        device: Device,
        config: GMLakeConfig | None = None,
        caching_config: CachingAllocatorConfig | None = None,
    ):
        # GMLake ships on top of PyTorch 2.0's allocator, but manages physical
        # memory through VMM granules, so every block is handled at 2 MiB
        # granularity (the source of its extra internal waste on small,
        # churny allocations such as MoE expert tensors).
        gmlake_caching = caching_config or CachingAllocatorConfig(
            min_block_size=DEFAULT_GRANULE, label="gmlake"
        )
        super().__init__(device, gmlake_caching)
        self.gmlake_config = config or GMLakeConfig()
        self.name = self.gmlake_config.label
        #: req_id -> list of stitched (segment_id, offset) pieces.
        self._stitched: dict[int, list[tuple[int, int]]] = {}

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def _do_allocate(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        rounded = self.config.round_size(size)
        pool = self.config.pool_for(rounded)
        if pool == "large" and rounded >= self.gmlake_config.min_stitch_request:
            if self._find_best_fit(pool, rounded) is None:
                placement = self._try_stitch(req_id, rounded)
                if placement is not None:
                    return placement
        return super()._do_allocate(req_id, size, hints)

    def _try_stitch(self, req_id: int, rounded: int) -> Placement | None:
        """Assemble ``rounded`` bytes from free blocks >= ``frag_limit``."""
        candidates = self._stitch_candidates()
        if sum(block.size for block in candidates) < rounded:
            return None
        pieces: list[tuple[int, int]] = []
        remaining = rounded
        for block in candidates:
            if remaining <= 0:
                break
            pool = self._segments[block.segment_id].pool
            self._index_remove(pool, block)
            # Stitched pieces are mapped at granule granularity; a partially
            # used block is split so the tail stays reusable.
            take = min(block.size, align_up(remaining, self.gmlake_config.granule))
            if take < block.size and (block.size - take) >= self.config.min_block_size:
                segment = self._segments[block.segment_id]
                leftover = Block(
                    segment_id=block.segment_id,
                    offset=block.offset + take,
                    size=block.size - take,
                    free=True,
                )
                block.size = take
                segment.blocks[leftover.offset] = leftover
                self._index_insert(pool, leftover)
                self.stats.splits += 1
            block.free = False
            block.req_id = req_id
            pieces.append((block.segment_id, block.offset))
            remaining -= block.size
        self.stats.stitches += 1
        # Reserve + map/unmap per piece: GMLake's per-stitch driver cost.
        self.stats.vmm_ops += 1 + 2 * len(pieces)
        self._stitched[req_id] = pieces
        first_segment, first_offset = pieces[0]
        return Placement(pool=f"stitched:{first_segment}", address=first_offset, size=rounded)

    def _stitch_candidates(self) -> list[Block]:
        """Free blocks eligible for stitching, largest first."""
        candidates: list[Block] = []
        for size, segment_id, offset in self._free_index["large"]:
            if size >= self.gmlake_config.frag_limit:
                candidates.append(self._segments[segment_id].blocks[offset])
        candidates.sort(key=lambda block: block.size, reverse=True)
        return candidates

    # ------------------------------------------------------------------ #
    # Free
    # ------------------------------------------------------------------ #
    def _do_free(self, req_id: int) -> None:
        pieces = self._stitched.pop(req_id, None)
        if pieces is None:
            super()._do_free(req_id)
            return
        self.stats.vmm_ops += len(pieces)
        for segment_id, offset in pieces:
            segment = self._segments[segment_id]
            block = segment.blocks[offset]
            block.free = True
            block.req_id = None
            self._merge_with_neighbours(segment, block)
        self._placements.pop(req_id, None)

    def overhead_seconds(self) -> float:
        driver = super().overhead_seconds()
        return driver + self.stats.vmm_ops * VMM_OP_SECONDS
