"""PyTorch-style CUDA caching allocator.

This is a faithful re-implementation of the allocation policy of
``c10::cuda::CUDACachingAllocator`` (the paper's "PyTorch 2.0" / "PyTorch 2.3"
baselines):

* request sizes are rounded up to 512-byte multiples;
* requests below 1 MiB are served from a *small* pool of 2 MiB segments,
  larger requests from a *large* pool (20 MiB segments below 10 MiB requests,
  exact granule-aligned segments above);
* free blocks are reused with a best-fit policy (smallest free block that
  fits, ties broken by lowest address) and split when the remainder is worth
  keeping;
* freed blocks are merged with free neighbours inside the same segment;
* when the device refuses to provide a new segment the allocator releases all
  cached (fully free) segments and retries before surfacing the OOM.

The allocator keeps no knowledge of tensor lifespans -- that is precisely the
property STAlloc exploits to beat it.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field

from repro.allocators.base import AllocationHints, Allocator, Placement
from repro.gpu.device import Device, KIB, MIB, align_up
from repro.gpu.errors import OutOfMemoryError

#: PyTorch constants (names follow CUDACachingAllocator.cpp).
K_MIN_BLOCK_SIZE = 512          # all sizes are rounded to multiples of this
K_SMALL_SIZE = 1 * MIB          # largest "small" request
K_SMALL_BUFFER = 2 * MIB        # small-pool segment size
K_LARGE_BUFFER = 20 * MIB       # large-pool segment size for medium requests
K_MIN_LARGE_ALLOC = 10 * MIB    # requests above this get their own segment
K_ROUND_LARGE = 2 * MIB         # granularity of oversized segments


@dataclass
class CachingAllocatorConfig:
    """Tunable policy knobs of the caching allocator.

    ``max_split_size`` mirrors PyTorch's ``max_split_size_mb`` option: free
    blocks larger than the limit are never split, which keeps huge blocks
    intact and is the standard fragmentation mitigation recommended for newer
    PyTorch releases.  ``None`` means unlimited splitting (PyTorch default).
    """

    small_size_threshold: int = K_SMALL_SIZE
    small_segment_size: int = K_SMALL_BUFFER
    large_segment_size: int = K_LARGE_BUFFER
    min_large_alloc: int = K_MIN_LARGE_ALLOC
    round_large: int = K_ROUND_LARGE
    min_block_size: int = K_MIN_BLOCK_SIZE
    max_split_size: int | None = None
    release_cached_on_oom: bool = True
    label: str = "caching"

    def round_size(self, size: int) -> int:
        """Round a request to the allocator's block granularity."""
        if size < self.min_block_size:
            return self.min_block_size
        return align_up(size, self.min_block_size)

    def segment_size_for(self, rounded: int) -> int:
        """Size of the device segment to request for a cache miss."""
        if rounded <= self.small_size_threshold:
            return self.small_segment_size
        if rounded < self.min_large_alloc:
            return self.large_segment_size
        return align_up(rounded, self.round_large)

    def pool_for(self, rounded: int) -> str:
        return "small" if rounded <= self.small_size_threshold else "large"

    def should_split(self, block_size: int, rounded: int, pool: str) -> bool:
        """Whether the remainder after carving ``rounded`` is worth keeping."""
        remaining = block_size - rounded
        if pool == "small":
            return remaining >= self.min_block_size
        if remaining <= self.small_size_threshold:
            return False
        if self.max_split_size is not None and block_size > self.max_split_size:
            return False
        return True


def torch20_config() -> CachingAllocatorConfig:
    """The PyTorch 2.0 caching-allocator defaults (unlimited splitting)."""
    return CachingAllocatorConfig(label="torch2.0")


def torch23_config() -> CachingAllocatorConfig:
    """PyTorch 2.3 with the commonly deployed ``max_split_size_mb`` mitigation."""
    return CachingAllocatorConfig(max_split_size=512 * MIB, label="torch2.3")


@dataclass
class Block:
    """A contiguous range inside a segment; either free or backing a request."""

    segment_id: int
    offset: int
    size: int
    free: bool = True
    req_id: int | None = None

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass
class Segment:
    """One device allocation sliced into blocks."""

    segment_id: int
    pool: str
    size: int
    device_allocation: object
    blocks: dict[int, Block] = field(default_factory=dict)  # keyed by offset

    def sorted_blocks(self) -> list[Block]:
        return [self.blocks[offset] for offset in sorted(self.blocks)]

    def is_fully_free(self) -> bool:
        return all(block.free for block in self.blocks.values())


class CachingAllocator(Allocator):
    """Best-fit caching allocator with small/large pools (PyTorch baseline)."""

    def __init__(self, device: Device, config: CachingAllocatorConfig | None = None):
        super().__init__()
        self.device = device
        self.config = config or CachingAllocatorConfig()
        self.name = self.config.label
        self._segment_ids = itertools.count(1)
        self._segments: dict[int, Segment] = {}
        # Free-block index per pool: sorted list of (size, segment_id, offset).
        self._free_index: dict[str, list[tuple[int, int, int]]] = {"small": [], "large": []}
        self._placements: dict[int, tuple[int, int]] = {}  # req_id -> (segment_id, offset)

    # ------------------------------------------------------------------ #
    # Reserved-memory accounting
    # ------------------------------------------------------------------ #
    @property
    def reserved_bytes(self) -> int:
        return sum(segment.size for segment in self._segments.values())

    @property
    def cached_bytes(self) -> int:
        """Bytes reserved but currently free (the fragmentation + cache)."""
        return self.reserved_bytes - sum(
            block.size
            for segment in self._segments.values()
            for block in segment.blocks.values()
            if not block.free
        )

    def segments(self) -> list[Segment]:
        """Live segments (exposed for white-box tests and statistics)."""
        return list(self._segments.values())

    # ------------------------------------------------------------------ #
    # Free-block index maintenance
    # ------------------------------------------------------------------ #
    def _index_insert(self, pool: str, block: Block) -> None:
        bisect.insort(self._free_index[pool], (block.size, block.segment_id, block.offset))

    def _index_remove(self, pool: str, block: Block) -> None:
        key = (block.size, block.segment_id, block.offset)
        index = self._free_index[pool]
        pos = bisect.bisect_left(index, key)
        if pos < len(index) and index[pos] == key:
            del index[pos]
        else:  # pragma: no cover - defensive, indicates an index bug
            raise RuntimeError(f"free-block index out of sync for {key}")

    def _find_best_fit(self, pool: str, rounded: int) -> Block | None:
        """Smallest free block in ``pool`` that fits ``rounded`` bytes.

        When ``max_split_size`` is configured the PyTorch rules for oversize
        blocks apply: requests below the limit never take an oversize block
        (they would waste it, since it cannot be split), and requests above
        the limit only take an oversize block when the leftover is below one
        large-buffer's worth.
        """
        index = self._free_index[pool]
        pos = bisect.bisect_left(index, (rounded, -1, -1))
        if pos >= len(index):
            return None
        size, segment_id, offset = index[pos]
        limit = self.config.max_split_size
        if limit is not None and pool == "large":
            if rounded < limit and size >= limit:
                return None
            if rounded >= limit and size >= rounded + self.config.large_segment_size:
                return None
        return self._segments[segment_id].blocks[offset]

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def _do_allocate(self, req_id: int, size: int, hints: AllocationHints) -> Placement:
        rounded = self.config.round_size(size)
        pool = self.config.pool_for(rounded)
        block = self._find_best_fit(pool, rounded)
        if block is not None:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            block = self._allocate_segment(pool, rounded)
        self._index_remove(pool, block)
        block = self._maybe_split(block, rounded, pool)
        block.free = False
        block.req_id = req_id
        self._placements[req_id] = (block.segment_id, block.offset)
        return Placement(pool=f"segment:{block.segment_id}", address=block.offset, size=block.size)

    def _allocate_segment(self, pool: str, rounded: int) -> Block:
        """Request a new segment from the device, releasing caches on OOM."""
        segment_size = self.config.segment_size_for(rounded)
        try:
            device_allocation = self._device_malloc(segment_size)
        except OutOfMemoryError:
            if not self.config.release_cached_on_oom:
                raise
            self.release_cached_segments()
            device_allocation = self._device_malloc(segment_size)
        segment = Segment(
            segment_id=next(self._segment_ids),
            pool=pool,
            size=segment_size,
            device_allocation=device_allocation,
        )
        block = Block(segment_id=segment.segment_id, offset=0, size=segment_size, free=True)
        segment.blocks[0] = block
        self._segments[segment.segment_id] = segment
        self._index_insert(pool, block)
        return block

    def _device_malloc(self, size: int):
        allocation = self.device.malloc(size)
        self.stats.device_malloc_calls += 1
        return allocation

    def _maybe_split(self, block: Block, rounded: int, pool: str) -> Block:
        """Split ``block`` so the request occupies exactly ``rounded`` bytes."""
        if block.size > rounded and self.config.should_split(block.size, rounded, pool):
            segment = self._segments[block.segment_id]
            remainder = Block(
                segment_id=block.segment_id,
                offset=block.offset + rounded,
                size=block.size - rounded,
                free=True,
            )
            block.size = rounded
            segment.blocks[remainder.offset] = remainder
            self._index_insert(pool, remainder)
            self.stats.splits += 1
        return block

    # ------------------------------------------------------------------ #
    # Free
    # ------------------------------------------------------------------ #
    def _do_free(self, req_id: int) -> None:
        segment_id, offset = self._placements.pop(req_id)
        segment = self._segments[segment_id]
        block = segment.blocks[offset]
        block.free = True
        block.req_id = None
        self._merge_with_neighbours(segment, block)

    def _merge_with_neighbours(self, segment: Segment, block: Block) -> None:
        """Coalesce ``block`` with free neighbours, then (re)index it."""
        pool = segment.pool
        blocks = segment.sorted_blocks()
        position = blocks.index(block)
        # Merge the next neighbour first so offsets stay valid.
        if position + 1 < len(blocks) and blocks[position + 1].free:
            neighbour = blocks[position + 1]
            self._index_remove(pool, neighbour)
            del segment.blocks[neighbour.offset]
            block.size += neighbour.size
            self.stats.merges += 1
        if position > 0 and blocks[position - 1].free:
            neighbour = blocks[position - 1]
            self._index_remove(pool, neighbour)
            del segment.blocks[block.offset]
            neighbour.size += block.size
            block = neighbour
            self.stats.merges += 1
        self._index_insert(pool, block)

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #
    def release_cached_segments(self) -> int:
        """Free every fully-free segment back to the device (``empty_cache``).

        Returns the number of bytes returned to the device.
        """
        released = 0
        for segment in list(self._segments.values()):
            if not segment.is_fully_free():
                continue
            for block in segment.blocks.values():
                self._index_remove(segment.pool, block)
            self.device.free(segment.device_allocation)
            self.stats.device_free_calls += 1
            released += segment.size
            del self._segments[segment.segment_id]
        return released

    def overhead_seconds(self) -> float:
        """Driver-call overhead: segment mallocs/frees are ~1 ms each."""
        driver_calls = self.stats.device_malloc_calls + self.stats.device_free_calls
        return driver_calls * 1e-3
