"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    stalloc-repro list
    stalloc-repro run fig8a
    stalloc-repro run all --quick
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import available_experiments, run_experiment
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stalloc-repro",
        description="Reproduce the tables and figures of the STAlloc paper (EuroSys '26).",
    )
    parser.add_argument("--version", action="version", version=f"stalloc-repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. fig8a, table1) or 'all'")
    run_parser.add_argument(
        "--quick", action="store_true", help="run a reduced version of the experiment"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        targets = available_experiments() if args.experiment == "all" else [args.experiment]
        for experiment_id in targets:
            result = run_experiment(experiment_id, quick=args.quick)
            print(result.to_text())
            print()
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
