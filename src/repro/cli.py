"""Command-line interface: regenerate paper artifacts and run config sweeps.

Usage::

    stalloc-repro list
    stalloc-repro run fig8a
    stalloc-repro run all --quick --jobs 4 --cache-dir .stalloc-cache
    stalloc-repro sweep quick-grid --jobs 4 --output results.json --output results.csv
    stalloc-repro sweep my_spec.json --jobs 8
    stalloc-repro sweep job-smoke --compare baseline.json   # CI regression gate
    stalloc-repro sweep --compare old.json new.json         # diff two saved results
    stalloc-repro sweep ep-comm-smoke --jobs 2              # all-to-all transients on/off
    stalloc-repro sweep timeline-smoke --jobs 2             # discrete-event timing vs comm factor
    stalloc-repro sweep quick-grid --timing analytical      # closed-form timing fallback
    stalloc-repro sweep ep-smoke --cache-max-gib 1          # cap the cache inline
    stalloc-repro sweep --list
    stalloc-repro search gpt-tiny                           # preset search
    stalloc-repro search moe-tiny --exhaustive              # no pruning (the oracle)
    stalloc-repro search gpt-tiny 4xA800-80GB@0.5 --global-batch 8
    stalloc-repro search search-smoke --compare baseline.json  # CI regression gate
    stalloc-repro search --list
    stalloc-repro timeline gpt-tiny --pp 2 --microbatches 8
    stalloc-repro timeline moe-tiny --pp 2 --ep 4 --comm-factor 1.0 \
        --trace-out timeline.json                           # open in ui.perfetto.dev
    stalloc-repro timeline gpt-tiny --workload generation --decode-steps 16
    stalloc-repro sweep gen-smoke --jobs 2                  # prefill/decode KV-cache growth
    stalloc-repro cache prune --max-gib 2
    stalloc-repro sweep quick-grid --obs-out obs.ndjson     # record spans + metrics
    stalloc-repro sweep quick-grid --obs-trace obs-trace.json  # open in ui.perfetto.dev
    stalloc-repro obs summarize obs.ndjson                  # span-tree time breakdown
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import available_experiments, run_experiment
from repro.experiments.common import configure_execution
from repro.version import __version__


def _add_obs_arguments(parser: argparse.ArgumentParser, *, progress: bool = False) -> None:
    """The observability flags shared by the run/sweep/search/timeline commands."""
    parser.add_argument(
        "--obs-out",
        default=None,
        metavar="PATH.ndjson",
        help=(
            "record spans and metrics as NDJSON (one JSON event per line; "
            "inspect with 'stalloc-repro obs summarize')"
        ),
    )
    parser.add_argument(
        "--obs-trace",
        default=None,
        metavar="PATH.json",
        help=(
            "record spans as Chrome trace-event JSON "
            "(open in chrome://tracing or ui.perfetto.dev)"
        ),
    )
    if progress:
        parser.add_argument(
            "--no-progress",
            action="store_true",
            help="silence the stderr progress line (rows done, ETA, cache hit rate)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stalloc-repro",
        description="Reproduce the tables and figures of the STAlloc paper (EuroSys '26).",
    )
    parser.add_argument("--version", action="version", version=f"stalloc-repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. fig8a, table1) or 'all'")
    run_parser.add_argument(
        "--quick", action="store_true", help="run a reduced version of the experiment"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for multi-allocator workloads (default: 1, serial)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent trace/plan cache directory (default: no on-disk cache)",
    )
    _add_obs_arguments(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a declarative config x allocator sweep grid"
    )
    sweep_parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="sweep preset name or path to a JSON spec file",
    )
    sweep_parser.add_argument(
        "--list", action="store_true", dest="list_presets", help="list available sweep presets"
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes executing sweep points (default: 1, serial)",
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=".stalloc-repro-cache",
        metavar="DIR",
        help="persistent trace/plan/result cache directory (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent cache for this sweep",
    )
    sweep_parser.add_argument(
        "--fresh",
        action="store_true",
        help="recompute result rows even when cached (traces/plans are still reused)",
    )
    sweep_parser.add_argument(
        "--output",
        action="append",
        default=[],
        metavar="PATH",
        help="write results to PATH (.json or .csv); repeatable",
    )
    sweep_parser.add_argument(
        "--with-throughput",
        action="store_true",
        help="deprecated no-op: throughput columns are part of the default rows now",
    )
    sweep_parser.add_argument(
        "--timing",
        choices=["timeline", "analytical"],
        default=None,
        help=(
            "timing backend for the throughput columns: the discrete-event "
            "timeline simulator (per-rank schedules, routed-load all-to-all "
            "costs) or the closed-form analytical model (default: what the "
            "spec selects, usually timeline)"
        ),
    )
    sweep_parser.add_argument(
        "--max-rows",
        type=int,
        default=40,
        metavar="N",
        help="rows to print to stdout (default: %(default)s; outputs always get all rows)",
    )
    sweep_parser.add_argument(
        "--cache-max-gib",
        type=float,
        default=None,
        metavar="X",
        help=(
            "cap the persistent cache during the sweep: stores that push it past "
            "X GiB LRU-evict inline (default: unbounded; see 'cache prune')"
        ),
    )
    sweep_parser.add_argument(
        "--compare",
        nargs="+",
        default=None,
        metavar="RESULTS.json",
        help=(
            "with one file: diff the sweep's rows against that previous results "
            "JSON file; with two files: diff them against each other without "
            "running any sweep (no spec argument). Exits non-zero if any point "
            "regressed (peak memory up, throughput down, ok -> OOM)"
        ),
    )
    sweep_parser.add_argument(
        "--tolerance-pct",
        type=float,
        default=0.0,
        metavar="PCT",
        help="relative change a metric may move before --compare flags it (default: 0)",
    )
    _add_obs_arguments(sweep_parser, progress=True)

    search_parser = subparsers.add_parser(
        "search",
        help="search the config space for the fastest configuration that fits",
    )
    search_parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help=(
            "search preset name, path to a JSON search spec, or a model name "
            "(then a cluster argument is required)"
        ),
    )
    search_parser.add_argument(
        "cluster",
        nargs="?",
        default=None,
        help=(
            "cluster description '[<nodes>x]<N>x<DEVICE>[@<GiB>]' (e.g. "
            "8xA800-80GB@40 or 2x8xA800-80GB) when the first argument is a "
            "model name; the node form prices all-to-all on the tiered fabric"
        ),
    )
    search_parser.add_argument(
        "--list", action="store_true", dest="list_presets", help="list available search presets"
    )
    search_parser.add_argument(
        "--global-batch",
        type=int,
        default=16,
        metavar="N",
        help="sequences per optimizer step for model+cluster searches (default: %(default)s)",
    )
    search_parser.add_argument(
        "--allocators",
        nargs="+",
        default=["torch2.3", "stalloc"],
        metavar="NAME",
        help="allocators to price for model+cluster searches (default: %(default)s)",
    )
    search_parser.add_argument(
        "--exhaustive",
        action="store_true",
        help="disable both prunes and evaluate the full candidate grid (the oracle)",
    )
    search_parser.add_argument(
        "--cache-dir",
        default=".stalloc-repro-cache",
        metavar="DIR",
        help="persistent trace/plan/result cache directory (default: %(default)s)",
    )
    search_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent cache for this search",
    )
    search_parser.add_argument(
        "--fresh",
        action="store_true",
        help="recompute result rows even when cached (traces/plans are still reused)",
    )
    search_parser.add_argument(
        "--output",
        action="append",
        default=[],
        metavar="PATH",
        help="write the search result to PATH (.json or .csv); repeatable",
    )
    search_parser.add_argument(
        "--timing",
        choices=["timeline", "analytical"],
        default=None,
        help="timing backend for the throughput columns (default: what the spec selects)",
    )
    search_parser.add_argument(
        "--max-rows",
        type=int,
        default=40,
        metavar="N",
        help="rows to print to stdout (default: %(default)s; outputs always get all rows)",
    )
    search_parser.add_argument(
        "--cache-max-gib",
        type=float,
        default=None,
        metavar="X",
        help="cap the persistent cache during the search (LRU-evict past X GiB)",
    )
    search_parser.add_argument(
        "--compare",
        nargs="+",
        default=None,
        metavar="RESULTS.json",
        help=(
            "with one file: diff the search's ranked rows against that previous "
            "results JSON file; with two files: diff them against each other "
            "without running any search. Exits non-zero on regressions "
            "(rank shifts, peak memory up, throughput down, ok -> OOM)"
        ),
    )
    search_parser.add_argument(
        "--tolerance-pct",
        type=float,
        default=0.0,
        metavar="PCT",
        help="relative change a metric may move before --compare flags it (default: 0)",
    )
    _add_obs_arguments(search_parser, progress=True)

    timeline_parser = subparsers.add_parser(
        "timeline",
        help="simulate one iteration's timeline and optionally export it",
    )
    timeline_parser.add_argument(
        "model", help="model preset name (see 'stalloc-repro sweep --list' presets)"
    )
    timeline_parser.add_argument(
        "--pp", type=int, default=1, metavar="N", help="pipeline-parallel degree (default: 1)"
    )
    timeline_parser.add_argument(
        "--dp", type=int, default=1, metavar="N", help="data-parallel degree (default: 1)"
    )
    timeline_parser.add_argument(
        "--ep", type=int, default=1, metavar="N", help="expert-parallel degree (default: 1)"
    )
    timeline_parser.add_argument(
        "--chunks",
        type=int,
        default=1,
        metavar="N",
        help="virtual-pipeline chunks (default: 1)",
    )
    timeline_parser.add_argument(
        "--microbatches",
        type=int,
        default=8,
        metavar="N",
        help="micro-batches per iteration (default: %(default)s)",
    )
    timeline_parser.add_argument(
        "--micro-batch-size",
        type=int,
        default=1,
        metavar="N",
        help="sequences per micro-batch (default: %(default)s)",
    )
    timeline_parser.add_argument(
        "--comm-factor",
        type=float,
        default=0.0,
        metavar="X",
        help="MoE all-to-all comm factor (default: 0, comm-free)",
    )
    timeline_parser.add_argument(
        "--overlap",
        type=float,
        default=0.0,
        metavar="X",
        help=(
            "fraction of each all-to-all hidden under expert compute, in "
            "[0, 1] (default: 0, fully serialised)"
        ),
    )
    timeline_parser.add_argument(
        "--workload",
        default="training",
        choices=["training", "inference", "generation"],
        help="workload kind to simulate (default: %(default)s)",
    )
    timeline_parser.add_argument(
        "--decode-steps",
        type=int,
        default=0,
        metavar="N",
        help=(
            "autoregressive decode passes per micro-batch "
            "(generation workloads only; default: 0)"
        ),
    )
    timeline_parser.add_argument(
        "--max-new-tokens",
        type=int,
        default=0,
        metavar="N",
        help=(
            "cap on generated tokens per sequence -- the KV cache stops "
            "growing at the cap (generation workloads only; default: 0, no cap)"
        ),
    )
    timeline_parser.add_argument(
        "--gpu", default="A800-80GB", metavar="NAME", help="GPU spec (default: %(default)s)"
    )
    timeline_parser.add_argument(
        "--gpus-per-node",
        type=int,
        default=None,
        metavar="N",
        help=(
            "ranks per node for the hierarchical fabric (default: the GPU "
            "spec's; 0 = single node)"
        ),
    )
    timeline_parser.add_argument(
        "--intra-bw",
        type=float,
        default=None,
        metavar="GBPS",
        help="intra-node all-to-all bandwidth in GB/s (default: the GPU spec's)",
    )
    timeline_parser.add_argument(
        "--inter-bw",
        type=float,
        default=None,
        metavar="GBPS",
        help="inter-node all-to-all bandwidth in GB/s (default: the GPU spec's)",
    )
    timeline_parser.add_argument(
        "--seed", type=int, default=0, metavar="N", help="router seed (default: 0)"
    )
    timeline_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        metavar="X",
        help="layer-count scale in (0, 1] (default: 1.0)",
    )
    timeline_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH.json",
        help=(
            "write the per-rank event streams as Chrome trace-event JSON "
            "(open in chrome://tracing or ui.perfetto.dev)"
        ),
    )
    _add_obs_arguments(timeline_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="manage the persistent trace/plan/result cache"
    )
    cache_parser.add_argument("action", choices=["prune"], help="cache operation to run")
    cache_parser.add_argument(
        "--cache-dir",
        default=".stalloc-repro-cache",
        metavar="DIR",
        help="cache directory to operate on (default: %(default)s)",
    )
    cache_parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict entries (oldest mtime first) until the cache is at most N bytes",
    )
    cache_parser.add_argument(
        "--max-gib",
        type=float,
        default=None,
        metavar="X",
        help="like --max-bytes, in GiB",
    )

    obs_parser = subparsers.add_parser(
        "obs", help="inspect observability recordings (--obs-out NDJSON files)"
    )
    obs_parser.add_argument(
        "action", choices=["summarize"], help="obs operation to run"
    )
    obs_parser.add_argument(
        "source", metavar="OBS.ndjson", help="NDJSON file written by --obs-out"
    )
    obs_parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the summary as JSON instead of text",
    )
    return parser


def _cmd_run(args) -> int:
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.jobs != 1 or args.cache_dir is not None:
        configure_execution(jobs=args.jobs, cache_dir=args.cache_dir)
    targets = available_experiments() if args.experiment == "all" else [args.experiment]
    for experiment_id in targets:
        result = run_experiment(experiment_id, quick=args.quick)
        print(result.to_text())
        print()
    return 0


def _cmd_sweep(args) -> int:
    from repro.obs import ProgressReporter
    from repro.sweep import (
        SweepPointError,
        SweepResult,
        available_presets,
        compare_files,
        compare_results,
        load_spec,
        run_sweep,
    )

    if args.list_presets:
        for preset in available_presets():
            print(preset)
        return 0
    if args.compare is not None and len(args.compare) > 2:
        print(
            f"error: --compare takes one or two results files, got {len(args.compare)}",
            file=sys.stderr,
        )
        return 2
    if args.compare is not None and len(args.compare) == 2:
        # Dual-file mode: diff two saved results files, run nothing.
        if args.spec is not None:
            print(
                "error: a spec cannot be combined with two-file --compare "
                "(the files are compared without running a sweep)",
                file=sys.stderr,
            )
            return 2
        old_path, new_path = args.compare
        try:
            report = compare_files(old_path, new_path, tolerance_pct=args.tolerance_pct)
        except (OSError, ValueError) as error:
            print(f"error: cannot compare results files: {error}", file=sys.stderr)
            return 2
        print(report.to_text())
        return report.exit_code
    if args.spec is None:
        print("error: a sweep spec (preset name or JSON file) is required", file=sys.stderr)
        return 2
    bad_outputs = [o for o in args.output if not o.lower().endswith((".json", ".csv"))]
    if bad_outputs:
        print(
            f"error: unsupported --output extension for {', '.join(bad_outputs)}; "
            "use .json or .csv",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        spec = load_spec(args.spec)
    except (ValueError, FileNotFoundError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.timing is not None:
        spec.timing = args.timing
    baseline = None
    if args.compare is not None:
        try:
            baseline = SweepResult.load(args.compare[0])
        except (OSError, ValueError) as error:
            print(f"error: cannot load --compare baseline: {error}", file=sys.stderr)
            return 2
    if args.cache_max_gib is not None and args.cache_max_gib < 0:
        print(
            f"error: --cache-max-gib must be >= 0, got {args.cache_max_gib}",
            file=sys.stderr,
        )
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    cache_max_bytes = (
        int(args.cache_max_gib * (1 << 30)) if args.cache_max_gib is not None else None
    )
    try:
        result = run_sweep(
            spec,
            jobs=args.jobs,
            cache_dir=cache_dir,
            reuse_results=not args.fresh,
            cache_max_bytes=cache_max_bytes,
            progress=ProgressReporter(0, label="sweep", enabled=not args.no_progress),
        )
    except SweepPointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for output in args.output:
        result.write(output)
        print(f"wrote {output}", file=sys.stderr)
    print(result.to_text(max_rows=args.max_rows if args.max_rows >= 0 else None))
    if baseline is not None:
        report = compare_results(baseline, result, tolerance_pct=args.tolerance_pct)
        print()
        print(report.to_text())
        return report.exit_code
    return 0


def _cmd_search(args) -> int:
    from repro.obs import ProgressReporter
    from repro.search import (
        SearchSpec,
        available_search_presets,
        load_search_spec,
        run_search,
    )
    from repro.sweep import SweepPointError, SweepResult, compare_files, compare_results

    if args.list_presets:
        for preset in available_search_presets():
            print(preset)
        return 0
    if args.compare is not None and len(args.compare) > 2:
        print(
            f"error: --compare takes one or two results files, got {len(args.compare)}",
            file=sys.stderr,
        )
        return 2
    if args.compare is not None and len(args.compare) == 2:
        # Dual-file mode: diff two saved results files, run nothing.
        if args.spec is not None:
            print(
                "error: a spec cannot be combined with two-file --compare "
                "(the files are compared without running a search)",
                file=sys.stderr,
            )
            return 2
        old_path, new_path = args.compare
        try:
            report = compare_files(old_path, new_path, tolerance_pct=args.tolerance_pct)
        except (OSError, ValueError) as error:
            print(f"error: cannot compare results files: {error}", file=sys.stderr)
            return 2
        print(report.to_text())
        return report.exit_code
    if args.spec is None:
        print(
            "error: a search spec (preset name, JSON file, or model + cluster) is required",
            file=sys.stderr,
        )
        return 2
    bad_outputs = [o for o in args.output if not o.lower().endswith((".json", ".csv"))]
    if bad_outputs:
        print(
            f"error: unsupported --output extension for {', '.join(bad_outputs)}; "
            "use .json or .csv",
            file=sys.stderr,
        )
        return 2
    try:
        if args.cluster is not None:
            # Model + cluster form: build a default spec around the model.
            spec = SearchSpec(
                name=f"search-{args.spec}",
                model=args.spec,
                cluster=args.cluster,
                global_batch=args.global_batch,
                allocators=list(args.allocators),
            )
        else:
            spec = load_search_spec(args.spec)
    except (ValueError, FileNotFoundError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.timing is not None:
        spec.timing = args.timing
    baseline = None
    if args.compare is not None:
        try:
            baseline = SweepResult.load(args.compare[0])
        except (OSError, ValueError) as error:
            print(f"error: cannot load --compare baseline: {error}", file=sys.stderr)
            return 2
    if args.cache_max_gib is not None and args.cache_max_gib < 0:
        print(
            f"error: --cache-max-gib must be >= 0, got {args.cache_max_gib}",
            file=sys.stderr,
        )
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    cache_max_bytes = (
        int(args.cache_max_gib * (1 << 30)) if args.cache_max_gib is not None else None
    )
    try:
        result = run_search(
            spec,
            cache_dir=cache_dir,
            reuse_results=not args.fresh,
            cache_max_bytes=cache_max_bytes,
            exhaustive=args.exhaustive,
            progress=ProgressReporter(0, label="search", enabled=not args.no_progress),
        )
    except SweepPointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for output in args.output:
        result.write(output)
        print(f"wrote {output}", file=sys.stderr)
    print(result.to_text(max_rows=args.max_rows if args.max_rows >= 0 else None))
    if baseline is not None:
        report = compare_results(
            baseline, result.as_sweep_result(), tolerance_pct=args.tolerance_pct
        )
        print()
        print(report.to_text())
        return report.exit_code
    return 0


def _cmd_timeline(args) -> int:
    from dataclasses import replace as dataclass_replace

    from repro.gpu.specs import get_gpu
    from repro.timeline import simulate_timeline, write_chrome_trace
    from repro.workloads.models import get_model
    from repro.workloads.parallelism import ParallelismConfig
    from repro.workloads.training import TrainingConfig

    try:
        config = TrainingConfig(
            model=get_model(args.model),
            parallelism=ParallelismConfig(
                pipeline_parallel=args.pp,
                data_parallel=args.dp,
                expert_parallel=args.ep,
                virtual_pipeline_chunks=args.chunks,
            ),
            micro_batch_size=args.micro_batch_size,
            num_microbatches=args.microbatches,
            moe_comm_factor=args.comm_factor,
            comm_overlap_factor=args.overlap,
            workload_kind=args.workload,
            decode_steps=args.decode_steps,
            max_new_tokens=args.max_new_tokens,
        )
        gpu = get_gpu(args.gpu)
        fabric = {
            name: value
            for name, value in (
                ("gpus_per_node", args.gpus_per_node),
                ("intra_node_gbytes_per_sec", args.intra_bw),
                ("inter_node_gbytes_per_sec", args.inter_bw),
            )
            if value is not None
        }
        if fabric:
            gpu = dataclass_replace(gpu, **fabric)
        result = simulate_timeline(config, gpu=gpu, seed=args.seed, scale=args.scale)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    summary = result.as_dict()
    print(f"timeline: {summary['description']} on {summary['gpu']}")
    print(f"  iteration_seconds  {summary['iteration_seconds']:.6f}")
    print(f"  compute_seconds    {result.compute_seconds:.6f}")
    print(f"  comm_seconds       {summary['comm_seconds']:.6f}")
    print(f"  stall_seconds      {summary['stall_seconds']:.6f}")
    if summary["decode_seconds"]:
        print(f"  decode_seconds     {summary['decode_seconds']:.6f}")
    print(f"  bubble_fraction    {summary['bubble_fraction']:.4f}")
    print(f"  mfu                {summary['mfu']:.4f}")
    print(f"  events             {summary['num_events']}")
    print(f"  binding_rank       pp{summary['binding_rank'][0]}/ep{summary['binding_rank'][1]}")
    if args.trace_out is not None:
        written = write_chrome_trace(result, args.trace_out)
        print(f"wrote {written} trace events to {args.trace_out}", file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    from repro.sweep import SweepCache

    if args.max_bytes is not None and args.max_gib is not None:
        print("error: pass at most one of --max-bytes / --max-gib", file=sys.stderr)
        return 2
    max_bytes = args.max_bytes
    if args.max_gib is not None:
        max_bytes = int(args.max_gib * (1 << 30))
    if max_bytes is not None and max_bytes < 0:
        print(f"error: size limit must be >= 0, got {max_bytes}", file=sys.stderr)
        return 2
    cache = SweepCache(args.cache_dir)
    report = cache.prune(max_bytes)
    print(
        f"pruned {args.cache_dir}: "
        f"{report['stale_removed']} stale-version entries "
        f"({report['stale_bytes']} bytes), "
        f"{report['lru_removed']} LRU-evicted entries ({report['lru_bytes']} bytes); "
        f"{report['remaining_files']} entries / {report['remaining_bytes']} bytes kept"
    )
    stats = cache.cache_stats()
    print(
        "cache stats: "
        f"{stats['evicted_entries']} evicted entries ({stats['evicted_bytes']} bytes), "
        f"{stats['hits']} hits / {stats['misses']} misses "
        f"({100 * stats['hit_rate']:.0f}% hit rate this process)"
    )
    return 0


def _cmd_obs(args) -> int:
    import json

    from repro.obs import summarize_file

    try:
        summary = summarize_file(args.source)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
    else:
        print(summary.to_text())
    return 0


def _run_with_obs(handler, args) -> int:
    """Dispatch one command with --obs-out/--obs-trace recording installed.

    The tracer is installed before the handler and shut down (flushing
    metric totals and closing sinks) afterwards -- also on error, so a
    failing sweep still leaves a parseable NDJSON file for post-mortems.
    """
    from repro import obs

    obs.configure(ndjson_path=args.obs_out, chrome_path=args.obs_trace)
    try:
        return handler(args)
    finally:
        obs.shutdown()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        return _run_with_obs(_cmd_run, args)

    if args.command == "sweep":
        return _run_with_obs(_cmd_sweep, args)

    if args.command == "search":
        return _run_with_obs(_cmd_search, args)

    if args.command == "timeline":
        return _run_with_obs(_cmd_timeline, args)

    if args.command == "cache":
        return _cmd_cache(args)

    if args.command == "obs":
        return _cmd_obs(args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
