"""LLM training workload models and allocation-trace generation.

The paper evaluates STAlloc on traces produced by Megatron-LM / Colossal-AI
training real models on real GPUs.  The allocator, however, only ever sees the
stream of ``malloc``/``free`` requests; this package generates that stream
analytically from a model configuration, a parallelism configuration and the
chosen training optimizations, reproducing the spatial regularity (a few dozen
distinct sizes), temporal regularity (persistent / scoped / transient
lifespans) and the perturbations introduced by virtual pipelining,
recomputation, offloading, ZeRO and MoE routing.
"""

from repro.workloads.model_config import ModelConfig
from repro.workloads.models import MODEL_REGISTRY, get_model
from repro.workloads.moe import ExpertRouter, balanced_split
from repro.workloads.parallelism import ParallelismConfig, normalize_rank, rank_label
from repro.workloads.schedule import PhaseSpec, build_schedule
from repro.workloads.trace import Trace, TraceMetadata
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import OPTIMIZATION_PRESETS, TrainingConfig, preset_config

__all__ = [
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_model",
    "ParallelismConfig",
    "normalize_rank",
    "rank_label",
    "balanced_split",
    "TrainingConfig",
    "OPTIMIZATION_PRESETS",
    "preset_config",
    "PhaseSpec",
    "build_schedule",
    "ExpertRouter",
    "Trace",
    "TraceMetadata",
    "TraceGenerator",
]
