"""Registry of the models used in the paper's evaluation.

Architecture hyper-parameters follow the public model cards / technical
reports; small deviations do not matter for the reproduction as long as the
resulting parameter counts and activation shapes are in the right regime.
"""

from __future__ import annotations

from repro.workloads.model_config import ModelConfig

MODEL_REGISTRY: dict[str, ModelConfig] = {}


def _register(config: ModelConfig) -> ModelConfig:
    MODEL_REGISTRY[config.name] = config
    return config


GPT2_345M = _register(
    ModelConfig(
        name="gpt2-345m",
        hidden_size=1024,
        num_layers=24,
        num_attention_heads=16,
        ffn_hidden_size=4096,
        vocab_size=50304,
        seq_length=1024,
        gated_mlp=False,
        tie_embeddings=True,
    )
)

LLAMA2_7B = _register(
    ModelConfig(
        name="llama2-7b",
        hidden_size=4096,
        num_layers=32,
        num_attention_heads=32,
        ffn_hidden_size=11008,
        vocab_size=32000,
        seq_length=4096,
        gated_mlp=True,
        tie_embeddings=False,
    )
)

QWEN25_7B = _register(
    ModelConfig(
        name="qwen2.5-7b",
        hidden_size=3584,
        num_layers=28,
        num_attention_heads=28,
        num_query_groups=4,
        ffn_hidden_size=18944,
        vocab_size=152064,
        seq_length=4096,
        gated_mlp=True,
        tie_embeddings=False,
    )
)

QWEN25_14B = _register(
    ModelConfig(
        name="qwen2.5-14b",
        hidden_size=5120,
        num_layers=48,
        num_attention_heads=40,
        num_query_groups=8,
        ffn_hidden_size=13824,
        vocab_size=152064,
        seq_length=4096,
        gated_mlp=True,
        tie_embeddings=False,
    )
)

QWEN25_32B = _register(
    ModelConfig(
        name="qwen2.5-32b",
        hidden_size=5120,
        num_layers=64,
        num_attention_heads=40,
        num_query_groups=8,
        ffn_hidden_size=27648,
        vocab_size=152064,
        seq_length=4096,
        gated_mlp=True,
        tie_embeddings=False,
    )
)

QWEN25_72B = _register(
    ModelConfig(
        name="qwen2.5-72b",
        hidden_size=8192,
        num_layers=80,
        num_attention_heads=64,
        num_query_groups=8,
        ffn_hidden_size=29568,
        vocab_size=152064,
        seq_length=4096,
        gated_mlp=True,
        tie_embeddings=False,
    )
)

QWEN15_MOE_A27B = _register(
    ModelConfig(
        name="qwen1.5-moe-a2.7b",
        hidden_size=2048,
        num_layers=24,
        num_attention_heads=16,
        ffn_hidden_size=5632,
        vocab_size=151936,
        seq_length=4096,
        gated_mlp=True,
        tie_embeddings=False,
        num_experts=60,
        moe_top_k=4,
        expert_ffn_hidden_size=1408,
        moe_shared_expert_ffn=5632,
    )
)


GPT_TINY = _register(
    ModelConfig(
        name="gpt-tiny",
        hidden_size=256,
        num_layers=4,
        num_attention_heads=4,
        ffn_hidden_size=1024,
        vocab_size=4096,
        seq_length=256,
        gated_mlp=False,
        tie_embeddings=True,
    )
)
"""Synthetic dense model for golden-trace fixtures and smoke tests.

Not part of the paper's evaluation: a full-scale trace generates in
milliseconds, so regression tests can pin its digest without slowing the
suite.  ``num_layers`` divides by pipeline degrees 1/2/4.
"""


MOE_TINY = _register(
    ModelConfig(
        name="moe-tiny",
        hidden_size=512,
        num_layers=8,
        num_attention_heads=8,
        ffn_hidden_size=2048,
        vocab_size=8192,
        seq_length=512,
        gated_mlp=True,
        tie_embeddings=True,
        num_experts=8,
        moe_top_k=2,
        expert_ffn_hidden_size=512,
    )
)
"""Synthetic small MoE model for smoke tests and CI sweeps.

Not part of the paper's evaluation: its purpose is an expert-parallel job
(8 experts, EP up to 8) whose full (pp, ep) rank grid simulates in seconds.
``seq_length * moe_top_k`` is divisible by ``num_experts``, so the
``moe_imbalance == 0`` balanced split is *exactly* uniform and EP ranks are
provably memory-identical -- the property the differential tests pin down.
"""


def get_model(name: str) -> ModelConfig:
    """Look up a model configuration by its registry name."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(MODEL_REGISTRY))
        raise ValueError(f"unknown model {name!r}; available: {available}") from None
