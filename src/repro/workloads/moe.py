"""Mixture-of-Experts token-routing simulation.

MoE layers decide *at runtime* how many tokens each expert processes, so the
sizes of expert activation tensors are only known when the layer executes.
This is the "dynamicity" STAlloc's dynamic allocator handles (§5.2/§6.2).

The router draws per-expert token counts from a seeded multinomial with a
configurable imbalance factor, so traces are reproducible while still varying
across micro-batches, layers and iterations exactly like a real gating
network's output does.

Expert parallelism splits the expert set over ``num_experts /
num_local_experts`` expert-parallel ranks.  The gating decision is *global*
-- one draw assigns every token to its experts -- and each EP rank merely
observes the slice of that decision landing on its local experts.  Routers of
the same job therefore share a seed (so their global draws agree and token
counts are conserved across ranks) and differ only in ``ep_rank``, the slice
they return.  With ``imbalance == 0`` the split is an exact deterministic
balanced partition, so every EP rank sees the same load -- the property the
rank-deduplication layer relies on to collapse EP ranks into one equivalence
class.

Every draw is keyed by the *layer execution* it belongs to: the RNG for one
``(layer, microbatch)`` pair is derived from ``(seed, layer, microbatch)``
alone, never from the order in which ``route`` was called.  Routers of
different ranks execute their schedules in different orders (1F1B warm-up
depth varies by stage), so a call-order-dependent stream would hand the same
layer execution different gating decisions on different ranks -- breaking
token conservation and the all-to-all transient sizes derived from it.  Draws
are additionally memoised per execution, so asking twice (forward and the
recomputed backward of one micro-batch, or the dispatch/combine pair) always
returns identical counts.
"""

from __future__ import annotations

import numpy as np


def balanced_split(total: int, bins: int) -> list[int]:
    """Deterministic balanced partition of ``total`` items into ``bins``.

    Bresenham-style: bin ``i`` receives ``round(total*(i+1)/bins) -
    round(total*i/bins)`` items, so every bin gets ``total // bins`` or one
    more, the remainder is spread evenly across the range (not piled onto the
    first bins, which would skew the first EP rank's slice), and the counts
    sum to ``total`` exactly.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    edges = [(total * i) // bins for i in range(bins + 1)]
    return [edges[i + 1] - edges[i] for i in range(bins)]


class ExpertRouter:
    """Deterministic (seeded) simulation of top-k token routing."""

    def __init__(
        self,
        num_experts: int,
        num_local_experts: int,
        top_k: int,
        *,
        seed: int = 0,
        imbalance: float = 0.3,
        ep_rank: int = 0,
    ):
        if num_experts < 1 or num_local_experts < 1:
            raise ValueError("num_experts and num_local_experts must be >= 1")
        if num_local_experts > num_experts:
            raise ValueError("num_local_experts cannot exceed num_experts")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if not 0.0 <= imbalance <= 1.0:
            raise ValueError(f"imbalance must be in [0, 1], got {imbalance}")
        if ep_rank < 0:
            raise ValueError(f"ep_rank must be >= 0, got {ep_rank}")
        if (ep_rank + 1) * num_local_experts > num_experts:
            raise ValueError(
                f"ep_rank {ep_rank} with {num_local_experts} local experts exceeds "
                f"the {num_experts} global experts"
            )
        self.num_experts = num_experts
        self.num_local_experts = num_local_experts
        self.top_k = top_k
        self.imbalance = imbalance
        self.ep_rank = ep_rank
        self.seed = seed
        #: Memoised global draws keyed by (num_tokens, layer, microbatch):
        #: one layer execution has exactly one gating decision, no matter how
        #: often (forward, recomputed backward, dispatch and combine sizing)
        #: or in which order the ranks ask for it.
        self._draws: dict[tuple[int, int, int], list[int]] = {}

    @property
    def local_expert_slice(self) -> slice:
        """Indices of the global experts hosted on this EP rank."""
        start = self.ep_rank * self.num_local_experts
        return slice(start, start + self.num_local_experts)

    def _execution_rng(self, layer: int, microbatch: int) -> np.random.Generator:
        """RNG of one layer execution, a pure function of (seed, layer, mb).

        Derived through a :class:`numpy.random.SeedSequence` spawn key, so
        nearby executions get statistically independent streams while any two
        routers sharing a seed -- regardless of ``ep_rank`` or of the order
        their schedules visit executions -- derive the identical stream for
        the identical execution.
        """
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(int(layer), int(microbatch))
        )
        return np.random.default_rng(sequence)

    def route_global(
        self, num_tokens: int, *, layer: int = 0, microbatch: int = 0
    ) -> list[int]:
        """Tokens assigned to *every* global expert for one layer execution.

        This is the shared gating decision: routers constructed with the same
        seed produce the same global counts for the same ``(layer,
        microbatch)`` execution regardless of their ``ep_rank`` *and*
        regardless of call order, which is what conserves the total routed
        load (``num_tokens * top_k``) across the expert-parallel group.  With
        ``imbalance == 0`` the split is an exact balanced partition and
        consumes no randomness at all, so it is identical for every seed as
        well.
        """
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be non-negative, got {num_tokens}")
        if layer < 0 or microbatch < 0:
            raise ValueError(
                f"layer and microbatch must be non-negative, got ({layer}, {microbatch})"
            )
        total_assignments = num_tokens * self.top_k
        if num_tokens == 0:
            return [0] * self.num_experts
        if self.imbalance == 0.0:
            return balanced_split(total_assignments, self.num_experts)
        key = (num_tokens, layer, microbatch)
        cached = self._draws.get(key)
        if cached is not None:
            return list(cached)
        # Expected load per expert is uniform; the imbalance factor mixes in a
        # random preference vector (a crude but effective stand-in for a real
        # gating network's skew).
        rng = self._execution_rng(layer, microbatch)
        base = np.full(self.num_experts, 1.0 / self.num_experts)
        preference = rng.dirichlet(np.full(self.num_experts, 2.0))
        probabilities = (1.0 - self.imbalance) * base + self.imbalance * preference
        probabilities = probabilities / probabilities.sum()
        counts = [int(count) for count in rng.multinomial(total_assignments, probabilities)]
        self._draws[key] = counts
        return list(counts)

    def route(self, num_tokens: int, *, layer: int = 0, microbatch: int = 0) -> list[int]:
        """Tokens assigned to each *local* expert for one layer execution.

        The total routed load across all experts is ``num_tokens * top_k``
        (every token selects ``top_k`` experts); this rank only sees the slice
        destined for its local experts.  ``layer``/``microbatch`` identify the
        execution: they alone (with the seed) determine the draw, so different
        executions produce different -- but reproducible and cross-rank
        consistent -- splits.
        """
        return self.route_global(num_tokens, layer=layer, microbatch=microbatch)[
            self.local_expert_slice
        ]

    def expected_local_tokens(self, num_tokens: int) -> int:
        """Average number of token assignments landing on this rank's experts."""
        per_expert = num_tokens * self.top_k / self.num_experts
        return int(round(per_expert * self.num_local_experts))
