"""Mixture-of-Experts token-routing simulation.

MoE layers decide *at runtime* how many tokens each expert processes, so the
sizes of expert activation tensors are only known when the layer executes.
This is the "dynamicity" STAlloc's dynamic allocator handles (§5.2/§6.2).

The router here draws per-expert token counts from a seeded multinomial with a
configurable imbalance factor, so traces are reproducible while still varying
across micro-batches, layers and iterations exactly like a real gating
network's output does.
"""

from __future__ import annotations

import numpy as np


class ExpertRouter:
    """Deterministic (seeded) simulation of top-k token routing."""

    def __init__(
        self,
        num_experts: int,
        num_local_experts: int,
        top_k: int,
        *,
        seed: int = 0,
        imbalance: float = 0.3,
    ):
        if num_experts < 1 or num_local_experts < 1:
            raise ValueError("num_experts and num_local_experts must be >= 1")
        if num_local_experts > num_experts:
            raise ValueError("num_local_experts cannot exceed num_experts")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if not 0.0 <= imbalance <= 1.0:
            raise ValueError(f"imbalance must be in [0, 1], got {imbalance}")
        self.num_experts = num_experts
        self.num_local_experts = num_local_experts
        self.top_k = top_k
        self.imbalance = imbalance
        self._rng = np.random.default_rng(seed)

    def route(self, num_tokens: int, *, layer: int = 0, microbatch: int = 0) -> list[int]:
        """Tokens assigned to each *local* expert for one layer execution.

        The total routed load across all experts is ``num_tokens * top_k``
        (every token selects ``top_k`` experts); this rank only sees the slice
        destined for its local experts.  ``layer``/``microbatch`` perturb the
        routing so different executions produce different (but reproducible)
        splits.
        """
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be non-negative, got {num_tokens}")
        if num_tokens == 0:
            return [0] * self.num_local_experts
        total_assignments = num_tokens * self.top_k
        # Expected load per expert is uniform; the imbalance factor mixes in a
        # random preference vector (a crude but effective stand-in for a real
        # gating network's skew).
        base = np.full(self.num_experts, 1.0 / self.num_experts)
        preference = self._rng.dirichlet(np.full(self.num_experts, 2.0))
        probabilities = (1.0 - self.imbalance) * base + self.imbalance * preference
        probabilities = probabilities / probabilities.sum()
        counts = self._rng.multinomial(total_assignments, probabilities)
        local = counts[: self.num_local_experts]
        return [int(count) for count in local]

    def expected_local_tokens(self, num_tokens: int) -> int:
        """Average number of token assignments landing on this rank's experts."""
        per_expert = num_tokens * self.top_k / self.num_experts
        return int(round(per_expert * self.num_local_experts))
