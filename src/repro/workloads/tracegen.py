"""Allocation-trace generation for one training iteration.

:class:`TraceGenerator` walks the pipeline schedule of one rank and emits the
allocation/free events its tensors would cause, reproducing the temporal
classes the paper identifies (§2.3):

* *persistent* tensors (weights, gradients, optimizer states) allocated during
  initialisation and never freed within the iteration;
* *scoped* tensors (saved activations) allocated in a micro-batch's forward
  pass and freed, in reverse order, during its backward pass;
* *transient* tensors (operator workspaces, recomputed activations, offloaded
  activations, ZeRO communication buckets) freed inside the phase that
  created them;
* *dynamic* tensors (MoE expert activations) whose sizes depend on runtime
  token routing and are tagged with their originating module so STAlloc can
  form HomoLayer groups.

The resulting event stream is what every allocator in this repository is
evaluated on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.core.columns import ALLOC, CATEGORY_CODES, FREE, ColumnBuilder
from repro.core.events import EventKind, Phase, PhaseKind, TensorCategory, TraceEvent
from repro.obs.tracer import span as _obs_span
from repro.workloads.memory_model import MemoryModel, TensorSpec
from repro.workloads.moe import ExpertRouter
from repro.workloads.schedule import PhaseSpec, build_schedule
from repro.workloads.trace import Trace, TraceMetadata
from repro.workloads.training import TrainingConfig


#: Bump whenever the generator's event stream changes for an unchanged
#: configuration, so persistent caches keyed by :func:`config_fingerprint`
#: cannot serve traces produced by an older generator.
#: Version 2: rank-aware schedules (per-stage 1F1B warm-up), last-stage LM
#: head / fp32 logits, and rank + generator version in the trace metadata.
#: Version 3: expert-parallel rank asymmetry -- per-EP-rank router slices,
#: the exact balanced split at ``moe_imbalance == 0``, and the EP rank in the
#: trace metadata and fingerprint.
#: Version 4: expert-parallel all-to-all communication transients (the
#: ``moe_comm_factor`` dispatch/combine staging buffers), execution-keyed
#: router draws (the gating decision of one (layer, microbatch) execution no
#: longer depends on the rank's schedule order), and ``moe_comm_factor`` in
#: the trace metadata.
#: Version 5: inference and generation workloads -- forward-only schedules,
#: per-layer KV caches allocated at prefill and re-allocated larger per decode
#: step, decode-step transients, and ``workload_kind``/``decode_steps``/
#: ``max_new_tokens`` in the trace metadata.  Training event streams are
#: byte-for-byte unchanged from version 4.
TRACEGEN_VERSION = 5

#: Fingerprints are pure functions of hashable frozen dataclasses, and they
#: sit on hot paths (every memoised timeline lookup and sweep-cache probe
#: re-derives one), so they are memoised.  Bounded: cleared wholesale when
#: full -- a sweep touches far fewer distinct configs than the cap.
_FINGERPRINT_MEMO: dict[tuple, str] = {}
_FINGERPRINT_MEMO_MAX = 1024


def config_fingerprint(
    config: TrainingConfig,
    *,
    seed: int = 0,
    scale: float = 1.0,
    rank: int = 0,
    ep_rank: int = 0,
    size_jitter: tuple[float, ...] | None = None,
    async_free_skew: int | None = None,
) -> str:
    """Stable content hash of everything that determines a generated trace.

    Trace generation is deterministic (covered by the determinism regression
    tests), so this fingerprint is a valid content address for the trace a
    :class:`TraceGenerator` built from the same inputs would produce.  The
    sweep cache uses it as the on-disk key for generated traces.  Both rank
    coordinates are part of the payload, so per-(pp, ep)-rank traces of one
    job can never alias each other.
    """
    jitter = TraceGenerator.DEFAULT_SIZE_JITTER if size_jitter is None else tuple(size_jitter)
    skew = TraceGenerator.DEFAULT_ASYNC_FREE_SKEW if async_free_skew is None else int(async_free_skew)
    try:
        key = (config, int(seed), float(scale), int(rank), int(ep_rank), jitter, skew)
        cached = _FINGERPRINT_MEMO.get(key)
    except TypeError:  # unhashable custom config -- compute uncached
        key = None
        cached = None
    if cached is not None:
        return cached
    payload = {
        "tracegen_version": TRACEGEN_VERSION,
        "config": asdict(config),
        "seed": int(seed),
        "scale": float(scale),
        "rank": int(rank),
        "ep_rank": int(ep_rank),
        "size_jitter": [float(f) for f in jitter],
        "async_free_skew": skew,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    fingerprint = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    if key is not None:
        if len(_FINGERPRINT_MEMO) >= _FINGERPRINT_MEMO_MAX:
            _FINGERPRINT_MEMO.clear()
        _FINGERPRINT_MEMO[key] = fingerprint
    return fingerprint


@dataclass
class _LiveTensor:
    """Book-keeping for an allocation that is waiting to be freed."""

    req_id: int
    spec: TensorSpec
    module: str = ""
    dyn: bool = False
    free_module: str = ""


@dataclass
class _ScopedSet:
    """Scoped tensors of one (micro-batch, chunk), grouped by layer."""

    by_layer: dict[int, list[_LiveTensor]] = field(default_factory=dict)
    boundary: list[_LiveTensor] = field(default_factory=list)  # embedding / pp buffers

    def add(self, layer: int, tensor: _LiveTensor) -> None:
        self.by_layer.setdefault(layer, []).append(tensor)


class TraceGenerator:
    """Generates the allocation trace of one rank for one training iteration."""

    #: Per-micro-batch size variation applied to activation and temporary
    #: tensors.  Real traces show small size differences between micro-batches
    #: (sample-dependent padding, fused-kernel workspace choices, alignment of
    #: intermediate reductions); this is what prevents an online best-fit
    #: allocator from perfectly recycling freed blocks and is the proximate
    #: cause of the fragmentation the paper measures.  The jitter cycles over a
    #: small set of factors so the number of distinct sizes stays in the few
    #: dozen range the paper reports (Figure 3).
    DEFAULT_SIZE_JITTER: tuple[float, ...] = (1.0, 0.9, 0.95, 0.85)

    #: Number of layers by which transient frees lag their allocation.  Real
    #: eager-mode training overlaps kernels, peer-to-peer transfers and
    #: gradient reduction, so workspace tensors are released a little later
    #: than strict nesting would suggest; this skew produces the interleaved
    #: allocate/free pattern of Figure 1(a) that online allocators fragment on.
    DEFAULT_ASYNC_FREE_SKEW = 2

    def __init__(
        self,
        config: TrainingConfig,
        *,
        seed: int = 0,
        scale: float = 1.0,
        rank: int = 0,
        ep_rank: int = 0,
        size_jitter: tuple[float, ...] | None = None,
        async_free_skew: int | None = None,
    ):
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.config = config
        self.memory = MemoryModel(config, rank=rank, ep_rank=ep_rank)
        self.seed = seed
        self.scale = scale
        self.rank = rank
        self.ep_rank = ep_rank
        self.size_jitter = self.DEFAULT_SIZE_JITTER if size_jitter is None else tuple(size_jitter)
        if not self.size_jitter or any(factor <= 0 for factor in self.size_jitter):
            raise ValueError("size_jitter must contain positive factors")
        self.async_free_skew = (
            self.DEFAULT_ASYNC_FREE_SKEW if async_free_skew is None else int(async_free_skew)
        )
        if self.async_free_skew < 0:
            raise ValueError("async_free_skew must be non-negative")
        # Mutable generation state (re-initialised on every generate() call).
        self._reset()

    # ------------------------------------------------------------------ #
    # Derived geometry
    # ------------------------------------------------------------------ #
    @property
    def layers_per_chunk(self) -> int:
        full = self.config.parallelism.layers_per_chunk(self.config.model.num_layers)
        return max(1, round(full * self.scale))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> Trace:
        """Produce the allocation trace of one full training iteration."""
        with _obs_span(
            "tracegen.generate",
            model=self.config.model.name,
            rank=self.rank,
            ep=self.ep_rank,
        ):
            return self._generate()

    def _generate(self) -> Trace:
        self._reset()
        schedule = build_schedule(
            self.config.parallelism,
            self.config.num_microbatches,
            self.rank,
            workload_kind=self.config.workload_kind,
            decode_steps=self.config.decode_steps,
        )
        for spec in schedule:
            phase = self._new_phase(spec)
            if spec.kind is PhaseKind.INIT:
                self._emit_init(phase)
            elif spec.kind is PhaseKind.FORWARD:
                self._emit_forward(phase, spec)
            elif spec.kind is PhaseKind.BACKWARD:
                self._emit_backward(phase, spec)
            elif spec.kind is PhaseKind.DECODE:
                self._emit_decode(phase, spec)
            elif spec.kind is PhaseKind.OPTIMIZER:
                self._emit_optimizer(phase)
        metadata = TraceMetadata(
            model_name=self.config.model.name,
            config_label=self.config.label or "custom",
            description=self.config.describe(),
            micro_batch_size=self.config.micro_batch_size,
            num_microbatches=self.config.num_microbatches,
            parallelism=self.config.parallelism.describe(),
            seed=self.seed,
            scale=self.scale,
            rank=self.rank,
            ep_rank=self.ep_rank,
            moe_comm_factor=self.config.moe_comm_factor,
            tracegen_version=TRACEGEN_VERSION,
            workload_kind=self.config.workload_kind,
            decode_steps=self.config.decode_steps,
            max_new_tokens=self.config.max_new_tokens,
        )
        module_spans = {name: (span[0], span[1]) for name, span in self._module_spans.items()}
        return Trace(
            metadata=metadata,
            phases=self._phases,
            module_spans=module_spans,
            columns=self._columns.build(),
        )

    # ------------------------------------------------------------------ #
    # Low-level emission helpers
    # ------------------------------------------------------------------ #
    def _make_router(self) -> ExpertRouter | None:
        if not self.config.model.is_moe:
            return None
        # Every EP rank of the job derives the same router seed: the gating
        # decision is global, and each rank observes the slice of it landing
        # on its local experts (so token counts are conserved across the
        # expert-parallel group).  The pipeline rank still shapes the routed
        # sequence through the order of its schedule's forward passes.
        return ExpertRouter(
            num_experts=self.config.model.num_experts,
            num_local_experts=self.memory.num_local_experts,
            top_k=self.config.model.moe_top_k,
            seed=self.seed,
            imbalance=self.config.moe_imbalance,
            ep_rank=self.ep_rank,
        )

    def _reset(self) -> None:
        # Fresh router per generate() call: draws are keyed by execution (so
        # repeated runs are byte-identical regardless), but the per-iteration
        # memo of gating decisions must not leak across generations.
        self._router: ExpertRouter | None = self._make_router()
        # Events are emitted straight into columnar storage; TraceEvent
        # objects are only materialized if a consumer touches trace.events.
        self._columns: ColumnBuilder = ColumnBuilder()
        self._phases: list[Phase] = []
        self._clock = 0
        self._next_req_id = 0
        self._scoped: dict[tuple[int, int], _ScopedSet] = {}
        self._offloaded: dict[tuple[int, int], dict[int, list[TensorSpec]]] = {}
        self._expert_routing: dict[tuple[int, int, int], list[int]] = {}
        self._module_spans: dict[str, list[int]] = {}
        self._deferred: list[tuple[int, _LiveTensor]] = []
        self._phase_step = 0
        # Live KV caches of generation workloads, keyed (microbatch, chunk,
        # layer); re-bound on every decode-step re-allocation, popped when the
        # micro-batch's sequence completes.
        self._kv: dict[tuple[int, int, int], _LiveTensor] = {}

    # ------------------------------------------------------------------ #
    # Deferred (asynchronously skewed) transient frees
    # ------------------------------------------------------------------ #
    def _defer_frees(self, tensors: list[_LiveTensor]) -> None:
        """Queue transient frees to be issued ``async_free_skew`` layers later."""
        release_step = self._phase_step + self.async_free_skew
        for tensor in reversed(tensors):
            self._deferred.append((release_step, tensor))

    def _flush_deferred(self, phase: Phase, *, everything: bool = False) -> None:
        """Issue queued frees whose release step has been reached."""
        remaining: list[tuple[int, _LiveTensor]] = []
        for release_step, tensor in self._deferred:
            if everything or release_step <= self._phase_step:
                self._free(tensor, phase)
            else:
                remaining.append((release_step, tensor))
        self._deferred = remaining

    def _new_phase(self, spec: PhaseSpec) -> Phase:
        phase = Phase(
            index=len(self._phases),
            kind=spec.kind,
            microbatch=spec.microbatch,
            chunk=spec.chunk,
        )
        self._phases.append(phase)
        return phase

    def _tick(self) -> int:
        time = self._clock
        self._clock += 1
        return time

    def _touch_module(self, module: str, time: int) -> None:
        if not module:
            return
        span = self._module_spans.setdefault(module, [time, time])
        span[0] = min(span[0], time)
        span[1] = max(span[1], time)

    def _jitter(self, spec: TensorSpec, microbatch: int) -> TensorSpec:
        """Apply the per-micro-batch size variation to activation-like tensors."""
        if spec.category not in (
            TensorCategory.ACTIVATION,
            TensorCategory.TEMPORARY,
            TensorCategory.EXPERT_ACTIVATION,
        ):
            return spec
        factor = self.size_jitter[microbatch % len(self.size_jitter)]
        if factor == 1.0:
            return spec
        size = max(512, ((int(spec.size * factor) + 511) // 512) * 512)
        return TensorSpec(spec.tag, size, spec.category, spec.saved_for_backward)

    def _alloc(
        self,
        spec: TensorSpec,
        phase: Phase,
        *,
        module: str = "",
        dyn: bool = False,
        free_module: str = "",
    ) -> _LiveTensor:
        if phase.microbatch >= 0:
            spec = self._jitter(spec, phase.microbatch)
        req_id = self._next_req_id
        self._next_req_id += 1
        time = self._tick()
        self._columns.append(
            ALLOC,
            req_id,
            spec.size,
            time,
            phase.index,
            module,
            dyn,
            CATEGORY_CODES[spec.category],
            spec.tag,
        )
        self._touch_module(module, time)
        return _LiveTensor(req_id=req_id, spec=spec, module=module, dyn=dyn, free_module=free_module)

    def _free(self, tensor: _LiveTensor, phase: Phase, *, module: str | None = None) -> None:
        free_module = module if module is not None else (tensor.free_module or tensor.module)
        time = self._tick()
        self._columns.append(
            FREE,
            tensor.req_id,
            tensor.spec.size,
            time,
            phase.index,
            free_module,
            tensor.dyn,
            CATEGORY_CODES[tensor.spec.category],
            tensor.spec.tag,
        )
        self._touch_module(free_module, time)

    # ------------------------------------------------------------------ #
    # Phase bodies
    # ------------------------------------------------------------------ #
    def _emit_init(self, phase: Phase) -> None:
        """Persistent tensors: weights, gradients, optimizer states.

        Forward-only workloads (inference, generation) materialise weights
        only: no backward pass means no gradients, and no optimizer step means
        no optimizer state.
        """
        scale_layers = self.layers_per_chunk * self.config.parallelism.virtual_pipeline_chunks
        full_layers = self.config.parallelism.layers_per_rank(self.config.model.num_layers)
        forward_only = self.config.workload_kind != "training"
        for spec in self.memory.persistent_tensors():
            if forward_only and spec.category in (
                TensorCategory.GRADIENT,
                TensorCategory.OPTIMIZER_STATE,
            ):
                continue
            # Respect the layer down-scaling knob: drop specs of layers that
            # were scaled away so the persistent footprint shrinks alongside
            # the activation footprint.
            if spec.tag.startswith("layer"):
                layer_index = int(spec.tag.split(".")[0][len("layer"):])
                if layer_index >= scale_layers and full_layers > scale_layers:
                    continue
            if self.config.zero_stage >= 3 and spec.category is TensorCategory.WEIGHT:
                sharded = TensorSpec(
                    spec.tag,
                    max(512, spec.size // self.memory.dp),
                    spec.category,
                )
                self._alloc(sharded, phase)
                continue
            self._alloc(spec, phase)

    def _global_layer(self, spec: PhaseSpec, layer: int) -> int:
        """Model-global layer id of one (chunk, layer) execution on this rank.

        The router keys its gating draw on this id, so any two executions
        holding *different* model layers -- other chunks of this stage, and
        the layer slices of other pipeline stages (Megatron interleaving
        assigns chunk ``c`` of stage ``r`` the ``(c * pp + r)``-th layer
        block) -- route independently, while every EP rank of one stage
        (same schedule geometry, same ids) derives the identical draw for
        the identical execution.
        """
        pipeline = self.config.parallelism.pipeline_parallel
        return (spec.chunk * pipeline + self.rank) * self.layers_per_chunk + layer

    def _dense_saved_specs(self) -> list[TensorSpec]:
        """Saved activations of the non-expert part of one layer."""
        specs = self.memory.saved_activation_tensors()
        if self.config.model.is_moe:
            specs = [s for s in specs if not s.tag.startswith("mlp")]
        return specs

    def _forward_layer(
        self,
        phase: Phase,
        spec: PhaseSpec,
        layer: int,
        scoped: _ScopedSet,
    ) -> None:
        key = (spec.microbatch, spec.chunk)
        module = f"mb{spec.microbatch}.c{spec.chunk}.layer{layer}"
        transients: list[_LiveTensor] = []

        # ZeRO-3 gathers the layer's full parameters just-in-time.
        if self.config.zero_stage >= 3:
            gathered = TensorSpec("zero3_gathered_params", self.memory.layer_weight_bytes(),
                                  TensorCategory.COMM_BUFFER)
            transients.append(self._alloc(gathered, phase))

        # Operator workspaces.
        for workspace in self.memory.forward_transient_tensors():
            transients.append(self._alloc(workspace, phase))

        # Saved activations (their fate depends on recomputation / offload).
        saved_specs = self._dense_saved_specs()
        if self.config.model.is_moe:
            saved_specs = saved_specs + self.memory.moe_static_tensors()
        if self.config.recompute or self.config.offload_activations:
            checkpoint = self.memory.recompute_checkpoint_tensors()
            for ckpt in checkpoint:
                scoped.add(layer, self._alloc(ckpt, phase, module=module))
            # The full activations still materialise during the forward pass,
            # but are released (recompute) or offloaded before it ends.
            for act in saved_specs:
                transients.append(self._alloc(act, phase, module=module))
        else:
            for act in saved_specs:
                scoped.add(layer, self._alloc(act, phase, module=module))

        # MoE expert activations: dynamic sizes decided by token routing.
        if self.config.model.is_moe and self._router is not None:
            routing = self._router.route(
                self.memory.tokens,
                layer=self._global_layer(spec, layer),
                microbatch=spec.microbatch,
            )
            self._expert_routing[(spec.microbatch, spec.chunk, layer)] = routing
            expert_module = f"{module}.experts"
            grad_module = f"{module}.experts.grad"
            # All-to-all dispatch: tokens travel to their experts before the
            # expert FFN runs, so the staging buffers allocate first and stay
            # live across it (their skewed transient frees land layers later,
            # overlapping the expert activations -- which is what makes peak
            # memory imbalance-sensitive through communication, not just
            # through the expert activations themselves).
            for comm_spec in self.memory.moe_dispatch_tensors(sum(routing)):
                transients.append(
                    self._alloc(
                        comm_spec,
                        phase,
                        module=expert_module,
                        dyn=comm_spec.tag == "a2a_dispatch_recv",
                    )
                )
            for expert_index, expert_tokens in enumerate(routing):
                for expert_spec in self.memory.expert_tensors(expert_index, expert_tokens):
                    if self.config.recompute or self.config.offload_activations:
                        transients.append(
                            self._alloc(expert_spec, phase, module=expert_module, dyn=True)
                        )
                    else:
                        scoped.add(
                            layer,
                            self._alloc(
                                expert_spec,
                                phase,
                                module=expert_module,
                                dyn=True,
                                free_module=grad_module,
                            ),
                        )

        # Transients die shortly after the layer finishes; the skewed release
        # models asynchronous kernel / communication overlap.
        self._defer_frees(transients)

    def _emit_forward(self, phase: Phase, spec: PhaseSpec) -> None:
        key = (spec.microbatch, spec.chunk)
        scoped = self._scoped.setdefault(key, _ScopedSet())
        self._phase_step = 0

        # Pipeline-boundary activations only exist on chunk 0 of the stage.
        if spec.chunk == 0:
            boundary_spec = (
                self.memory.embedding_activation()
                if self.memory.is_first_stage
                else self.memory.pipeline_recv_buffer()
            )
            scoped.boundary.append(self._alloc(boundary_spec, phase))

        generation_kv = (
            self.config.workload_kind == "generation" and self.config.decode_steps > 0
        )
        for layer in range(self.layers_per_chunk):
            self._phase_step = layer
            self._flush_deferred(phase)
            self._forward_layer(phase, spec, layer, scoped)
            if generation_kv:
                # Prefill fills the KV cache of the prompt context; the cache
                # outlives the forward pass (it is what decode steps read),
                # so it is tracked separately from the scoped activations.
                kv_spec = self.memory.kv_cache_tensor(
                    layer, self.config.context_tokens_at(0)
                )
                module = f"mb{spec.microbatch}.c{spec.chunk}.layer{layer}"
                self._kv[(spec.microbatch, spec.chunk, layer)] = self._alloc(
                    kv_spec, phase, module=module
                )
        self._flush_deferred(phase, everything=True)

        # The last stage projects to the (sharded) vocabulary at the end of
        # its final chunk; the fp32 logits live until the micro-batch's
        # backward pass finishes, like the other boundary activations.
        if (
            self.memory.is_last_stage
            and spec.chunk == self.config.parallelism.virtual_pipeline_chunks - 1
        ):
            scoped.boundary.append(self._alloc(self.memory.logits_activation(), phase))

        # Forward-only workloads retain nothing for a backward pass: the
        # micro-batch's scoped activations (and boundary tensors, logits
        # included) die at the end of its forward.  Only the KV caches above
        # survive into the decode steps.
        if self.config.workload_kind != "training":
            for layer in reversed(range(self.layers_per_chunk)):
                for tensor in reversed(scoped.by_layer.pop(layer, [])):
                    self._free(tensor, phase, module=tensor.free_module or "")
            for tensor in reversed(scoped.boundary):
                self._free(tensor, phase)
            scoped.boundary.clear()

    def _emit_decode(self, phase: Phase, spec: PhaseSpec) -> None:
        """One autoregressive decode step of one (micro-batch, chunk).

        Each step processes one new token per sequence over the cached
        context: per layer, the KV cache is re-allocated at its grown size
        (allocate-new-then-free-old, the copy-into-larger-buffer realloc
        pattern, so live KV bytes never dip), followed by the step's short
        operator workspaces.  Growth stops at the ``max_new_tokens`` cap; the
        caches are freed only when the micro-batch's final decode step
        completes -- the sequence-position-dependent lifetime no training
        phase produces.  Expert routing is prefill-only: decode steps run the
        dense path even for MoE models.
        """
        config = self.config
        old_context = config.context_tokens_at(spec.step - 1)
        new_context = config.context_tokens_at(spec.step)
        for layer in range(self.layers_per_chunk):
            key = (spec.microbatch, spec.chunk, layer)
            module = f"mb{spec.microbatch}.c{spec.chunk}.layer{layer}"
            live = self._kv.get(key)
            if live is not None and new_context > old_context:
                grown = self.memory.kv_cache_tensor(layer, new_context)
                self._kv[key] = self._alloc(grown, phase, module=module)
                self._free(live, phase, module=module)
            transients = [
                self._alloc(workspace, phase)
                for workspace in self.memory.decode_transient_tensors()
            ]
            for tensor in reversed(transients):
                self._free(tensor, phase)

        # The last stage samples the next token from one vocabulary row per
        # sequence; the logits die within the step.
        if (
            self.memory.is_last_stage
            and spec.chunk == config.parallelism.virtual_pipeline_chunks - 1
        ):
            logits = self._alloc(self.memory.decode_logits_tensor(), phase)
            self._free(logits, phase)

        # Sequence complete: release the micro-batch's KV caches.
        if spec.step == config.decode_steps:
            for layer in reversed(range(self.layers_per_chunk)):
                tensor = self._kv.pop((spec.microbatch, spec.chunk, layer), None)
                if tensor is not None:
                    self._free(tensor, phase)

    def _backward_layer(
        self,
        phase: Phase,
        spec: PhaseSpec,
        layer: int,
        scoped: _ScopedSet,
    ) -> None:
        module = f"mb{spec.microbatch}.c{spec.chunk}.layer{layer}"
        grad_module = f"{module}.experts.grad"
        transients: list[_LiveTensor] = []

        # All-to-all combine: the backward-facing mirror of the forward
        # dispatch.  Expert output gradients of the locally-processed tokens
        # are sent back to their origin ranks and this rank's share returns;
        # the staging buffers allocate before the expert gradient work and
        # overlap it through the skewed transient frees, exactly like the
        # dispatch pair overlaps the forward expert FFN.
        if self.config.model.is_moe:
            routing = self._expert_routing.get((spec.microbatch, spec.chunk, layer), [])
            for comm_spec in self.memory.moe_combine_tensors(sum(routing)):
                transients.append(
                    self._alloc(
                        comm_spec,
                        phase,
                        module=grad_module,
                        dyn=comm_spec.tag == "a2a_combine_send",
                    )
                )

        # ZeRO-3 re-gathers parameters for the backward pass.
        if self.config.zero_stage >= 3:
            gathered = TensorSpec("zero3_gathered_params", self.memory.layer_weight_bytes(),
                                  TensorCategory.COMM_BUFFER)
            transients.append(self._alloc(gathered, phase))

        # Recomputation / offload re-materialises the layer's activations.
        if self.config.recompute or self.config.offload_activations:
            for act in self._dense_saved_specs():
                transients.append(self._alloc(act, phase, module=module))
            if self.config.model.is_moe:
                for static_spec in self.memory.moe_static_tensors():
                    transients.append(self._alloc(static_spec, phase, module=module))
                routing = self._expert_routing.get((spec.microbatch, spec.chunk, layer), [])
                for expert_index, expert_tokens in enumerate(routing):
                    for expert_spec in self.memory.expert_tensors(expert_index, expert_tokens):
                        transients.append(
                            self._alloc(expert_spec, phase, module=grad_module, dyn=True)
                        )

        # Gradient temporaries.
        for workspace in self.memory.backward_transient_tensors():
            transients.append(self._alloc(workspace, phase))

        # Dynamic gradient temporaries of expert layers (sizes follow routing).
        if self.config.model.is_moe and not (self.config.recompute or self.config.offload_activations):
            routing = self._expert_routing.get((spec.microbatch, spec.chunk, layer), [])
            for expert_index, expert_tokens in enumerate(routing):
                if expert_tokens <= 0:
                    continue
                grad_spec = TensorSpec(
                    f"expert{expert_index}_dgrad",
                    max(512, expert_tokens * self.config.model.hidden_size * 2),
                    TensorCategory.EXPERT_ACTIVATION,
                )
                transients.append(self._alloc(grad_spec, phase, module=grad_module, dyn=True))

        self._defer_frees(transients)

        # Finally release the scoped activations this layer saved in forward.
        for tensor in reversed(scoped.by_layer.pop(layer, [])):
            free_module = tensor.free_module or ""
            self._free(tensor, phase, module=free_module)

    def _emit_backward(self, phase: Phase, spec: PhaseSpec) -> None:
        key = (spec.microbatch, spec.chunk)
        scoped = self._scoped.get(key, _ScopedSet())
        self._phase_step = 0

        for step, layer in enumerate(reversed(range(self.layers_per_chunk))):
            self._phase_step = step
            self._flush_deferred(phase)
            self._backward_layer(phase, spec, layer, scoped)
        self._flush_deferred(phase, everything=True)

        # Pipeline-boundary activations die once the whole chunk is done.
        for tensor in reversed(scoped.boundary):
            self._free(tensor, phase)
        scoped.boundary.clear()

        # ZeRO overlaps gradient reduce-scatter buckets with the last
        # micro-batch's backward pass.
        if self.config.uses_distributed_optimizer and spec.microbatch == self.config.num_microbatches - 1:
            bucket = TensorSpec("grad_rs_bucket", self.memory.grad_bucket_bytes(),
                                TensorCategory.COMM_BUFFER)
            for _ in range(4):
                tensor = self._alloc(bucket, phase)
                self._free(tensor, phase)

    def _emit_optimizer(self, phase: Phase) -> None:
        if self.config.uses_distributed_optimizer:
            gather = TensorSpec("param_allgather", self.memory.param_gather_bytes(),
                                TensorCategory.COMM_BUFFER)
            for _ in range(4):
                tensor = self._alloc(gather, phase)
                self._free(tensor, phase)
        # Small step temporaries (grad-norm scalars, LR state, ...).
        for _ in range(2):
            scratch = TensorSpec("optimizer_scratch", 4 * 1024 * 1024, TensorCategory.TEMPORARY)
            tensor = self._alloc(scratch, phase)
            self._free(tensor, phase)
