"""Allocation trace container and analysis helpers.

A :class:`Trace` is the ordered list of allocation/free events one rank issues
during a single training iteration, together with the metadata needed to
interpret it.  It is the common currency of the repository: the workload
generator produces traces, the profiler and plan synthesizer consume them, and
the replay simulator feeds them to allocators.

Storage is columnar (:class:`repro.core.columns.TraceColumns` -- parallel
numpy int64 arrays, built once per trace).  The object API is a thin lazy
view: ``trace.events`` materializes :class:`TraceEvent` objects on first
access, while analytics, serialization, and replay operate directly on the
columns.  A trace may be constructed from either representation; whichever
side is missing is derived lazily and memoised.  Traces are treated as
immutable once constructed (the digest memo and the sweep cache rely on it).
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.columns import (
    CATEGORIES,
    CATEGORY_CODES,
    ColumnBuilder,
    KINDS,
    TraceColumns,
)
from repro.core.events import (
    MemoryRequest,
    Phase,
    TraceEvent,
    pair_events,
    phase_from_dict,
    phase_to_dict,
)


@dataclass(frozen=True)
class TraceMetadata:
    """Descriptive information attached to a generated trace."""

    model_name: str = ""
    config_label: str = ""
    description: str = ""
    micro_batch_size: int = 0
    num_microbatches: int = 0
    parallelism: str = ""
    seed: int = 0
    scale: float = 1.0
    #: Pipeline rank the trace was generated for.
    rank: int = 0
    #: Expert-parallel rank the trace was generated for (0 unless the job
    #: simulates expert-parallel asymmetry).
    ep_rank: int = 0
    #: ``TrainingConfig.moe_comm_factor`` the trace was generated with: the
    #: scale of the expert-parallel all-to-all dispatch/combine transients
    #: (0 for dense models and for traces without the comm model).
    moe_comm_factor: float = 0.0
    #: TRACEGEN_VERSION of the generator that produced this trace (0 for
    #: traces serialized before the field existed); lets the persistent cache
    #: detect entries written by an older generator without re-hashing.
    tracegen_version: int = 0
    #: Workload class the trace models: ``"training"`` (the default, one
    #: forward+backward+optimizer iteration), ``"inference"`` (forward-only),
    #: or ``"generation"`` (prefill + autoregressive decode with KV caches).
    workload_kind: str = "training"
    #: Decode passes per micro-batch for generation traces (0 otherwise).
    decode_steps: int = 0
    #: Cap on generated tokens per sequence for generation traces (0 = no cap).
    max_new_tokens: int = 0


class Trace:
    """An ordered allocation/free event stream for one training iteration.

    Construct with ``events=`` (object view) or ``columns=`` (columnar view);
    the other representation is derived lazily on first access.
    """

    def __init__(
        self,
        events: Sequence[TraceEvent] | None = None,
        metadata: TraceMetadata | None = None,
        phases: Sequence[Phase] | None = None,
        module_spans: dict[str, tuple[int, int]] | None = None,
        *,
        columns: TraceColumns | None = None,
    ):
        if events is not None and columns is not None:
            raise ValueError("pass either events or columns, not both")
        self._events: list[TraceEvent] | None = (
            list(events) if events is not None else None
        )
        self._columns: TraceColumns | None = columns
        if self._events is None and self._columns is None:
            self._events = []
        self.metadata = metadata if metadata is not None else TraceMetadata()
        self.phases: list[Phase] = list(phases) if phases is not None else []
        self.module_spans: dict[str, tuple[int, int]] = (
            dict(module_spans) if module_spans is not None else {}
        )
        self._digest_cache: str | None = None

    # ------------------------------------------------------------------ #
    # The two views
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> list[TraceEvent]:
        """Object view of the event stream (materialized lazily, memoised)."""
        if self._events is None:
            self._events = self._columns.to_events(self.phases)
        return self._events

    @property
    def columns(self) -> TraceColumns:
        """Columnar view of the event stream (built lazily, memoised)."""
        if self._columns is None:
            self._columns = TraceColumns.from_events(self._events)
        return self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Trace(num_events={self.num_events}, "
            f"model={self.metadata.model_name!r}, "
            f"phases={len(self.phases)})"
        )

    # ------------------------------------------------------------------ #
    # Basic statistics (vectorized over the columns)
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        if self._columns is not None:
            return self._columns.num_events
        return len(self._events)

    @property
    def num_requests(self) -> int:
        """Number of allocation requests (the paper's ``Num`` column in Table 2)."""
        return self.columns.num_requests

    @property
    def num_dynamic_requests(self) -> int:
        return self.columns.num_dynamic_requests

    def allocation_sizes(self, *, min_size: int = 0) -> list[int]:
        """Sizes of every allocation request at least ``min_size`` bytes."""
        return self.columns.allocation_sizes(min_size=min_size)

    def distinct_sizes(self, *, min_size: int = 512) -> int:
        """Number of distinct allocation sizes (the Figure 3 statistic)."""
        return self.columns.distinct_sizes(min_size=min_size)

    def size_histogram(self, *, min_size: int = 0) -> Counter:
        """size -> number of allocations of that size."""
        return Counter(dict(self.columns.size_histogram_items(min_size=min_size)))

    def peak_allocated_bytes(self) -> int:
        """Theoretical peak memory demand ``M_a`` of the trace."""
        return self.columns.peak_allocated_bytes()

    def total_allocated_bytes(self) -> int:
        """Sum of all allocation sizes over the iteration."""
        return self.columns.total_allocated_bytes()

    def comm_peak_bytes(self) -> int:
        """Peak concurrently-live communication-buffer bytes.

        Covers every :attr:`TensorCategory.COMM_BUFFER` tensor -- the
        expert-parallel all-to-all dispatch/combine transients, pipeline P2P
        buffers, ZeRO gather/reduce buckets -- so it quantifies how much of
        the memory peak a static planner must provision for communication
        alone.  Like :meth:`peak_allocated_bytes` it is trace-determined:
        every allocator replays the same curve.
        """
        return self.columns.comm_peak_bytes()

    def kv_peak_bytes(self) -> int:
        """Peak concurrently-live KV-cache bytes.

        Covers every :attr:`TensorCategory.KV_CACHE` tensor -- the per-layer
        key/value caches a generation workload allocates at prefill and grows
        per decode step.  Zero for training and inference traces.  Like
        :meth:`peak_allocated_bytes` it is trace-determined: every allocator
        replays the same curve.
        """
        return self.columns.kv_peak_bytes()

    def end_time(self) -> int:
        if self._columns is not None:
            return self._columns.end_time()
        return self._events[-1].time + 1 if self._events else 0

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def to_requests(self) -> list[MemoryRequest]:
        """Pair alloc/free events into memory-request events (profiler view)."""
        return pair_events(self.events, end_of_trace=self.end_time())

    def static_dynamic_split(self) -> tuple[int, int]:
        """(static bytes, dynamic bytes) of the iteration's allocations."""
        return self.columns.static_dynamic_split()

    def category_bytes(self) -> dict[str, int]:
        """Total allocated bytes per tensor category."""
        return self.columns.category_bytes()

    # ------------------------------------------------------------------ #
    # Serialization (line-oriented JSON, mirroring the real profiler's logs)
    # ------------------------------------------------------------------ #
    def iter_jsonl(self) -> Iterator[str]:
        """Yield the canonical JSON-lines serialization, one line at a time.

        The encoding is canonical (sorted keys, fixed separators), so two
        traces serialize to the same bytes exactly when their contents are
        equal -- the property :meth:`digest` and the sweep cache rely on.
        Rows are rendered straight from the columns (objects are never
        materialized), through the same ``json.dumps`` call as always, so the
        bytes are identical to the object-walking implementation.
        """
        header = {
            "metadata": asdict(self.metadata),
            "module_spans": self.module_spans,
            "phases": [phase_to_dict(p) for p in self.phases],
        }
        yield json.dumps(header, sort_keys=True, separators=(",", ":"))
        columns = self.columns
        modules = columns.modules
        tags = columns.tags
        kind_values = tuple(kind.value for kind in KINDS)
        category_values = tuple(category.value for category in CATEGORIES)
        for kind, req_id, size, time, phase_index, module_index, dyn, category, tag_index in zip(
            columns.kind.tolist(),
            columns.req_id.tolist(),
            columns.size.tolist(),
            columns.time.tolist(),
            columns.phase_index.tolist(),
            columns.module_index.tolist(),
            columns.dyn.tolist(),
            columns.category.tolist(),
            columns.tag_index.tolist(),
        ):
            yield json.dumps(
                {
                    "kind": kind_values[kind],
                    "req_id": req_id,
                    "size": size,
                    "time": time,
                    "phase": phase_index,
                    "module": modules[module_index],
                    "dyn": bool(dyn),
                    "category": category_values[category],
                    "tag": tags[tag_index],
                },
                sort_keys=True,
                separators=(",", ":"),
            )

    def dumps(self) -> str:
        """Serialize to the JSON-lines format of :meth:`save` as one string."""
        return "\n".join(self.iter_jsonl()) + "\n"

    @classmethod
    def _from_lines(cls, lines) -> "Trace":
        """Build a trace from an iterable of JSON lines (streaming parse).

        Parses straight into columns; event objects stay unmaterialized until
        someone touches ``trace.events``.
        """
        lines = iter(lines)
        try:
            header = json.loads(next(lines))
        except StopIteration:
            raise ValueError("empty trace serialization") from None
        phases = [phase_from_dict(entry) for entry in header["phases"]]
        builder = ColumnBuilder()
        kind_codes = {kind.value: code for code, kind in enumerate(KINDS)}
        category_codes = {
            category.value: CATEGORY_CODES[category] for category in CATEGORIES
        }
        for line in lines:
            if not line.strip():
                continue
            record = json.loads(line)
            builder.append(
                kind_codes[record["kind"]],
                record["req_id"],
                record["size"],
                record["time"],
                record["phase"],
                record["module"],
                record["dyn"],
                category_codes[record["category"]],
                record["tag"],
            )
        metadata = TraceMetadata(**header["metadata"])
        module_spans = {name: tuple(span) for name, span in header["module_spans"].items()}
        return cls(
            metadata=metadata,
            phases=phases,
            module_spans=module_spans,
            columns=builder.build(),
        )

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse a trace from the string produced by :meth:`dumps`."""
        if not text:
            raise ValueError("empty trace serialization")
        return cls._from_lines(text.splitlines())

    def digest(self) -> str:
        """SHA-256 over the canonical serialization (content address of the trace).

        Memoised: traces are treated as immutable once generated, and the
        plan cache computes this once per (trace, knob-combination) pair.
        """
        cached = self._digest_cache
        if cached is None:
            hasher = hashlib.sha256()
            for line in self.iter_jsonl():
                hasher.update(line.encode("utf-8"))
                hasher.update(b"\n")
            cached = hasher.hexdigest()
            self._digest_cache = cached
        return cached

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON-lines with a metadata header (streamed)."""
        with Path(path).open("w", encoding="utf-8") as handle:
            for line in self.iter_jsonl():
                handle.write(line)
                handle.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save` (streamed)."""
        with Path(path).open("r", encoding="utf-8") as handle:
            return cls._from_lines(line.rstrip("\n") for line in handle)
