"""Allocation trace container and analysis helpers.

A :class:`Trace` is the ordered list of allocation/free events one rank issues
during a single training iteration, together with the metadata needed to
interpret it.  It is the common currency of the repository: the workload
generator produces traces, the profiler and plan synthesizer consume them, and
the replay simulator feeds them to allocators.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

from repro.core.events import (
    EventKind,
    MemoryRequest,
    Phase,
    TensorCategory,
    TraceEvent,
    pair_events,
    phase_from_dict,
    phase_to_dict,
)


@dataclass(frozen=True)
class TraceMetadata:
    """Descriptive information attached to a generated trace."""

    model_name: str = ""
    config_label: str = ""
    description: str = ""
    micro_batch_size: int = 0
    num_microbatches: int = 0
    parallelism: str = ""
    seed: int = 0
    scale: float = 1.0
    #: Pipeline rank the trace was generated for.
    rank: int = 0
    #: Expert-parallel rank the trace was generated for (0 unless the job
    #: simulates expert-parallel asymmetry).
    ep_rank: int = 0
    #: ``TrainingConfig.moe_comm_factor`` the trace was generated with: the
    #: scale of the expert-parallel all-to-all dispatch/combine transients
    #: (0 for dense models and for traces without the comm model).
    moe_comm_factor: float = 0.0
    #: TRACEGEN_VERSION of the generator that produced this trace (0 for
    #: traces serialized before the field existed); lets the persistent cache
    #: detect entries written by an older generator without re-hashing.
    tracegen_version: int = 0


@dataclass
class Trace:
    """An ordered allocation/free event stream for one training iteration."""

    events: list[TraceEvent] = field(default_factory=list)
    metadata: TraceMetadata = field(default_factory=TraceMetadata)
    phases: list[Phase] = field(default_factory=list)
    module_spans: dict[str, tuple[int, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Basic statistics
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_requests(self) -> int:
        """Number of allocation requests (the paper's ``Num`` column in Table 2)."""
        return sum(1 for event in self.events if event.is_alloc())

    @property
    def num_dynamic_requests(self) -> int:
        return sum(1 for event in self.events if event.is_alloc() and event.dyn)

    def allocation_sizes(self, *, min_size: int = 0) -> list[int]:
        """Sizes of every allocation request at least ``min_size`` bytes."""
        return [e.size for e in self.events if e.is_alloc() and e.size >= min_size]

    def distinct_sizes(self, *, min_size: int = 512) -> int:
        """Number of distinct allocation sizes (the Figure 3 statistic)."""
        return len({e.size for e in self.events if e.is_alloc() and e.size > min_size})

    def size_histogram(self, *, min_size: int = 0) -> Counter:
        """size -> number of allocations of that size."""
        return Counter(self.allocation_sizes(min_size=min_size))

    def peak_allocated_bytes(self) -> int:
        """Theoretical peak memory demand ``M_a`` of the trace."""
        live = 0
        peak = 0
        for event in self.events:
            if event.is_alloc():
                live += event.size
                peak = max(peak, live)
            else:
                live -= event.size
        return peak

    def total_allocated_bytes(self) -> int:
        """Sum of all allocation sizes over the iteration."""
        return sum(e.size for e in self.events if e.is_alloc())

    def comm_peak_bytes(self) -> int:
        """Peak concurrently-live communication-buffer bytes.

        Covers every :attr:`TensorCategory.COMM_BUFFER` tensor -- the
        expert-parallel all-to-all dispatch/combine transients, pipeline P2P
        buffers, ZeRO gather/reduce buckets -- so it quantifies how much of
        the memory peak a static planner must provision for communication
        alone.  Like :meth:`peak_allocated_bytes` it is trace-determined:
        every allocator replays the same curve.
        """
        live = 0
        peak = 0
        for event in self.events:
            if event.category is not TensorCategory.COMM_BUFFER:
                continue
            if event.is_alloc():
                live += event.size
                peak = max(peak, live)
            else:
                live -= event.size
        return peak

    def end_time(self) -> int:
        return self.events[-1].time + 1 if self.events else 0

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def to_requests(self) -> list[MemoryRequest]:
        """Pair alloc/free events into memory-request events (profiler view)."""
        return pair_events(self.events, end_of_trace=self.end_time())

    def static_dynamic_split(self) -> tuple[int, int]:
        """(static bytes, dynamic bytes) of the iteration's allocations."""
        static = sum(e.size for e in self.events if e.is_alloc() and not e.dyn)
        dynamic = sum(e.size for e in self.events if e.is_alloc() and e.dyn)
        return static, dynamic

    def category_bytes(self) -> dict[str, int]:
        """Total allocated bytes per tensor category."""
        totals: dict[str, int] = {}
        for event in self.events:
            if event.is_alloc():
                key = event.category.value
                totals[key] = totals.get(key, 0) + event.size
        return totals

    # ------------------------------------------------------------------ #
    # Serialization (line-oriented JSON, mirroring the real profiler's logs)
    # ------------------------------------------------------------------ #
    def iter_jsonl(self) -> Iterator[str]:
        """Yield the canonical JSON-lines serialization, one line at a time.

        The encoding is canonical (sorted keys, fixed separators), so two
        traces serialize to the same bytes exactly when their contents are
        equal -- the property :meth:`digest` and the sweep cache rely on.
        """
        header = {
            "metadata": asdict(self.metadata),
            "module_spans": self.module_spans,
            "phases": [phase_to_dict(p) for p in self.phases],
        }
        yield json.dumps(header, sort_keys=True, separators=(",", ":"))
        for event in self.events:
            yield json.dumps(
                {
                    "kind": event.kind.value,
                    "req_id": event.req_id,
                    "size": event.size,
                    "time": event.time,
                    "phase": event.phase.index,
                    "module": event.module,
                    "dyn": event.dyn,
                    "category": event.category.value,
                    "tag": event.tag,
                },
                sort_keys=True,
                separators=(",", ":"),
            )

    def dumps(self) -> str:
        """Serialize to the JSON-lines format of :meth:`save` as one string."""
        return "\n".join(self.iter_jsonl()) + "\n"

    @classmethod
    def _from_lines(cls, lines) -> "Trace":
        """Build a trace from an iterable of JSON lines (streaming parse)."""
        lines = iter(lines)
        try:
            header = json.loads(next(lines))
        except StopIteration:
            raise ValueError("empty trace serialization") from None
        phases = [phase_from_dict(entry) for entry in header["phases"]]
        phase_by_index = {phase.index: phase for phase in phases}
        events = []
        for line in lines:
            if not line.strip():
                continue
            record = json.loads(line)
            events.append(
                TraceEvent(
                    kind=EventKind(record["kind"]),
                    req_id=record["req_id"],
                    size=record["size"],
                    time=record["time"],
                    phase=phase_by_index[record["phase"]],
                    module=record["module"],
                    dyn=record["dyn"],
                    category=TensorCategory(record["category"]),
                    tag=record["tag"],
                )
            )
        metadata = TraceMetadata(**header["metadata"])
        module_spans = {name: tuple(span) for name, span in header["module_spans"].items()}
        return cls(events=events, metadata=metadata, phases=phases, module_spans=module_spans)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse a trace from the string produced by :meth:`dumps`."""
        if not text:
            raise ValueError("empty trace serialization")
        return cls._from_lines(text.splitlines())

    def digest(self) -> str:
        """SHA-256 over the canonical serialization (content address of the trace).

        Memoised: traces are treated as immutable once generated, and the
        plan cache computes this once per (trace, knob-combination) pair.
        """
        cached = getattr(self, "_digest_cache", None)
        if cached is None:
            hasher = hashlib.sha256()
            for line in self.iter_jsonl():
                hasher.update(line.encode("utf-8"))
                hasher.update(b"\n")
            cached = hasher.hexdigest()
            self._digest_cache = cached
        return cached

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON-lines with a metadata header (streamed)."""
        with Path(path).open("w", encoding="utf-8") as handle:
            for line in self.iter_jsonl():
                handle.write(line)
                handle.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save` (streamed)."""
        with Path(path).open("r", encoding="utf-8") as handle:
            return cls._from_lines(line.rstrip("\n") for line in handle)
