"""Allocation trace container and analysis helpers.

A :class:`Trace` is the ordered list of allocation/free events one rank issues
during a single training iteration, together with the metadata needed to
interpret it.  It is the common currency of the repository: the workload
generator produces traces, the profiler and plan synthesizer consume them, and
the replay simulator feeds them to allocators.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.events import EventKind, MemoryRequest, Phase, PhaseKind, TensorCategory, TraceEvent, pair_events


@dataclass(frozen=True)
class TraceMetadata:
    """Descriptive information attached to a generated trace."""

    model_name: str = ""
    config_label: str = ""
    description: str = ""
    micro_batch_size: int = 0
    num_microbatches: int = 0
    parallelism: str = ""
    seed: int = 0
    scale: float = 1.0


@dataclass
class Trace:
    """An ordered allocation/free event stream for one training iteration."""

    events: list[TraceEvent] = field(default_factory=list)
    metadata: TraceMetadata = field(default_factory=TraceMetadata)
    phases: list[Phase] = field(default_factory=list)
    module_spans: dict[str, tuple[int, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Basic statistics
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_requests(self) -> int:
        """Number of allocation requests (the paper's ``Num`` column in Table 2)."""
        return sum(1 for event in self.events if event.is_alloc())

    @property
    def num_dynamic_requests(self) -> int:
        return sum(1 for event in self.events if event.is_alloc() and event.dyn)

    def allocation_sizes(self, *, min_size: int = 0) -> list[int]:
        """Sizes of every allocation request at least ``min_size`` bytes."""
        return [e.size for e in self.events if e.is_alloc() and e.size >= min_size]

    def distinct_sizes(self, *, min_size: int = 512) -> int:
        """Number of distinct allocation sizes (the Figure 3 statistic)."""
        return len({e.size for e in self.events if e.is_alloc() and e.size > min_size})

    def size_histogram(self, *, min_size: int = 0) -> Counter:
        """size -> number of allocations of that size."""
        return Counter(self.allocation_sizes(min_size=min_size))

    def peak_allocated_bytes(self) -> int:
        """Theoretical peak memory demand ``M_a`` of the trace."""
        live = 0
        peak = 0
        for event in self.events:
            if event.is_alloc():
                live += event.size
                peak = max(peak, live)
            else:
                live -= event.size
        return peak

    def total_allocated_bytes(self) -> int:
        """Sum of all allocation sizes over the iteration."""
        return sum(e.size for e in self.events if e.is_alloc())

    def end_time(self) -> int:
        return self.events[-1].time + 1 if self.events else 0

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def to_requests(self) -> list[MemoryRequest]:
        """Pair alloc/free events into memory-request events (profiler view)."""
        return pair_events(self.events, end_of_trace=self.end_time())

    def static_dynamic_split(self) -> tuple[int, int]:
        """(static bytes, dynamic bytes) of the iteration's allocations."""
        static = sum(e.size for e in self.events if e.is_alloc() and not e.dyn)
        dynamic = sum(e.size for e in self.events if e.is_alloc() and e.dyn)
        return static, dynamic

    def category_bytes(self) -> dict[str, int]:
        """Total allocated bytes per tensor category."""
        totals: dict[str, int] = {}
        for event in self.events:
            if event.is_alloc():
                key = event.category.value
                totals[key] = totals.get(key, 0) + event.size
        return totals

    # ------------------------------------------------------------------ #
    # Serialization (line-oriented JSON, mirroring the real profiler's logs)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON-lines with a metadata header."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = {
                "metadata": asdict(self.metadata),
                "module_spans": self.module_spans,
                "phases": [
                    {
                        "index": p.index,
                        "kind": p.kind.value,
                        "microbatch": p.microbatch,
                        "chunk": p.chunk,
                    }
                    for p in self.phases
                ],
            }
            handle.write(json.dumps(header) + "\n")
            for event in self.events:
                handle.write(
                    json.dumps(
                        {
                            "kind": event.kind.value,
                            "req_id": event.req_id,
                            "size": event.size,
                            "time": event.time,
                            "phase": event.phase.index,
                            "module": event.module,
                            "dyn": event.dyn,
                            "category": event.category.value,
                            "tag": event.tag,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            phases = [
                Phase(
                    index=entry["index"],
                    kind=PhaseKind(entry["kind"]),
                    microbatch=entry["microbatch"],
                    chunk=entry["chunk"],
                )
                for entry in header["phases"]
            ]
            phase_by_index = {phase.index: phase for phase in phases}
            events = []
            for line in handle:
                record = json.loads(line)
                events.append(
                    TraceEvent(
                        kind=EventKind(record["kind"]),
                        req_id=record["req_id"],
                        size=record["size"],
                        time=record["time"],
                        phase=phase_by_index[record["phase"]],
                        module=record["module"],
                        dyn=record["dyn"],
                        category=TensorCategory(record["category"]),
                        tag=record["tag"],
                    )
                )
        metadata = TraceMetadata(**header["metadata"])
        module_spans = {name: tuple(span) for name, span in header["module_spans"].items()}
        return cls(events=events, metadata=metadata, phases=phases, module_spans=module_spans)
