"""Distributed-training parallelism configuration.

Only the dimensions that affect a single rank's memory behaviour are modelled:
tensor parallelism shrinks per-rank weights and partitionable activations,
pipeline parallelism assigns a layer slice per stage and determines how many
micro-batches are in flight, virtual pipelining multiplies the in-flight
chunks, expert parallelism splits MoE experts, and data parallelism only
matters through ZeRO-style optimizer-state sharding.
"""

from __future__ import annotations

from dataclasses import dataclass

#: A simulated rank coordinate: ``(pipeline rank, expert-parallel rank)``.
RankCoord = tuple[int, int]


def normalize_rank(rank) -> RankCoord:
    """Coerce a rank selector into a ``(pp_rank, ep_rank)`` coordinate.

    Plain integers are pipeline ranks (expert-parallel rank 0) -- the
    single-axis form every pre-EP API accepted; 2-sequences are taken as
    ``(pp, ep)`` verbatim.
    """
    if isinstance(rank, bool):
        raise ValueError(f"rank must be an int or (pp, ep) pair, got {rank!r}")
    if isinstance(rank, int):
        return (rank, 0)
    if isinstance(rank, (tuple, list)) and len(rank) == 2:
        pp, ep = rank
        if isinstance(pp, int) and isinstance(ep, int) \
                and not isinstance(pp, bool) and not isinstance(ep, bool):
            return (pp, ep)
    raise ValueError(f"rank must be an int or (pp, ep) pair, got {rank!r}")


def rank_label(rank) -> str:
    """Human/JSON-friendly name of one rank: ``"2"`` or ``"2.1"`` (pp.ep).

    Integer ranks keep their plain rendering so result rows of non-EP jobs
    are byte-identical to earlier releases (``--compare`` baselines keep
    matching); coordinates render as ``pp.ep``.
    """
    if isinstance(rank, int):
        return str(rank)
    pp, ep = normalize_rank(rank)
    return f"{pp}.{ep}"


@dataclass(frozen=True)
class ParallelismConfig:
    """Parallelism degrees for one training job."""

    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    data_parallel: int = 1
    expert_parallel: int = 1
    virtual_pipeline_chunks: int = 1
    sequence_parallel: bool = False

    def __post_init__(self) -> None:
        for field_name in (
            "tensor_parallel",
            "pipeline_parallel",
            "data_parallel",
            "expert_parallel",
            "virtual_pipeline_chunks",
        ):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")
        if self.virtual_pipeline_chunks > 1 and self.pipeline_parallel == 1:
            raise ValueError("virtual pipeline requires pipeline_parallel > 1")

    @property
    def num_gpus(self) -> int:
        """World size implied by the parallelism degrees."""
        return self.tensor_parallel * self.pipeline_parallel * self.data_parallel

    @property
    def uses_virtual_pipeline(self) -> bool:
        return self.virtual_pipeline_chunks > 1

    def layers_per_rank(self, num_layers: int) -> int:
        """Transformer layers held by one pipeline rank."""
        if num_layers % self.pipeline_parallel:
            raise ValueError(
                f"num_layers ({num_layers}) must be divisible by pipeline_parallel "
                f"({self.pipeline_parallel})"
            )
        return num_layers // self.pipeline_parallel

    def layers_per_chunk(self, num_layers: int) -> int:
        """Transformer layers in one virtual-pipeline model chunk on one rank."""
        per_rank = self.layers_per_rank(num_layers)
        if per_rank % self.virtual_pipeline_chunks:
            raise ValueError(
                f"layers per rank ({per_rank}) must be divisible by "
                f"virtual_pipeline_chunks ({self.virtual_pipeline_chunks})"
            )
        return per_rank // self.virtual_pipeline_chunks

    # ------------------------------------------------------------------ #
    # Per-rank memory equivalence
    # ------------------------------------------------------------------ #
    def in_flight_microbatches(self, rank: int, num_microbatches: int) -> int:
        """Peak concurrently-live (micro-batch, chunk) units on pipeline ``rank``.

        Under 1F1B (and its interleaved variant) stage ``r`` warms up with
        ``min(p - r, m)`` micro-batches, so earlier stages pin more activation
        memory -- the per-stage asymmetry job-level simulation has to model.
        """
        if not 0 <= rank < self.pipeline_parallel:
            raise ValueError(
                f"rank must be in [0, {self.pipeline_parallel}), got {rank}"
            )
        chunks = self.virtual_pipeline_chunks
        return min(num_microbatches * chunks, (self.pipeline_parallel - rank) * chunks)

    def rank_memory_key(
        self, rank: int, num_microbatches: int, *, ep_rank: int = 0,
        expert_asymmetry: bool = False,
    ) -> tuple:
        """Hashable key identifying the memory behaviour of one rank.

        Two ranks with equal keys generate byte-identical allocation traces:
        the trace depends on the pipeline rank only through (a) whether it is
        the first stage (embedding + embedding activations), (b) whether it is
        the last stage (LM head + logits), and (c) how many micro-batches its
        1F1B position keeps in flight.  With ``expert_asymmetry`` (an MoE job
        whose router imbalance skews per-expert token loads at runtime) the
        expert-parallel rank becomes part of the key as well: each EP rank
        observes a different slice of the routed load, so EP peers stop being
        interchangeable.  Without it every EP rank sees the same (balanced)
        load and the key deliberately ignores ``ep_rank``.
        """
        key = (
            rank == 0,
            rank == self.pipeline_parallel - 1,
            self.in_flight_microbatches(rank, num_microbatches),
        )
        if expert_asymmetry:
            if not 0 <= ep_rank < self.expert_parallel:
                raise ValueError(
                    f"ep_rank must be in [0, {self.expert_parallel}), got {ep_rank}"
                )
            key += (ep_rank,)
        return key

    def rank_equivalence_classes(
        self, num_microbatches: int, *, expert_asymmetry: bool = False
    ) -> list[tuple]:
        """Group ranks into memory-equivalent classes.

        Returns the classes in ascending order of their representative (first)
        rank; simulating one representative per class is enough to know every
        rank's memory behaviour, so a PP=8 job needs at most 8 -- and often
        fewer -- trace generations.  Tensor/data-parallel peers are already
        implicitly deduplicated: they do not appear as distinct ranks because
        their memory behaviour is identical within a pipeline stage.

        Without ``expert_asymmetry`` the classes partition the pipeline ranks
        (plain ints, the historical behaviour) and expert-parallel peers
        collapse into their stage's class.  With it they partition the full
        ``(pp, ep)`` grid: every coordinate appears in exactly one class, and
        EP peers land in distinct classes because their routed token loads
        differ at runtime.
        """
        if not expert_asymmetry or self.expert_parallel == 1:
            classes: dict[tuple, list[int]] = {}
            for rank in range(self.pipeline_parallel):
                classes.setdefault(
                    self.rank_memory_key(rank, num_microbatches), []
                ).append(rank)
            return sorted((tuple(members) for members in classes.values()), key=lambda c: c[0])
        coord_classes: dict[tuple, list[RankCoord]] = {}
        for rank in range(self.pipeline_parallel):
            for ep_rank in range(self.expert_parallel):
                key = self.rank_memory_key(
                    rank, num_microbatches, ep_rank=ep_rank, expert_asymmetry=True
                )
                coord_classes.setdefault(key, []).append((rank, ep_rank))
        return sorted((tuple(members) for members in coord_classes.values()), key=lambda c: c[0])

    def describe(self) -> str:
        """Compact label like ``TP2 PP4 DP2 VPP2``."""
        parts = [f"TP{self.tensor_parallel}", f"PP{self.pipeline_parallel}", f"DP{self.data_parallel}"]
        if self.expert_parallel > 1:
            parts.append(f"EP{self.expert_parallel}")
        if self.uses_virtual_pipeline:
            parts.append(f"VPP{self.virtual_pipeline_chunks}")
        if self.sequence_parallel:
            parts.append("SP")
        return " ".join(parts)
