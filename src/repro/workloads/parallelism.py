"""Distributed-training parallelism configuration.

Only the dimensions that affect a single rank's memory behaviour are modelled:
tensor parallelism shrinks per-rank weights and partitionable activations,
pipeline parallelism assigns a layer slice per stage and determines how many
micro-batches are in flight, virtual pipelining multiplies the in-flight
chunks, expert parallelism splits MoE experts, and data parallelism only
matters through ZeRO-style optimizer-state sharding.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelismConfig:
    """Parallelism degrees for one training job."""

    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    data_parallel: int = 1
    expert_parallel: int = 1
    virtual_pipeline_chunks: int = 1
    sequence_parallel: bool = False

    def __post_init__(self) -> None:
        for field_name in (
            "tensor_parallel",
            "pipeline_parallel",
            "data_parallel",
            "expert_parallel",
            "virtual_pipeline_chunks",
        ):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")
        if self.virtual_pipeline_chunks > 1 and self.pipeline_parallel == 1:
            raise ValueError("virtual pipeline requires pipeline_parallel > 1")

    @property
    def num_gpus(self) -> int:
        """World size implied by the parallelism degrees."""
        return self.tensor_parallel * self.pipeline_parallel * self.data_parallel

    @property
    def uses_virtual_pipeline(self) -> bool:
        return self.virtual_pipeline_chunks > 1

    def layers_per_rank(self, num_layers: int) -> int:
        """Transformer layers held by one pipeline rank."""
        if num_layers % self.pipeline_parallel:
            raise ValueError(
                f"num_layers ({num_layers}) must be divisible by pipeline_parallel "
                f"({self.pipeline_parallel})"
            )
        return num_layers // self.pipeline_parallel

    def layers_per_chunk(self, num_layers: int) -> int:
        """Transformer layers in one virtual-pipeline model chunk on one rank."""
        per_rank = self.layers_per_rank(num_layers)
        if per_rank % self.virtual_pipeline_chunks:
            raise ValueError(
                f"layers per rank ({per_rank}) must be divisible by "
                f"virtual_pipeline_chunks ({self.virtual_pipeline_chunks})"
            )
        return per_rank // self.virtual_pipeline_chunks

    def describe(self) -> str:
        """Compact label like ``TP2 PP4 DP2 VPP2``."""
        parts = [f"TP{self.tensor_parallel}", f"PP{self.pipeline_parallel}", f"DP{self.data_parallel}"]
        if self.expert_parallel > 1:
            parts.append(f"EP{self.expert_parallel}")
        if self.uses_virtual_pipeline:
            parts.append(f"VPP{self.virtual_pipeline_chunks}")
        if self.sequence_parallel:
            parts.append("SP")
        return " ".join(parts)
