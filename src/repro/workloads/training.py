"""Training-run configuration and the paper's optimization presets.

A :class:`TrainingConfig` bundles the model, the parallelism layout and the
memory-relevant training options (micro-batch size, recomputation, activation
offloading, ZeRO stage, training framework).  The named presets match the
x-axis of Figure 8: ``Naive``/``R``/``V``/``VR``/``ZR``/``ZOR``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.workloads.model_config import ModelConfig
from repro.workloads.parallelism import ParallelismConfig


@dataclass(frozen=True)
class TrainingConfig:
    """Everything that determines one rank's allocation behaviour."""

    model: ModelConfig
    parallelism: ParallelismConfig = field(default_factory=ParallelismConfig)
    micro_batch_size: int = 1
    num_microbatches: int = 8
    seq_length: int | None = None
    recompute: bool = False
    offload_activations: bool = False
    zero_stage: int = 0
    framework: str = "megatron"
    param_dtype_bytes: int = 2
    grad_dtype_bytes: int = 4
    optimizer_bytes_per_param: int = 12
    #: MoE router skew in [0, 1]: 0 routes tokens in an exact balanced split
    #: (every expert-parallel rank sees the same load), larger values mix in a
    #: random per-expert preference so EP ranks diverge at runtime.  Ignored
    #: for dense models.
    moe_imbalance: float = 0.3
    #: Scale of the expert-parallel all-to-all communication transients: the
    #: dispatch (forward) and combine (backward) send/recv buffers are sized
    #: ``moe_comm_factor * routed_tokens * hidden_size`` activation bytes and
    #: live across the expert FFN of their layer.  0 (the default) disables
    #: the transients entirely -- the event stream is byte-identical to the
    #: same config's comm-free trace (the golden-fixture baseline); 1 models
    #: unfused all-to-all staging buffers holding one full copy of the routed
    #: activations per direction.  Ignored for dense models.
    moe_comm_factor: float = 0.0
    #: Fraction of each all-to-all collective hidden under the expert compute
    #: that follows it, in [0, 1].  Priced inside the timeline simulator (the
    #: expert FFN starts early by ``min(factor * a2a, expert)`` seconds), not
    #: subtracted after the fact, so ``comm_seconds`` and stall events stay
    #: honest; 0 (the default) serialises communication and compute exactly
    #: like the pre-overlap simulator.  Ignored for dense models.
    comm_overlap_factor: float = 0.0
    #: Workload class: ``"training"`` (the default, one forward + backward +
    #: optimizer iteration), ``"inference"`` (forward-only pipeline, no
    #: gradients or optimizer state), or ``"generation"`` (one prefill pass
    #: followed by ``decode_steps`` autoregressive decode passes per
    #: micro-batch, with per-layer KV caches growing every step).
    workload_kind: str = "training"
    #: Decode passes per micro-batch for generation workloads.  Each step
    #: appends one token per sequence to the cached context.  0 with
    #: ``workload_kind="generation"`` degenerates to prefill-only (the trace
    #: is event-identical to the inference workload's).
    decode_steps: int = 0
    #: Cap on generated tokens per sequence: the KV cache stops growing once
    #: the context reaches ``sequence_length + max_new_tokens`` (decode steps
    #: beyond the cap still run, over the capped context).  0 means no cap.
    max_new_tokens: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")
        if self.num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        if self.zero_stage not in (0, 1, 2, 3):
            raise ValueError(f"zero_stage must be 0-3, got {self.zero_stage}")
        if self.framework not in ("megatron", "colossalai"):
            raise ValueError(f"unknown framework {self.framework!r}")
        if not 0.0 <= self.moe_imbalance <= 1.0:
            raise ValueError(f"moe_imbalance must be in [0, 1], got {self.moe_imbalance}")
        if self.moe_comm_factor < 0.0:
            raise ValueError(
                f"moe_comm_factor must be >= 0, got {self.moe_comm_factor}"
            )
        if not 0.0 <= self.comm_overlap_factor <= 1.0:
            raise ValueError(
                f"comm_overlap_factor must be in [0, 1], got {self.comm_overlap_factor}"
            )
        if self.workload_kind not in ("training", "inference", "generation"):
            raise ValueError(
                f"workload_kind must be training, inference or generation, "
                f"got {self.workload_kind!r}"
            )
        if self.decode_steps < 0:
            raise ValueError(f"decode_steps must be >= 0, got {self.decode_steps}")
        if self.max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be >= 0, got {self.max_new_tokens}")
        if self.workload_kind != "generation" and (self.decode_steps or self.max_new_tokens):
            raise ValueError(
                "decode_steps/max_new_tokens only apply to workload_kind='generation'"
            )
        if self.workload_kind != "training" and (
            self.recompute or self.offload_activations or self.zero_stage
        ):
            raise ValueError(
                "recompute/offload_activations/zero_stage are training-only "
                f"options (workload_kind={self.workload_kind!r})"
            )

    @property
    def sequence_length(self) -> int:
        return self.seq_length if self.seq_length is not None else self.model.seq_length

    @property
    def tokens_per_microbatch(self) -> int:
        return self.micro_batch_size * self.sequence_length

    @property
    def is_training(self) -> bool:
        return self.workload_kind == "training"

    @property
    def effective_new_tokens(self) -> int:
        """Tokens per sequence the KV cache actually grows by over all decode
        steps: ``decode_steps``, clamped by ``max_new_tokens`` when set."""
        if self.max_new_tokens:
            return min(self.decode_steps, self.max_new_tokens)
        return self.decode_steps

    def context_tokens_at(self, step: int) -> int:
        """Per-sequence context length (prompt + generated) after decode
        ``step`` (step 0 is prefill; growth stops at the ``max_new_tokens``
        cap while later decode steps still run over the capped context)."""
        grown = min(step, self.max_new_tokens) if self.max_new_tokens else step
        return self.sequence_length + grown

    @property
    def tokens_per_iteration(self) -> int:
        """Tokens processed per iteration across the whole data-parallel group.

        For generation workloads the generated tokens count too: each decode
        step processes one new token per sequence of every micro-batch.
        """
        tokens = self.tokens_per_microbatch * self.num_microbatches
        if self.workload_kind == "generation":
            tokens += self.micro_batch_size * self.effective_new_tokens * self.num_microbatches
        return tokens * self.parallelism.data_parallel

    @property
    def uses_distributed_optimizer(self) -> bool:
        return self.zero_stage >= 1

    @property
    def expert_asymmetry(self) -> bool:
        """Whether expert-parallel ranks of this job differ in memory behaviour.

        True exactly when runtime token routing can skew per-rank expert loads:
        an MoE model, more than one expert-parallel rank, and a non-zero router
        imbalance.  At ``moe_imbalance == 0`` the router's balanced split gives
        every EP rank the same load, so EP peers collapse back into one
        memory-equivalence class (the pre-EP-awareness behaviour).
        """
        return (
            self.model.is_moe
            and self.parallelism.expert_parallel > 1
            and self.moe_imbalance > 0.0
        )

    def describe(self) -> str:
        """Readable one-line description used in experiment tables."""
        bits = [
            self.model.name,
            self.parallelism.describe(),
            f"mbs={self.micro_batch_size}",
            f"m={self.num_microbatches}",
        ]
        if self.recompute:
            bits.append("recompute")
        if self.offload_activations:
            bits.append("offload")
        if self.zero_stage:
            bits.append(f"zero{self.zero_stage}")
        if self.model.is_moe and self.moe_comm_factor:
            bits.append(f"comm={self.moe_comm_factor:g}")
        if self.model.is_moe and self.comm_overlap_factor:
            bits.append(f"ovl={self.comm_overlap_factor:g}")
        if self.workload_kind != "training":
            bits.append(self.workload_kind)
            if self.decode_steps:
                bits.append(f"dec={self.decode_steps}")
            if self.max_new_tokens:
                bits.append(f"tok={self.max_new_tokens}")
        if self.label:
            bits.append(f"[{self.label}]")
        return " ".join(bits)

    def with_(self, **changes) -> "TrainingConfig":
        """Return a modified copy (convenience wrapper around dataclasses.replace)."""
        return replace(self, **changes)


#: The optimization combinations evaluated in Figure 8 / Figure 13.
#: N: no optimization, R: recomputation, V: virtual pipeline, Z: ZeRO
#: (distributed optimizer), O: activation offload.
OPTIMIZATION_PRESETS: dict[str, dict] = {
    "Naive": {},
    "R": {"recompute": True},
    "V": {"virtual_pipeline": True},
    "VR": {"virtual_pipeline": True, "recompute": True},
    "ZR": {"zero_stage": 1, "recompute": True},
    "ZOR": {"zero_stage": 1, "offload_activations": True, "recompute": True},
}


def preset_config(
    model: ModelConfig,
    preset: str,
    *,
    parallelism: ParallelismConfig,
    micro_batch_size: int,
    num_microbatches: int = 8,
    virtual_chunks: int = 2,
    framework: str = "megatron",
) -> TrainingConfig:
    """Build the TrainingConfig for one of the paper's optimization presets.

    ``parallelism`` is the baseline layout; presets containing ``V`` replace it
    with a copy that uses ``virtual_chunks`` virtual-pipeline chunks.
    """
    if preset not in OPTIMIZATION_PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; available: {', '.join(OPTIMIZATION_PRESETS)}"
        )
    options = dict(OPTIMIZATION_PRESETS[preset])
    if options.pop("virtual_pipeline", False):
        parallelism = replace(parallelism, virtual_pipeline_chunks=virtual_chunks)
    return TrainingConfig(
        model=model,
        parallelism=parallelism,
        micro_batch_size=micro_batch_size,
        num_microbatches=num_microbatches,
        framework=framework,
        label=preset,
        **options,
    )
