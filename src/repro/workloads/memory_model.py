"""Per-rank tensor-size model for transformer training.

Given a :class:`~repro.workloads.training.TrainingConfig`, this module
computes the byte sizes of the tensors one pipeline rank materialises during a
training iteration:

* persistent tensors -- per-layer weight/gradient/optimizer-state chunks plus
  embeddings (allocated once, live for the whole run);
* scoped activation tensors -- produced in a micro-batch's forward pass and
  kept until the matching backward pass;
* transient tensors -- operator workspaces and backward temporaries freed
  within the phase that created them;
* MoE expert tensors -- whose sizes depend on runtime token routing and are
  therefore *dynamic*.

The tensor inventory intentionally mirrors a Megatron-style layer so that the
number of *distinct* sizes per configuration stays small (a few dozen), which
is exactly the spatial regularity STAlloc exploits (Figure 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import TensorCategory
from repro.workloads.moe import balanced_split
from repro.workloads.training import TrainingConfig

#: bytes per element for activations (bf16).
ACT_BYTES = 2


@dataclass(frozen=True)
class TensorSpec:
    """One tensor the workload will allocate."""

    tag: str
    size: int
    category: TensorCategory
    saved_for_backward: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"tensor {self.tag!r} has non-positive size {self.size}")


def _round512(size: float) -> int:
    """Tensor allocations surface as 512-byte aligned requests in PyTorch."""
    size = int(size)
    return max(512, ((size + 511) // 512) * 512)


class MemoryModel:
    """Computes tensor sizes for one pipeline rank of a training config."""

    def __init__(self, config: TrainingConfig, *, rank: int = 0, ep_rank: int = 0):
        if not 0 <= rank < config.parallelism.pipeline_parallel:
            raise ValueError(
                f"rank must be in [0, {config.parallelism.pipeline_parallel}), got {rank}"
            )
        if not 0 <= ep_rank < config.parallelism.expert_parallel:
            raise ValueError(
                f"ep_rank must be in [0, {config.parallelism.expert_parallel}), got {ep_rank}"
            )
        if (
            config.model.is_moe
            and config.parallelism.expert_parallel > 1
            and config.model.num_experts % config.parallelism.expert_parallel
        ):
            raise ValueError(
                f"num_experts ({config.model.num_experts}) must be divisible by "
                f"expert_parallel ({config.parallelism.expert_parallel}) so the "
                f"expert-parallel slices cover every expert exactly once"
            )
        self.config = config
        self.model = config.model
        self.parallelism = config.parallelism
        self.rank = rank
        self.ep_rank = ep_rank

    @property
    def is_first_stage(self) -> bool:
        return self.rank == 0

    @property
    def is_last_stage(self) -> bool:
        return self.rank == self.parallelism.pipeline_parallel - 1

    # ------------------------------------------------------------------ #
    # Shorthand
    # ------------------------------------------------------------------ #
    @property
    def tp(self) -> int:
        return self.parallelism.tensor_parallel

    @property
    def dp(self) -> int:
        return self.parallelism.data_parallel

    @property
    def ep(self) -> int:
        return self.parallelism.expert_parallel

    @property
    def tokens(self) -> int:
        """Tokens in one micro-batch on this rank."""
        return self.config.micro_batch_size * self.config.sequence_length

    @property
    def num_local_experts(self) -> int:
        if not self.model.is_moe:
            return 0
        return max(1, self.model.num_experts // self.ep)

    # ------------------------------------------------------------------ #
    # Persistent tensors
    # ------------------------------------------------------------------ #
    def layer_weight_bytes(self) -> int:
        """Parameter bytes of one transformer layer on this rank."""
        attention = self.model.attention_params() / self.tp
        norms = 2 * self.model.hidden_size
        if self.model.is_moe:
            mlp = (
                self.model.hidden_size * self.model.num_experts  # router (replicated)
                + self.num_local_experts * self.model.expert_params()
            )
            if self.model.moe_shared_expert_ffn:
                h, f = self.model.hidden_size, self.model.moe_shared_expert_ffn
                mlp += ((2 if self.model.gated_mlp else 1) * h * f + f * h) / self.tp
        else:
            mlp = self.model.mlp_params() / self.tp
        params = attention + mlp + norms
        return _round512(params * self.config.param_dtype_bytes)

    def layer_grad_bytes(self) -> int:
        """Main-gradient bytes of one layer (fp32, optionally ZeRO-2 sharded)."""
        weight_params = self.layer_weight_bytes() / self.config.param_dtype_bytes
        grads = weight_params * self.config.grad_dtype_bytes
        if self.config.zero_stage >= 2:
            grads /= self.dp
        return _round512(grads)

    def layer_optimizer_bytes(self) -> int:
        """Adam state bytes of one layer (sharded under the distributed optimizer)."""
        weight_params = self.layer_weight_bytes() / self.config.param_dtype_bytes
        states = weight_params * self.config.optimizer_bytes_per_param
        if self.config.uses_distributed_optimizer:
            states /= self.dp
        return _round512(states)

    def embedding_bytes(self) -> int:
        """Embedding parameter bytes on the first pipeline stage."""
        params = self.model.vocab_size * self.model.hidden_size / self.tp
        return _round512(params * self.config.param_dtype_bytes)

    def persistent_tensors(self) -> list[TensorSpec]:
        """Weights, gradients and optimizer states allocated at start-up."""
        specs: list[TensorSpec] = []
        layers = self.parallelism.layers_per_rank(self.model.num_layers)
        embedding = self.embedding_bytes()
        embedding_grad = _round512(
            embedding * self.config.grad_dtype_bytes / self.config.param_dtype_bytes
        )
        if self.is_first_stage:
            specs.append(TensorSpec("embedding.weight", embedding, TensorCategory.WEIGHT))
            specs.append(
                TensorSpec("embedding.grad", embedding_grad, TensorCategory.GRADIENT)
            )
        if self.is_last_stage and self.parallelism.pipeline_parallel > 1:
            # Megatron-style tied embeddings: the last stage holds its own copy
            # of the (input==output) embedding for the LM head plus its grad.
            specs.append(TensorSpec("lm_head.weight", embedding, TensorCategory.WEIGHT))
            specs.append(TensorSpec("lm_head.grad", embedding_grad, TensorCategory.GRADIENT))
        weight = self.layer_weight_bytes()
        grad = self.layer_grad_bytes()
        optim = self.layer_optimizer_bytes()
        for layer in range(layers):
            specs.append(TensorSpec(f"layer{layer}.weight", weight, TensorCategory.WEIGHT))
            specs.append(TensorSpec(f"layer{layer}.grad", grad, TensorCategory.GRADIENT))
            specs.append(TensorSpec(f"layer{layer}.optim", optim, TensorCategory.OPTIMIZER_STATE))
        return specs

    # ------------------------------------------------------------------ #
    # Activation tensors of one dense transformer layer
    # ------------------------------------------------------------------ #
    def saved_activation_tensors(self) -> list[TensorSpec]:
        """Activations a dense layer saves for its backward pass (per micro-batch)."""
        n, h, f, t = self.tokens, self.model.hidden_size, self.model.ffn_hidden_size, self.tp
        gated = 2 if self.model.gated_mlp else 1
        specs = [
            TensorSpec("ln1_out", _round512(n * h * ACT_BYTES), TensorCategory.ACTIVATION, True),
            TensorSpec("qkv_proj", _round512(3 * n * h * ACT_BYTES / t), TensorCategory.ACTIVATION, True),
            TensorSpec("attn_context", _round512(n * h * ACT_BYTES / t), TensorCategory.ACTIVATION, True),
            TensorSpec("attn_proj_out", _round512(n * h * ACT_BYTES), TensorCategory.ACTIVATION, True),
            TensorSpec("ln2_out", _round512(n * h * ACT_BYTES), TensorCategory.ACTIVATION, True),
            TensorSpec("mlp_up", _round512(gated * n * f * ACT_BYTES / t), TensorCategory.ACTIVATION, True),
            TensorSpec("mlp_act", _round512(n * f * ACT_BYTES / t), TensorCategory.ACTIVATION, True),
            TensorSpec("mlp_down_out", _round512(n * h * ACT_BYTES), TensorCategory.ACTIVATION, True),
            TensorSpec("dropout_mask", _round512(n * h), TensorCategory.ACTIVATION, True),
            # Flash-attention softmax statistics (log-sum-exp), small but kept
            # until backward -- a classic "pinning" tensor for online allocators.
            TensorSpec(
                "attn_softmax_lse",
                _round512(n * self.model.num_attention_heads * 4 / t),
                TensorCategory.ACTIVATION,
                True,
            ),
        ]
        return specs

    def recompute_checkpoint_tensors(self) -> list[TensorSpec]:
        """What survives the forward pass under full recomputation: the layer input."""
        n, h = self.tokens, self.model.hidden_size
        return [
            TensorSpec("layer_input_ckpt", _round512(n * h * ACT_BYTES), TensorCategory.ACTIVATION, True)
        ]

    def forward_transient_tensors(self) -> list[TensorSpec]:
        """Operator workspaces freed within the forward pass of a layer."""
        n, h, f, t = self.tokens, self.model.hidden_size, self.model.ffn_hidden_size, self.tp
        return [
            TensorSpec("attn_tmp", _round512(n * h * ACT_BYTES / t), TensorCategory.TEMPORARY),
            TensorSpec("mlp_tmp", _round512(n * f * ACT_BYTES / t), TensorCategory.TEMPORARY),
            TensorSpec("residual_tmp", _round512(n * h * ACT_BYTES), TensorCategory.TEMPORARY),
        ]

    def backward_transient_tensors(self) -> list[TensorSpec]:
        """Gradient temporaries freed within the backward pass of a layer."""
        n, h, f, t = self.tokens, self.model.hidden_size, self.model.ffn_hidden_size, self.tp
        return [
            TensorSpec("dgrad_hidden", _round512(n * h * ACT_BYTES), TensorCategory.TEMPORARY),
            TensorSpec("dgrad_ffn", _round512(n * f * ACT_BYTES / t), TensorCategory.TEMPORARY),
            TensorSpec("dgrad_qkv", _round512(3 * n * h * ACT_BYTES / t), TensorCategory.TEMPORARY),
            TensorSpec("wgrad_tmp", _round512(n * h * ACT_BYTES), TensorCategory.TEMPORARY),
        ]

    # ------------------------------------------------------------------ #
    # Embedding / pipeline-boundary activations
    # ------------------------------------------------------------------ #
    def embedding_activation(self) -> TensorSpec:
        """Output of the embedding lookup on the first stage (per micro-batch)."""
        size = _round512(self.tokens * self.model.hidden_size * ACT_BYTES)
        return TensorSpec("embedding_out", size, TensorCategory.ACTIVATION, True)

    def pipeline_recv_buffer(self) -> TensorSpec:
        """P2P activation receive buffer between pipeline stages."""
        size = _round512(self.tokens * self.model.hidden_size * ACT_BYTES)
        return TensorSpec("pp_recv_buffer", size, TensorCategory.COMM_BUFFER)

    def logits_activation(self) -> TensorSpec:
        """fp32 vocabulary logits of one micro-batch on the last stage.

        The LM head projects to the (tensor-parallel sharded) vocabulary and
        the cross-entropy loss keeps the logits in fp32 until the micro-batch's
        backward pass -- by far the largest activation on the last stage, and
        the reason the binding rank of a job is often the final pipeline stage
        once recomputation has shrunk everyone else's activations.
        """
        size = _round512(self.tokens * self.model.vocab_size * 4 / self.tp)
        return TensorSpec("lm_head_logits", size, TensorCategory.ACTIVATION, True)

    # ------------------------------------------------------------------ #
    # Generation: KV caches and decode-step tensors
    # ------------------------------------------------------------------ #
    def kv_bytes_per_token(self) -> float:
        """Bytes one token of context adds to one layer's KV cache.

        Key and value vectors, tensor-parallel sharded like the attention
        projections: ``2 * hidden / tp`` activation-dtype elements per token.
        """
        return 2 * self.model.hidden_size * ACT_BYTES / self.tp

    def kv_cache_tensor(self, layer: int, context_tokens: int) -> TensorSpec:
        """One layer's KV cache over ``context_tokens`` of per-sequence context.

        Sized ``kv_bytes_per_token * micro_batch_size * context_tokens``:
        allocated at prefill (context = prompt length) and re-allocated larger
        each decode step as the context grows.  Never jittered -- the size is
        a deterministic function of sequence position, which is what lets the
        search planner's KV floor stay exact.
        """
        size = _round512(
            self.kv_bytes_per_token() * self.config.micro_batch_size * context_tokens
        )
        return TensorSpec(f"layer{layer}.kv_cache", size, TensorCategory.KV_CACHE)

    def decode_transient_tensors(self) -> list[TensorSpec]:
        """Workspaces of one decode step over one layer (one token/sequence).

        The decode forward processes ``micro_batch_size`` tokens total, so its
        temporaries are a ``1 / sequence_length`` sliver of the prefill
        transients -- freed within the step that created them.
        """
        b, h, f, t = (
            self.config.micro_batch_size,
            self.model.hidden_size,
            self.model.ffn_hidden_size,
            self.tp,
        )
        return [
            TensorSpec("decode_attn_tmp", _round512(b * h * ACT_BYTES / t), TensorCategory.TEMPORARY),
            TensorSpec("decode_mlp_tmp", _round512(b * f * ACT_BYTES / t), TensorCategory.TEMPORARY),
            TensorSpec("decode_residual_tmp", _round512(b * h * ACT_BYTES), TensorCategory.TEMPORARY),
        ]

    def decode_logits_tensor(self) -> TensorSpec:
        """Next-token fp32 logits of one decode step on the last stage.

        One vocabulary row per sequence (not per context token), sampled and
        freed within the step -- unlike training's ``lm_head_logits`` nothing
        pins it until a backward pass.
        """
        size = _round512(self.config.micro_batch_size * self.model.vocab_size * 4 / self.tp)
        return TensorSpec("decode_logits", size, TensorCategory.TEMPORARY)

    # ------------------------------------------------------------------ #
    # MoE expert tensors (dynamic sizes)
    # ------------------------------------------------------------------ #
    def moe_static_tensors(self) -> list[TensorSpec]:
        """Per-micro-batch MoE tensors whose sizes do not depend on routing."""
        if not self.model.is_moe:
            return []
        n, h, e, k = self.tokens, self.model.hidden_size, self.model.num_experts, self.model.moe_top_k
        specs = [
            TensorSpec("router_logits", _round512(n * e * ACT_BYTES), TensorCategory.ACTIVATION, True),
            TensorSpec("router_probs", _round512(n * k * 4), TensorCategory.ACTIVATION, True),
            TensorSpec("dispatch_perm", _round512(n * k * h * ACT_BYTES), TensorCategory.ACTIVATION, True),
        ]
        if self.model.moe_shared_expert_ffn:
            f = self.model.moe_shared_expert_ffn
            gated = 2 if self.model.gated_mlp else 1
            specs.append(
                TensorSpec(
                    "shared_expert_up",
                    _round512(gated * n * f * ACT_BYTES / self.tp),
                    TensorCategory.ACTIVATION,
                    True,
                )
            )
            specs.append(
                TensorSpec(
                    "shared_expert_out",
                    _round512(n * h * ACT_BYTES),
                    TensorCategory.ACTIVATION,
                    True,
                )
            )
        return specs

    def expert_tensors(self, expert_index: int, expert_tokens: int) -> list[TensorSpec]:
        """Dynamic tensors of one expert given the tokens routed to it."""
        if expert_tokens <= 0:
            return []
        h = self.model.hidden_size
        f = self.model.expert_ffn_hidden_size
        gated = 2 if self.model.gated_mlp else 1
        prefix = f"expert{expert_index}"
        return [
            TensorSpec(f"{prefix}_input", _round512(expert_tokens * h * ACT_BYTES),
                       TensorCategory.EXPERT_ACTIVATION, True),
            TensorSpec(f"{prefix}_up", _round512(gated * expert_tokens * f * ACT_BYTES),
                       TensorCategory.EXPERT_ACTIVATION, True),
            TensorSpec(f"{prefix}_act", _round512(expert_tokens * f * ACT_BYTES),
                       TensorCategory.EXPERT_ACTIVATION, True),
            TensorSpec(f"{prefix}_out", _round512(expert_tokens * h * ACT_BYTES),
                       TensorCategory.EXPERT_ACTIVATION, True),
        ]

    # ------------------------------------------------------------------ #
    # Expert-parallel all-to-all communication transients
    # ------------------------------------------------------------------ #
    def dispatch_send_tokens(self) -> int:
        """Token assignments this EP rank dispatches through the all-to-all.

        The origin side of the all-to-all is routing-independent: the
        micro-batch is sharded evenly over the EP group and every local token
        contributes ``top_k`` assignments, so this is the rank's balanced
        share of the ``tokens * top_k`` routed load.  Summed over the EP
        group it equals the total routed load exactly -- the same invariant
        the receive side satisfies through the global gating draw.
        """
        if not self.model.is_moe:
            return 0
        return balanced_split(self.tokens * self.model.moe_top_k, self.ep)[self.ep_rank]

    def _a2a_buffer(self, tag: str, token_count: int) -> list[TensorSpec]:
        factor = self.config.moe_comm_factor
        if token_count <= 0 or factor <= 0:
            return []
        size = _round512(factor * token_count * self.model.hidden_size * ACT_BYTES)
        return [TensorSpec(tag, size, TensorCategory.COMM_BUFFER)]

    def moe_dispatch_tensors(self, recv_tokens: int) -> list[TensorSpec]:
        """All-to-all staging buffers of one layer's forward dispatch.

        ``a2a_dispatch_send`` holds the activations of the assignments leaving
        this rank (the balanced origin share); ``a2a_dispatch_recv`` holds the
        activations landing on the local experts (``recv_tokens``, the sum of
        the router's local slice -- the load-imbalance-sensitive side).  Both
        are sized ``moe_comm_factor`` copies of the routed activations and
        empty when the factor is 0 (the comm-free baseline trace).
        """
        if not self.model.is_moe:
            return []
        return self._a2a_buffer("a2a_dispatch_send", self.dispatch_send_tokens()) + \
            self._a2a_buffer("a2a_dispatch_recv", recv_tokens)

    def moe_combine_tensors(self, recv_tokens: int) -> list[TensorSpec]:
        """All-to-all staging buffers of the backward-facing combine.

        The combine path mirrors dispatch with the directions swapped: the
        expert outputs/gradients of the ``recv_tokens`` processed locally are
        sent back (``a2a_combine_send``), and the rank's balanced origin
        share comes home (``a2a_combine_recv``).  Sizes are therefore
        symmetric to the dispatch pair, so combine conserves the routed load
        across the EP group exactly like dispatch does.
        """
        if not self.model.is_moe:
            return []
        return self._a2a_buffer("a2a_combine_send", recv_tokens) + \
            self._a2a_buffer("a2a_combine_recv", self.dispatch_send_tokens())

    # ------------------------------------------------------------------ #
    # ZeRO / distributed-optimizer communication buffers
    # ------------------------------------------------------------------ #
    def grad_bucket_bytes(self) -> int:
        """Reduce-scatter bucket used during backward under ZeRO."""
        layers = self.parallelism.layers_per_rank(self.model.num_layers)
        layer_params = self.layer_weight_bytes() / self.config.param_dtype_bytes
        bucket_layers = max(1, layers // 4)
        return _round512(layer_params * bucket_layers * self.config.grad_dtype_bytes)

    def param_gather_bytes(self) -> int:
        """All-gather buffer used at the optimizer step under ZeRO."""
        layers = self.parallelism.layers_per_rank(self.model.num_layers)
        layer_params = self.layer_weight_bytes() / self.config.param_dtype_bytes
        bucket_layers = max(1, layers // 4)
        return _round512(layer_params * bucket_layers * self.config.param_dtype_bytes)

    # ------------------------------------------------------------------ #
    # Aggregates used by experiments
    # ------------------------------------------------------------------ #
    def theoretical_persistent_bytes(self) -> int:
        return sum(spec.size for spec in self.persistent_tensors())

    def saved_bytes_per_microbatch(self) -> int:
        """Scoped activation bytes one micro-batch keeps until its backward pass."""
        if self.config.recompute:
            per_layer = sum(s.size for s in self.recompute_checkpoint_tensors())
        elif self.config.offload_activations:
            per_layer = sum(s.size for s in self.recompute_checkpoint_tensors())
        else:
            per_layer = sum(s.size for s in self.saved_activation_tensors())
            if self.model.is_moe:
                per_layer += sum(s.size for s in self.moe_static_tensors())
        layers = self.parallelism.layers_per_rank(self.model.num_layers)
        return per_layer * layers + self.embedding_activation().size
