"""Transformer model architecture descriptions.

Only the quantities that determine memory behaviour are modelled: hidden
sizes, layer counts, attention/FFN shapes, vocabulary size, and -- for
Mixture-of-Experts models -- the expert configuration that makes expert-layer
allocation sizes dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of one transformer language model."""

    name: str
    hidden_size: int
    num_layers: int
    num_attention_heads: int
    ffn_hidden_size: int
    vocab_size: int
    seq_length: int = 4096
    num_query_groups: int | None = None
    gated_mlp: bool = True
    tie_embeddings: bool = True
    # Mixture-of-Experts configuration (None/0 for dense models).
    num_experts: int = 0
    moe_top_k: int = 2
    expert_ffn_hidden_size: int = 0
    moe_shared_expert_ffn: int = 0

    def __post_init__(self) -> None:
        if self.hidden_size <= 0 or self.num_layers <= 0:
            raise ValueError("hidden_size and num_layers must be positive")
        if self.hidden_size % self.num_attention_heads:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"num_attention_heads ({self.num_attention_heads})"
            )
        if self.num_experts and self.expert_ffn_hidden_size <= 0:
            raise ValueError("MoE models must set expert_ffn_hidden_size")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def is_moe(self) -> bool:
        return self.num_experts > 0

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_attention_heads

    @property
    def kv_heads(self) -> int:
        return self.num_query_groups or self.num_attention_heads

    def attention_params(self) -> int:
        """Parameters of one attention block (QKV + output projection)."""
        h = self.hidden_size
        q = h * h
        kv = 2 * h * self.kv_heads * self.head_dim
        out = h * h
        return q + kv + out

    def mlp_params(self) -> int:
        """Parameters of one dense MLP block."""
        h, f = self.hidden_size, self.ffn_hidden_size
        up = (2 if self.gated_mlp else 1) * h * f
        down = f * h
        return up + down

    def expert_params(self) -> int:
        """Parameters of one expert MLP (MoE models only)."""
        if not self.is_moe:
            return 0
        h, f = self.hidden_size, self.expert_ffn_hidden_size
        up = (2 if self.gated_mlp else 1) * h * f
        down = f * h
        return up + down

    def moe_layer_params(self) -> int:
        """Parameters of one MoE layer (router + all experts + shared expert)."""
        if not self.is_moe:
            return 0
        router = self.hidden_size * self.num_experts
        shared = 0
        if self.moe_shared_expert_ffn:
            h, f = self.hidden_size, self.moe_shared_expert_ffn
            shared = (2 if self.gated_mlp else 1) * h * f + f * h
        return router + self.num_experts * self.expert_params() + shared

    def layer_params(self) -> int:
        """Parameters of one transformer layer (attention + MLP/MoE + norms)."""
        norms = 2 * self.hidden_size
        mlp = self.moe_layer_params() if self.is_moe else self.mlp_params()
        return self.attention_params() + mlp + norms

    def embedding_params(self) -> int:
        embeddings = self.vocab_size * self.hidden_size
        if not self.tie_embeddings:
            embeddings *= 2
        return embeddings

    def total_params(self) -> int:
        """Total parameter count of the full (unsharded) model."""
        return self.embedding_params() + self.num_layers * self.layer_params() + self.hidden_size

    def total_params_billions(self) -> float:
        return self.total_params() / 1e9

    def active_params(self) -> int:
        """Parameters used per token (differs from total only for MoE)."""
        if not self.is_moe:
            return self.total_params()
        per_layer = (
            self.attention_params()
            + 2 * self.hidden_size
            + self.hidden_size * self.num_experts
            + self.moe_top_k * self.expert_params()
        )
        if self.moe_shared_expert_ffn:
            h, f = self.hidden_size, self.moe_shared_expert_ffn
            per_layer += (2 if self.gated_mlp else 1) * h * f + f * h
        return self.embedding_params() + self.num_layers * per_layer + self.hidden_size
