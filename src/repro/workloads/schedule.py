"""Pipeline-parallel execution schedules.

The allocation pattern of one rank is driven by the order in which it runs
forward and backward passes of micro-batches (and, under virtual pipelining,
of model chunks).  This module produces that order for:

* ``1F1B`` (PipeDream-flush) -- the default Megatron-LM schedule;
* the interleaved virtual-pipeline schedule, which keeps more micro-batch
  chunks in flight and interleaves their allocations much more aggressively
  (the paper's "V" optimization).

Only the first pipeline stage is scheduled, because it holds the largest
number of in-flight micro-batches and therefore the peak activation memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import PhaseKind
from repro.workloads.parallelism import ParallelismConfig


@dataclass(frozen=True)
class PhaseSpec:
    """One computation phase to be executed by the simulated rank."""

    kind: PhaseKind
    microbatch: int = -1
    chunk: int = 0

    def key(self) -> tuple:
        return (self.kind, self.microbatch, self.chunk)


def one_f_one_b(num_stages: int, num_microbatches: int) -> list[PhaseSpec]:
    """1F1B schedule for pipeline stage 0.

    Stage 0 runs ``min(p, m)`` warm-up forwards, then alternates backward /
    forward in the steady state, then drains the remaining backwards.  The
    peak number of in-flight micro-batches is ``min(p, m)``.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    warmup = min(num_stages, num_microbatches)
    phases: list[PhaseSpec] = []
    for microbatch in range(warmup):
        phases.append(PhaseSpec(PhaseKind.FORWARD, microbatch))
    for index in range(num_microbatches - warmup):
        phases.append(PhaseSpec(PhaseKind.BACKWARD, index))
        phases.append(PhaseSpec(PhaseKind.FORWARD, warmup + index))
    for microbatch in range(max(0, num_microbatches - warmup), num_microbatches):
        phases.append(PhaseSpec(PhaseKind.BACKWARD, microbatch))
    return phases


def interleaved_virtual_pipeline(
    num_stages: int, num_microbatches: int, num_chunks: int
) -> list[PhaseSpec]:
    """Interleaved (virtual pipeline) schedule for stage 0.

    Micro-batches are processed in groups of ``num_stages``; within a group the
    schedule sweeps every virtual chunk before moving on, so activations of
    ``~ num_stages * num_chunks`` (micro-batch, chunk) units are live at the
    warm-up peak and forward/backward phases of different chunks interleave --
    exactly the behaviour that complicates memory reuse in the paper.
    """
    if num_chunks < 2:
        return one_f_one_b(num_stages, num_microbatches)
    units: list[tuple[int, int]] = []  # (microbatch, chunk) in forward order
    group = max(1, num_stages)
    for group_start in range(0, num_microbatches, group):
        group_mbs = range(group_start, min(group_start + group, num_microbatches))
        for chunk in range(num_chunks):
            for microbatch in group_mbs:
                units.append((microbatch, chunk))

    total_units = len(units)
    warmup = min(total_units, num_stages * num_chunks)
    phases: list[PhaseSpec] = []
    for microbatch, chunk in units[:warmup]:
        phases.append(PhaseSpec(PhaseKind.FORWARD, microbatch, chunk))
    # Backwards retire units in the same order their forwards were issued
    # (chunk-major within a group), which matches the interleaved schedule's
    # first-in-first-out drain on stage 0.
    for index in range(total_units - warmup):
        microbatch, chunk = units[index]
        phases.append(PhaseSpec(PhaseKind.BACKWARD, microbatch, chunk))
        fwd_microbatch, fwd_chunk = units[warmup + index]
        phases.append(PhaseSpec(PhaseKind.FORWARD, fwd_microbatch, fwd_chunk))
    for microbatch, chunk in units[max(0, total_units - warmup):]:
        phases.append(PhaseSpec(PhaseKind.BACKWARD, microbatch, chunk))
    return phases


def build_schedule(parallelism: ParallelismConfig, num_microbatches: int) -> list[PhaseSpec]:
    """Forward/backward schedule for stage 0, with INIT and OPTIMIZER bracketing."""
    stages = parallelism.pipeline_parallel
    chunks = parallelism.virtual_pipeline_chunks
    if chunks > 1:
        body = interleaved_virtual_pipeline(stages, num_microbatches, chunks)
    else:
        body = one_f_one_b(stages, num_microbatches)
    return [PhaseSpec(PhaseKind.INIT)] + body + [PhaseSpec(PhaseKind.OPTIMIZER)]


def peak_in_flight_microbatches(parallelism: ParallelismConfig, num_microbatches: int) -> int:
    """Upper bound on concurrently-live (micro-batch, chunk) activation sets."""
    stages = parallelism.pipeline_parallel
    chunks = parallelism.virtual_pipeline_chunks
    return min(num_microbatches * chunks, stages * chunks)
