"""Pipeline-parallel execution schedules.

The allocation pattern of one rank is driven by the order in which it runs
forward and backward passes of micro-batches (and, under virtual pipelining,
of model chunks).  This module produces that order for:

* ``1F1B`` (PipeDream-flush) -- the default Megatron-LM schedule;
* the interleaved virtual-pipeline schedule, which keeps more micro-batch
  chunks in flight and interleaves their allocations much more aggressively
  (the paper's "V" optimization).

Schedules are produced per pipeline rank: stage ``r`` of a ``p``-stage 1F1B
pipeline runs ``min(p - r, m)`` warm-up forwards before entering the steady
state, so earlier stages hold more in-flight micro-batches (and therefore more
activation memory) while the last stage holds exactly one.  This per-stage
asymmetry is what makes job-level simulation (all ranks of a job, not just
rank 0) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import PhaseKind
from repro.workloads.parallelism import ParallelismConfig, normalize_rank


@dataclass(frozen=True)
class PhaseSpec:
    """One computation phase to be executed by the simulated rank."""

    kind: PhaseKind
    microbatch: int = -1
    chunk: int = 0
    #: Decode-step ordinal for :attr:`PhaseKind.DECODE` phases (1-based; 0 for
    #: every other phase kind, so training schedules are unchanged).
    step: int = 0

    def key(self) -> tuple:
        return (self.kind, self.microbatch, self.chunk, self.step)


def one_f_one_b(num_stages: int, num_microbatches: int, rank: int = 0) -> list[PhaseSpec]:
    """1F1B schedule for pipeline stage ``rank``.

    Stage ``r`` runs ``min(p - r, m)`` warm-up forwards, then alternates
    backward / forward in the steady state, then drains the remaining
    backwards.  The peak number of in-flight micro-batches is ``min(p - r, m)``
    -- largest on the first stage, exactly one on the last.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    if not 0 <= rank < num_stages:
        raise ValueError(f"rank must be in [0, {num_stages}), got {rank}")
    warmup = min(num_stages - rank, num_microbatches)
    phases: list[PhaseSpec] = []
    for microbatch in range(warmup):
        phases.append(PhaseSpec(PhaseKind.FORWARD, microbatch))
    for index in range(num_microbatches - warmup):
        phases.append(PhaseSpec(PhaseKind.BACKWARD, index))
        phases.append(PhaseSpec(PhaseKind.FORWARD, warmup + index))
    for microbatch in range(max(0, num_microbatches - warmup), num_microbatches):
        phases.append(PhaseSpec(PhaseKind.BACKWARD, microbatch))
    return phases


def interleaved_virtual_pipeline(
    num_stages: int, num_microbatches: int, num_chunks: int, rank: int = 0
) -> list[PhaseSpec]:
    """Interleaved (virtual pipeline) schedule for stage ``rank``.

    Micro-batches are processed in groups of ``num_stages``; within a group the
    schedule sweeps every virtual chunk before moving on, so activations of
    ``~ (num_stages - rank) * num_chunks`` (micro-batch, chunk) units are live
    at the warm-up peak and forward/backward phases of different chunks
    interleave -- exactly the behaviour that complicates memory reuse in the
    paper.
    """
    if num_chunks < 2:
        return one_f_one_b(num_stages, num_microbatches, rank)
    if not 0 <= rank < num_stages:
        raise ValueError(f"rank must be in [0, {num_stages}), got {rank}")
    units: list[tuple[int, int]] = []  # (microbatch, chunk) in forward order
    group = max(1, num_stages)
    for group_start in range(0, num_microbatches, group):
        group_mbs = range(group_start, min(group_start + group, num_microbatches))
        for chunk in range(num_chunks):
            for microbatch in group_mbs:
                units.append((microbatch, chunk))

    total_units = len(units)
    warmup = min(total_units, (num_stages - rank) * num_chunks)
    phases: list[PhaseSpec] = []
    for microbatch, chunk in units[:warmup]:
        phases.append(PhaseSpec(PhaseKind.FORWARD, microbatch, chunk))
    # Backwards retire units in the same order their forwards were issued
    # (chunk-major within a group), which matches the interleaved schedule's
    # first-in-first-out drain on stage 0.
    for index in range(total_units - warmup):
        microbatch, chunk = units[index]
        phases.append(PhaseSpec(PhaseKind.BACKWARD, microbatch, chunk))
        fwd_microbatch, fwd_chunk = units[warmup + index]
        phases.append(PhaseSpec(PhaseKind.FORWARD, fwd_microbatch, fwd_chunk))
    for microbatch, chunk in units[max(0, total_units - warmup):]:
        phases.append(PhaseSpec(PhaseKind.BACKWARD, microbatch, chunk))
    return phases


def inference_schedule(
    num_stages: int, num_microbatches: int, num_chunks: int = 1, rank: int = 0
) -> list[PhaseSpec]:
    """Forward-only pipeline schedule for stage ``rank`` (no backward phases).

    Every stage runs one forward per (micro-batch, chunk) unit, in the same
    forward issue order as the training schedules -- plain micro-batch order
    for a single chunk, the chunk-major grouped order of the interleaved
    schedule under virtual pipelining.  Nothing is retained for a backward
    pass, so there is no warm-up/steady-state/drain structure.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    if not 0 <= rank < num_stages:
        raise ValueError(f"rank must be in [0, {num_stages}), got {rank}")
    if num_chunks < 2:
        return [PhaseSpec(PhaseKind.FORWARD, mb) for mb in range(num_microbatches)]
    phases: list[PhaseSpec] = []
    group = max(1, num_stages)
    for group_start in range(0, num_microbatches, group):
        group_mbs = range(group_start, min(group_start + group, num_microbatches))
        for chunk in range(num_chunks):
            for microbatch in group_mbs:
                phases.append(PhaseSpec(PhaseKind.FORWARD, microbatch, chunk))
    return phases


def generation_schedule(
    num_stages: int,
    num_microbatches: int,
    num_chunks: int = 1,
    rank: int = 0,
    decode_steps: int = 0,
) -> list[PhaseSpec]:
    """Prefill + autoregressive decode schedule for stage ``rank``.

    One forward (prefill) pass per micro-batch -- exactly the inference
    schedule -- followed by ``decode_steps`` decode sweeps.  Decode runs
    step-major: step ``s`` processes every micro-batch (and chunk) before
    step ``s + 1`` begins, the in-flight batching order of generation servers.
    Every micro-batch's KV cache is therefore still live when the last one
    prefills, and stays live until its final decode step completes.
    """
    if decode_steps < 0:
        raise ValueError(f"decode_steps must be >= 0, got {decode_steps}")
    phases = inference_schedule(num_stages, num_microbatches, num_chunks, rank)
    for step in range(1, decode_steps + 1):
        for microbatch in range(num_microbatches):
            for chunk in range(max(1, num_chunks)):
                phases.append(
                    PhaseSpec(PhaseKind.DECODE, microbatch, chunk, step=step)
                )
    return phases


def build_schedule(
    parallelism: ParallelismConfig,
    num_microbatches: int,
    rank: int = 0,
    *,
    workload_kind: str = "training",
    decode_steps: int = 0,
) -> list[PhaseSpec]:
    """Phase schedule for stage ``rank``, with workload-appropriate bracketing.

    ``rank`` may be a plain pipeline rank or a ``(pp, ep)`` coordinate; the
    schedule depends only on the pipeline position -- expert-parallel peers of
    one stage execute the same phase order and differ only in the token loads
    routed to them within each forward/backward pass.

    Training schedules (the default) are bracketed ``INIT ... OPTIMIZER``
    exactly as before; the forward-only inference and generation schedules
    have no optimizer step, so they carry only the leading ``INIT``.
    """
    pipeline_rank, _ = normalize_rank(rank)
    stages = parallelism.pipeline_parallel
    chunks = parallelism.virtual_pipeline_chunks
    if workload_kind == "inference":
        body = inference_schedule(stages, num_microbatches, chunks, pipeline_rank)
        return [PhaseSpec(PhaseKind.INIT)] + body
    if workload_kind == "generation":
        body = generation_schedule(
            stages, num_microbatches, chunks, pipeline_rank, decode_steps=decode_steps
        )
        return [PhaseSpec(PhaseKind.INIT)] + body
    if chunks > 1:
        body = interleaved_virtual_pipeline(stages, num_microbatches, chunks, pipeline_rank)
    else:
        body = one_f_one_b(stages, num_microbatches, pipeline_rank)
    return [PhaseSpec(PhaseKind.INIT)] + body + [PhaseSpec(PhaseKind.OPTIMIZER)]


def peak_in_flight_microbatches(
    parallelism: ParallelismConfig, num_microbatches: int, rank: int = 0
) -> int:
    """Upper bound on concurrently-live (micro-batch, chunk) activation sets."""
    pipeline_rank, _ = normalize_rank(rank)
    stages = parallelism.pipeline_parallel
    chunks = parallelism.virtual_pipeline_chunks
    return min(num_microbatches * chunks, (stages - pipeline_rank) * chunks)
