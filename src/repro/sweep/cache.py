"""Persistent content-addressed cache for traces, plans and sweep results.

Layout under the cache root (all entries are plain JSON / JSON-lines files)::

    <root>/traces/<config-fingerprint>.jsonl   generated allocation traces
    <root>/plans/<trace+knobs-hash>.json       synthesized STAlloc plans
    <root>/results/<point-hash>.json           finished sweep-point rows

Traces are keyed by :func:`repro.workloads.tracegen.config_fingerprint` (a
hash of everything that determines generation, which is deterministic), plans
by the SHA-256 of the trace content plus the STAlloc pipeline configuration,
and results by the trace fingerprint plus the sweep point's identity.  Because
keys are content addresses, concurrent writers racing on the same entry write
identical bytes; writes go through a temp file + :func:`os.replace` so readers
never observe a partial entry.

The cache is safe to delete at any time -- every entry can be regenerated.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.stalloc import PLAN_FORMAT_VERSION, STAlloc, STAllocConfig
from repro.obs.tracer import counter as _obs_counter
from repro.timeline import TIMELINE_VERSION
from repro.version import __version__
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TRACEGEN_VERSION, TraceGenerator, config_fingerprint
from repro.workloads.training import TrainingConfig

#: Bump to invalidate every cached result row (e.g. when row fields change).
#: Version 2: job-level rows (multi-rank aggregation, binding rank, default
#: throughput columns) and full-precision float serialization.
#: Version 3: expert-parallel rank identity (EP coordinates in the point's
#: rank selection, coordinate-valued binding ranks) and heterogeneous
#: per-rank device budgets in the point payload.
#: Version 4: the ``comm_peak_bytes`` column (all-to-all dispatch/combine
#: transients in the trace) and ``moe_comm_factor`` in the config payload.
#: Version 5: discrete-event timeline timing -- the ``timing`` identity
#: column, the ``iteration_seconds``/``comm_seconds``/``bubble_fraction``/
#: ``mfu`` columns, and ``timing`` in the point payload.
#: Version 6: generation workloads -- the ``workload_kind`` identity column
#: and the ``decode_steps``/``kv_peak_bytes``/``decode_seconds`` columns.
RESULT_FORMAT_VERSION = 6

#: Key under which :meth:`SweepCache.store_result` embeds the writer's result
#: format version inside each stored row (stripped again on load); lets
#: :meth:`SweepCache.prune` identify rows written by an older format even
#: though the file name is an opaque content hash.
_RESULT_VERSION_KEY = "_result_format_version"

#: Minimum age (seconds) before :meth:`SweepCache.prune` reaps a ``.tmp``
#: file.  A young temp file is very likely another worker's *in-flight*
#: atomic write -- deleting it makes that worker's ``os.replace`` fail -- so
#: only temp files old enough to be abandoned leftovers are removed.
_TMP_REAP_SECONDS = 60.0


@dataclass
class CacheStats:
    """Hit/miss counters, per layer, for one :class:`SweepCache` instance."""

    trace_hits: int = 0
    trace_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    evicted_entries: int = 0
    evicted_bytes: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    @property
    def hits(self) -> int:
        return self.trace_hits + self.plan_hits + self.result_hits

    @property
    def misses(self) -> int:
        return self.trace_misses + self.plan_misses + self.result_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk, across all three layers."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` without readers ever seeing partial content."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class SweepCache:
    """On-disk cache shared by the sweep engine and the experiment runner.

    ``max_bytes`` optionally caps the cache size: whenever a store pushes the
    total past the cap, the least-recently-written entries are evicted inline
    (the same LRU policy as :meth:`prune`, minus the stale-version content
    scan) until the cache fits again.  Without it the cache only shrinks when
    ``prune`` is called explicitly.
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.traces_dir = self.root / "traces"
        self.plans_dir = self.root / "plans"
        self.results_dir = self.root / "results"
        for directory in (self.traces_dir, self.plans_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        #: Running size estimate (full scan + bytes written since), so the
        #: per-store cap check does not re-stat every entry; ``None`` until
        #: the first capped store forces a scan.
        self._size_estimate: int | None = None

    def enforce_cap(self) -> None:
        """LRU-evict down to the cap from the *actual* on-disk size.

        Rescans the cache; the hot store path goes through :meth:`_note_store`
        instead, which only rescans when its running estimate crosses the cap.
        """
        if self.max_bytes is None:
            return
        self._size_estimate = self.size_bytes()
        if self._size_estimate > self.max_bytes:
            report = self.prune(self.max_bytes, sweep_stale=False)
            self._size_estimate = report["remaining_bytes"]

    def _note_store(self, nbytes: int) -> None:
        """Account one store against the cap using the running estimate.

        The estimate only ever errs high for this process's own writes
        (overwrites of identical content-addressed entries are counted
        twice), which at worst triggers a harmless early prune; writes from
        concurrent workers are invisible until the next real scan, which the
        sweep engine forces once at the end of every capped sweep.
        """
        if self.max_bytes is None:
            return
        if self._size_estimate is None:
            self._size_estimate = self.size_bytes()
        else:
            self._size_estimate += nbytes
        if self._size_estimate > self.max_bytes:
            report = self.prune(self.max_bytes, sweep_stale=False)
            self._size_estimate = report["remaining_bytes"]

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #
    def trace_path(self, fingerprint: str) -> Path:
        return self.traces_dir / f"{fingerprint}.jsonl"

    def get_trace(
        self,
        config: TrainingConfig,
        *,
        seed: int = 0,
        scale: float = 1.0,
        rank: int = 0,
        ep_rank: int = 0,
    ) -> Trace:
        """Load one rank's trace from disk, generating and storing on miss.

        The fingerprint includes both rank coordinates, so per-(pp, ep)-rank
        traces of one job are cached (and looked up) independently -- a trace
        generated for one coordinate can never satisfy a request for another.
        """
        fingerprint = config_fingerprint(
            config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank
        )
        path = self.trace_path(fingerprint)
        if path.exists():
            try:
                trace = Trace.load(path)
                self.stats.trace_hits += 1
                _obs_counter("cache.hit")
                return trace
            except (ValueError, KeyError, TypeError, json.JSONDecodeError):
                path.unlink(missing_ok=True)  # corrupt entry: fall through to regenerate
        self.stats.trace_misses += 1
        _obs_counter("cache.miss")
        trace = TraceGenerator(
            config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank
        ).generate()
        text = trace.dumps()
        _atomic_write_text(path, text)
        self._note_store(len(text))
        return trace

    # ------------------------------------------------------------------ #
    # STAlloc plans
    # ------------------------------------------------------------------ #
    def plan_key(self, trace: Trace, stalloc_config: STAllocConfig) -> str:
        """Content address: hash of the trace bytes + the pipeline config."""
        payload = json.dumps(
            {
                "format_version": PLAN_FORMAT_VERSION,
                # Plans depend on synthesizer code, and result rows on
                # allocator code; keying on the release version keeps a
                # long-lived cache from serving metrics computed by an older
                # implementation.
                "version": __version__,
                "trace": trace.digest(),
                "config": asdict(stalloc_config),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def plan_path(self, key: str) -> Path:
        return self.plans_dir / f"{key}.json"

    def get_stalloc(self, trace: Trace, stalloc_config: STAllocConfig | None = None) -> STAlloc:
        """Load a planned STAlloc for the trace, running the pipeline on miss."""
        stalloc_config = stalloc_config or STAllocConfig()
        path = self.plan_path(self.plan_key(trace, stalloc_config))
        if path.exists():
            try:
                stalloc = STAlloc.from_json_dict(json.loads(path.read_text(encoding="utf-8")))
                self.stats.plan_hits += 1
                _obs_counter("cache.hit")
                return stalloc
            except (ValueError, KeyError, TypeError, json.JSONDecodeError):
                path.unlink(missing_ok=True)
        self.stats.plan_misses += 1
        _obs_counter("cache.miss")
        stalloc = STAlloc.from_trace(trace, stalloc_config)
        text = json.dumps(stalloc.to_json_dict())
        _atomic_write_text(path, text)
        self._note_store(len(text))
        return stalloc

    # ------------------------------------------------------------------ #
    # Sweep-point results
    # ------------------------------------------------------------------ #
    def result_key(self, trace_fingerprint: str, point_payload: dict) -> str:
        # Timeline rows carry timing columns computed by the discrete-event
        # simulator; a TIMELINE_VERSION bump (changed event model) must
        # invalidate them just like TRACEGEN_VERSION -- which rides inside
        # the trace fingerprint -- invalidates traces.  Analytical rows
        # never touch the simulator, so they keep their keys across bumps
        # ("timing" is absent only in pre-v5 payloads, whose keys the format
        # version already rotated).
        timeline_row = point_payload.get("timing", "timeline") == "timeline"
        payload = json.dumps(
            {
                "format_version": RESULT_FORMAT_VERSION,
                "version": __version__,
                "timeline_version": TIMELINE_VERSION if timeline_row else None,
                "trace": trace_fingerprint,
                "point": point_payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def load_result(self, key: str) -> dict | None:
        path = self.result_path(key)
        if not path.exists():
            self.stats.result_misses += 1
            _obs_counter("cache.miss")
            return None
        try:
            row = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, json.JSONDecodeError):
            path.unlink(missing_ok=True)
            self.stats.result_misses += 1
            _obs_counter("cache.miss")
            return None
        row.pop(_RESULT_VERSION_KEY, None)
        self.stats.result_hits += 1
        _obs_counter("cache.hit")
        return row

    def store_result(self, key: str, row: dict) -> None:
        stored = dict(row)
        stored[_RESULT_VERSION_KEY] = RESULT_FORMAT_VERSION
        text = json.dumps(stored)
        _atomic_write_text(self.result_path(key), text)
        self._note_store(len(text))

    def cache_stats(self) -> dict:
        """This instance's lookup and eviction statistics, as a flat dict.

        Extends :attr:`stats` (per-layer hit/miss counters, eviction totals)
        with the derived overall ``hits`` / ``misses`` / ``hit_rate``, which
        is what the CLI prints and what sweeps report back per worker.
        """
        report = self.stats.as_dict()
        report["hits"] = self.stats.hits
        report["misses"] = self.stats.misses
        report["hit_rate"] = self.stats.hit_rate
        return report

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def size_bytes(self) -> int:
        """Total bytes currently held by the cache (all layers).

        Tolerant of concurrent eviction: entries removed between the
        directory listing and the ``stat`` call simply stop counting.
        """
        total = 0
        for directory in (self.traces_dir, self.plans_dir, self.results_dir):
            for entry in directory.glob("*"):
                try:
                    total += entry.stat().st_size
                except OSError:
                    continue
        return total

    def _is_stale(self, path: Path) -> bool:
        """Whether a cache entry was written by an older format version.

        Keys are opaque content hashes, so staleness is decided from each
        entry's *content*: traces carry the generator version in their
        metadata header, plans their ``format_version``, and result rows the
        version :meth:`store_result` embeds.  Unreadable entries count as
        stale.  Entries keyed by an older version can never be served again
        (the current keys hash the current versions), so sweeping them only
        reclaims dead bytes.
        """
        try:
            if path.parent == self.traces_dir:
                with path.open("r", encoding="utf-8") as handle:
                    header = json.loads(handle.readline())
                return header["metadata"].get("tracegen_version", 0) != TRACEGEN_VERSION
            payload = json.loads(path.read_text(encoding="utf-8"))
            if path.parent == self.plans_dir:
                return payload.get("format_version") != PLAN_FORMAT_VERSION
            return payload.get(_RESULT_VERSION_KEY) != RESULT_FORMAT_VERSION
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            return True

    def prune(self, max_bytes: int | None = None, *, sweep_stale: bool = True) -> dict:
        """Evict stale-version entries, then LRU-evict down to ``max_bytes``.

        The cache otherwise grows without bound: every new configuration,
        rank, knob combination or format bump adds entries and nothing ever
        removes them.  ``prune`` first drops entries written by an older
        trace/plan/result format (unreachable garbage after a version bump),
        then -- when ``max_bytes`` is given -- removes the least recently
        *used* entries (by mtime; readers are served via ``os.replace`` so a
        hit refreshes nothing, making mtime the write/refresh time, which is
        the best available recency signal) until the cache fits.  Returns a
        report dict with the removal counts and byte totals.

        ``sweep_stale=False`` skips the stale-version content scan (which
        reads every entry) and only LRU-evicts -- the cheap mode the inline
        size cap uses on the hot store path.  Half-written ``.tmp`` leftovers
        are still removed.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        stale_removed = 0
        stale_bytes = 0
        now = time.time()
        entries: list[tuple[float, int, Path]] = []  # (mtime, size, path)
        for directory in (self.traces_dir, self.plans_dir, self.results_dir):
            for path in directory.glob("*"):
                if not path.is_file():
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                if path.suffix == ".tmp":
                    # Likely a concurrent worker's in-flight atomic write:
                    # reap only once old enough to be an abandoned leftover,
                    # and never LRU-account it either way.
                    if now - stat.st_mtime >= _TMP_REAP_SECONDS:
                        path.unlink(missing_ok=True)
                        stale_removed += 1
                        stale_bytes += stat.st_size
                    continue
                if sweep_stale and self._is_stale(path):
                    path.unlink(missing_ok=True)
                    stale_removed += 1
                    stale_bytes += stat.st_size
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        lru_removed = 0
        lru_bytes = 0
        remaining = sum(size for _, size, _ in entries)
        if max_bytes is not None:
            entries.sort()  # oldest first
            for _, size, path in entries:
                if remaining <= max_bytes:
                    break
                path.unlink(missing_ok=True)
                remaining -= size
                lru_removed += 1
                lru_bytes += size
        self.stats.evicted_entries += stale_removed + lru_removed
        self.stats.evicted_bytes += stale_bytes + lru_bytes
        if stale_bytes + lru_bytes:
            _obs_counter("cache.evicted_bytes", stale_bytes + lru_bytes)
        return {
            "stale_removed": stale_removed,
            "stale_bytes": stale_bytes,
            "lru_removed": lru_removed,
            "lru_bytes": lru_bytes,
            "remaining_files": len(entries) - lru_removed,
            "remaining_bytes": remaining,
        }
