"""Process-parallel sweep execution.

:func:`run_sweep` executes every point of a :class:`~repro.sweep.spec.SweepSpec`
through the job-level runner (:func:`repro.simulator.runner.run_job`) and
collects one flat result row per point.  A point may cover several pipeline
ranks (``ranks`` in the spec); its row then aggregates the per-rank replays --
job success, max/mean per-rank peak, the binding rank -- and every row carries
the analytical throughput estimates (``tflops_per_gpu``,
``tokens_per_second``) by default.  Execution is:

* **cached** -- with a cache directory, finished rows are served straight from
  the persistent result cache (checked in the parent, so a fully-warm sweep
  never even spawns workers), and cache-missing points still reuse on-disk
  per-rank traces and synthesized plans;
* **parallel** -- cache-missing points fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with ``jobs`` workers;
  ``jobs=1`` is the serial in-process fallback producing identical results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

from repro.obs.tracer import absorb as _obs_absorb
from repro.obs.tracer import counter as _obs_counter
from repro.obs.tracer import span as _obs_span
from repro.obs.tracer import worker_observation, worker_spec
from repro.simulator.runner import NO_CACHE, generate_trace, resolve_job_ranks, run_job
from repro.sweep.cache import SweepCache
from repro.sweep.results import SweepResult
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.workloads.parallelism import normalize_rank, rank_label
from repro.workloads.tracegen import config_fingerprint


class SweepPointError(RuntimeError):
    """One sweep point failed; names the point instead of a bare traceback.

    Raised in place of whatever the job runner threw, so a failure surfacing
    from a worker process identifies *which* point died (row label + trace
    fingerprint) -- the original exception stays attached as ``__cause__`` on
    the serial path and is summarized in the message either way.
    """

    def __init__(self, label: str, fingerprint: str, cause: str):
        super().__init__(
            f"sweep point {label!r} (trace {fingerprint[:12]}) failed: {cause}"
        )
        self.label = label
        self.fingerprint = fingerprint
        self.cause = cause

    def __reduce__(self):
        # Exceptions cross the ProcessPoolExecutor boundary by pickling;
        # the default reduce replays ``cls(*args)`` with the formatted
        # message only, which does not match this constructor.
        return (SweepPointError, (self.label, self.fingerprint, self.cause))


def _int_ranks_label(ranks) -> str:
    """Compact rendering of an int rank tuple: ``0``, ``0-3`` or ``0,2,5``."""
    if len(ranks) == 1:
        return str(ranks[0])
    if list(ranks) == list(range(ranks[0], ranks[-1] + 1)):
        return f"{ranks[0]}-{ranks[-1]}"
    return ",".join(str(rank) for rank in ranks)


def _ranks_label(ranks: tuple) -> str:
    """Compact rendering of a rank selection.

    Int tuples keep the historical forms (``0``, ``0-3``, ``0,2,5``) so rows
    of non-EP sweeps stay identical to earlier releases.  Coordinate tuples
    render as a cross product when they form a full grid (``0-1x ep0-3``) and
    as an explicit ``pp.ep`` list otherwise.
    """
    if not ranks or isinstance(ranks[0], int):
        return _int_ranks_label(ranks)
    pps = sorted({pp for pp, _ in ranks})
    eps = sorted({ep for _, ep in ranks})
    if len(ranks) == len(pps) * len(eps):
        return f"{_int_ranks_label(pps)}xep{_int_ranks_label(eps)}"
    return ",".join(rank_label(rank) for rank in ranks)


def _point_row(point: SweepPoint, job, elapsed: float) -> dict:
    """Flatten one JobRun into the sweep's row format.

    Memory-efficiency and fragmentation report the *binding* rank (the rank
    whose peak decides whether the job fits); ``allocated_gib`` is the job
    peak (max over ranks) and ``allocated_mean_gib`` the class-weighted mean.
    Float metrics are stored at full precision -- rounding is display-only
    (``repro.sweep.results._fmt``) so ``--compare`` diffs real values.
    """
    binding = job.binding_run
    metrics = binding.replay.metrics
    binding_rank = job.binding_rank
    row = {
        "point": point.index,
        "model": point.config.model.name,
        "config": point.row_label,
        "allocator": point.allocator_label,
        "seed": point.seed,
        "scale": point.scale,
        "device": point.device_name,
        "timing": point.timing,
        "workload_kind": point.config.workload_kind,
        "decode_steps": point.config.decode_steps,
        "ranks": _ranks_label(point.ranks),
        "num_ranks": job.num_ranks,
        "unique_ranks": len(job.class_runs),
        "status": "ok" if job.success else "OOM",
        "binding_rank": (
            binding_rank if isinstance(binding_rank, int) else rank_label(binding_rank)
        ),
        "memory_efficiency_pct": 100 * metrics.memory_efficiency,
        "fragmentation_pct": 100 * metrics.fragmentation_ratio,
        "allocated_gib": job.peak_allocated_gib,
        "allocated_mean_gib": job.mean_peak_allocated_gib,
        "reserved_gib": job.peak_reserved_gib,
        "comm_peak_bytes": job.comm_peak_bytes,
        "kv_peak_bytes": job.kv_peak_bytes,
        "events_replayed": sum(run.replay.events_replayed for run in job.class_runs),
        "elapsed_seconds": round(elapsed, 4),
        "cached": False,
        "description": point.config.describe(),
    }
    if job.throughput is not None:
        # "timing" is already in the row's identity block above; the estimate
        # repeats the identical value (run_job validated they agree).
        row.update(job.throughput.row_columns())
    if job.heterogeneous_budgets and job.binding_utilization is not None:
        row["binding_utilization"] = job.binding_utilization
    if not job.success:
        row["oom_ranks"] = [
            rank if isinstance(rank, int) else rank_label(rank) for rank in job.oom_ranks
        ]
        failed = next(run for run in job.class_runs if not run.success)
        row["oom_at_event"] = failed.replay.oom_at_event
    pool_bytes = (
        binding.planning_report.get("static_pool_bytes") if binding.planning_report else None
    )
    if pool_bytes:
        row["static_pool_gib"] = round(pool_bytes / (1 << 30), 3)
    return row


def _as_cached_row(row: dict, point: SweepPoint, elapsed: float) -> dict:
    """Adapt a stored result row to the current sweep.

    The cached row may come from a sweep whose grid ordered this point
    differently, so its ``point`` index (and compute time) must not leak
    through verbatim.  The ``config`` label is rewritten from the current
    point too: the *measurement* is shared between a spec-level budget map
    and the same map swept as a grid axis (their cache payloads are equal on
    purpose), but their row labels differ (``budget_label`` is display
    identity, not measurement identity).
    """
    row = dict(row)
    row["point"] = point.index
    row["config"] = point.row_label
    row["cached"] = True
    row["elapsed_seconds"] = round(elapsed, 4)
    return row


def point_result_key(cache: SweepCache, point: SweepPoint) -> str:
    """Result-cache key of one sweep point (trace fingerprint + point identity).

    The point's rank tuple is part of its cache payload, so single-rank and
    job-level rows for the same configuration never alias each other.
    """
    fingerprint = config_fingerprint(point.config, seed=point.seed, scale=point.scale)
    return cache.result_key(fingerprint, point.cache_payload())


def execute_point(
    point: SweepPoint,
    cache_dir: str | None = None,
    *,
    reuse_results: bool = True,
    cache: SweepCache | None = None,
    traces: dict | None = None,
    cache_max_bytes: int | None = None,
) -> dict:
    """Run one sweep point (the unit of work executed in worker processes).

    ``cache`` optionally supplies an existing :class:`SweepCache` for
    ``cache_dir`` (the serial path shares the orchestrator's instance so its
    hit/miss statistics aggregate); workers construct their own from the dir.
    ``traces`` optionally supplies pre-generated traces by rank (cache-less
    parallel sweeps ship shared traces to workers this way).
    ``cache_max_bytes`` caps a worker-constructed cache (see
    :meth:`SweepCache.prune`); ignored when ``cache`` is supplied.
    """
    started = time.perf_counter()
    fingerprint = config_fingerprint(point.config, seed=point.seed, scale=point.scale)
    with _obs_span("sweep.point", point=point.index, label=point.row_label) as obs_point:
        if cache is None and cache_dir is not None:
            cache = SweepCache(cache_dir, max_bytes=cache_max_bytes)
        result_key = None
        if cache is not None:
            result_key = cache.result_key(fingerprint, point.cache_payload())
            if reuse_results:
                row = cache.load_result(result_key)
                if row is not None:
                    obs_point.set(cached=True)
                    _obs_counter("sweep.rows_done")
                    return _as_cached_row(row, point, time.perf_counter() - started)

        # Run the whole job with the cache threaded explicitly so per-rank
        # traces and synthesized STAlloc plans persist (and their hit/miss
        # counters land on the stats we report) without touching any
        # process-global state.  A sweep without a cache dir must really not
        # cache -- NO_CACHE keeps a globally installed persistent cache from
        # sneaking back in.  jobs=1: the sweep already parallelises across
        # points, so ranks stay in-process.
        point_cache = cache if cache is not None else NO_CACHE
        try:
            job = run_job(
                point.config,
                point.allocator,
                ranks=point.ranks,
                device_name=point.device_name,
                device_capacity_gib=point.device_capacity_gib,
                device_memory_by_rank=dict(point.device_memory_by_rank),
                seed=point.seed,
                scale=point.scale,
                with_throughput=True,
                timing=point.timing,
                stalloc_overrides=dict(point.stalloc_overrides),
                cache=point_cache,
                jobs=1,
                traces=traces,
                fabric=dict(point.fabric),
            )
        except Exception as error:
            raise SweepPointError(
                point.row_label, fingerprint, f"{type(error).__name__}: {error}"
            ) from error
        row = _point_row(point, job, time.perf_counter() - started)
        if cache is not None and result_key is not None:
            cache.store_result(result_key, row)
        _obs_counter("sweep.rows_done")
        return row


def _execute_point_job(payload: tuple) -> tuple[dict, dict, dict | None]:
    """ProcessPoolExecutor.map adapter: (row, worker cache stats, obs delta)."""
    point, cache_dir, reuse_results, traces, cache_max_bytes, obs_spec = payload
    cache = (
        SweepCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir is not None else None
    )
    with worker_observation(obs_spec) as observation:
        row = execute_point(
            point,
            cache_dir,
            reuse_results=reuse_results,
            cache=cache,
            traces=traces,
        )
    return row, cache.stats.as_dict() if cache is not None else {}, observation.delta


def _prewarm_shared_traces(
    pending: list[SweepPoint], cache: SweepCache | None
) -> dict[int, dict]:
    """Generate traces shared by several pending points once, in the parent.

    Concurrent workers for the same configuration would otherwise all miss
    the cache simultaneously and regenerate the identical per-rank traces.
    With a persistent cache the pre-warmed traces are read back from disk by
    the workers; without one they must travel in the task payload (worker
    processes share no memory with the parent on spawn-style start methods),
    so the returned mapping of point index -> {rank: trace} covers every
    pending point whose configuration is shared.
    """
    firsts: dict[str, SweepPoint] = {}
    seen: dict[str, int] = {}
    keys: dict[int, str] = {}
    for point in pending:
        key = config_fingerprint(point.config, seed=point.seed, scale=point.scale)
        keys[point.index] = key
        firsts.setdefault(key, point)
        seen[key] = seen.get(key, 0) + 1
    shipped_by_key: dict[str, dict] = {}
    for key, point in firsts.items():
        if seen[key] < 2:
            continue
        representatives = [cls[0] for cls in resolve_job_ranks(point.config, point.ranks)]
        if cache is not None:
            for rank in representatives:
                pp, ep = normalize_rank(rank)
                cache.get_trace(
                    point.config, seed=point.seed, scale=point.scale, rank=pp, ep_rank=ep
                )
        else:
            shipped_by_key[key] = {
                rank: generate_trace(
                    point.config,
                    seed=point.seed,
                    scale=point.scale,
                    rank=normalize_rank(rank)[0],
                    ep_rank=normalize_rank(rank)[1],
                    cache=NO_CACHE,
                )
                for rank in representatives
            }
    return {
        index: shipped_by_key[key] for index, key in keys.items() if key in shipped_by_key
    }


def _hit_rate_label(stats: dict) -> str:
    """Render an aggregated cache-stats dict as e.g. ``"83% hit"``."""
    hits = stats.get("trace_hits", 0) + stats.get("plan_hits", 0) + stats.get("result_hits", 0)
    misses = (
        stats.get("trace_misses", 0)
        + stats.get("plan_misses", 0)
        + stats.get("result_misses", 0)
    )
    lookups = hits + misses
    return f"{100 * hits / lookups:.0f}% hit" if lookups else "no lookups"


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    reuse_results: bool = True,
    cache_max_bytes: int | None = None,
    progress=None,
) -> SweepResult:
    """Execute every point of ``spec`` and return the collected result rows.

    ``cache_max_bytes`` caps the persistent cache *during* the sweep: every
    store that pushes the cache past the cap LRU-evicts down to it inline
    (see :meth:`SweepCache.prune`), so a long sweep cannot grow the cache
    without bound between explicit ``cache prune`` invocations.

    ``progress`` optionally supplies a
    :class:`~repro.obs.progress.ProgressReporter`; the sweep sets its total
    to the expanded point count and advances it once per finished row.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cache_dir = str(cache_dir) if cache_dir is not None else None
    started = time.perf_counter()
    with _obs_span("sweep.run", spec=spec.name, jobs=jobs) as obs_run:
        points = spec.expand()
        obs_run.set(points=len(points))
        if progress is not None:
            progress.total = len(points)

        rows: dict[int, dict] = {}
        pending: list[SweepPoint] = []
        cache = (
            SweepCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir is not None else None
        )
        if cache is not None and reuse_results:
            # Serve warm rows from the parent so a fully-cached sweep involves
            # no worker processes at all (this makes reruns O(seconds)).
            for point in points:
                lookup_started = time.perf_counter()
                row = cache.load_result(point_result_key(cache, point))
                if row is not None:
                    rows[point.index] = _as_cached_row(
                        row, point, time.perf_counter() - lookup_started
                    )
                    _obs_counter("sweep.rows_done")
                    if progress is not None:
                        progress.update(cache=_hit_rate_label(cache.stats.as_dict()))
                else:
                    pending.append(point)
        else:
            pending = list(points)

        worker_stats: list[dict] = []
        running_stats = cache.stats.as_dict() if cache is not None else {}
        if pending:
            if jobs > 1 and len(pending) > 1:
                shipped = _prewarm_shared_traces(pending, cache)
                obs_spec = worker_spec()
                payloads = [
                    (point, cache_dir, False, shipped.get(point.index), cache_max_bytes, obs_spec)
                    for point in pending
                ]
                with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                    for point, (row, stats, delta) in zip(
                        pending, pool.map(_execute_point_job, payloads)
                    ):
                        rows[point.index] = row
                        worker_stats.append(stats)
                        _obs_absorb(delta)
                        if progress is not None:
                            for key, value in stats.items():
                                running_stats[key] = running_stats.get(key, 0) + value
                            info = (
                                {"cache": _hit_rate_label(running_stats)}
                                if cache is not None
                                else {}
                            )
                            progress.update(**info)
            else:
                for point in pending:
                    rows[point.index] = execute_point(
                        point,
                        cache_dir,
                        reuse_results=False,
                        cache=cache,
                    )
                    if progress is not None:
                        info = (
                            {"cache": _hit_rate_label(cache.stats.as_dict())}
                            if cache is not None
                            else {}
                        )
                        progress.update(**info)

        if cache is not None:
            # Workers enforce the cap after their own stores, but a store in
            # one worker can land after another worker's final eviction pass;
            # one parent-side sweep after the pool drains guarantees the sweep
            # ends at or below the cap.
            cache.enforce_cap()

        cache_stats = cache.stats.as_dict() if cache is not None else {}
        for stats in worker_stats:
            for key, value in stats.items():
                cache_stats[key] = cache_stats.get(key, 0) + value
        cache_stats["cached_rows"] = sum(1 for row in rows.values() if row.get("cached"))
        elapsed = time.perf_counter() - started
        if progress is not None:
            progress.finish()
        return SweepResult(
            spec_name=spec.name,
            rows=[rows[index] for index in sorted(rows)],
            elapsed_seconds=elapsed,
            jobs=jobs,
            cache_dir=cache_dir,
            cache_stats=cache_stats,
        )
