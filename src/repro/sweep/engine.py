"""Process-parallel sweep execution.

:func:`run_sweep` executes every point of a :class:`~repro.sweep.spec.SweepSpec`
through the pure per-run worker (:func:`repro.simulator.runner.run_workload`)
and collects one flat result row per point.  Execution is:

* **cached** -- with a cache directory, finished rows are served straight from
  the persistent result cache (checked in the parent, so a fully-warm sweep
  never even spawns workers), and cache-missing points still reuse on-disk
  traces and synthesized plans;
* **parallel** -- cache-missing points fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with ``jobs`` workers;
  ``jobs=1`` is the serial in-process fallback producing identical results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

from repro.simulator.runner import NO_CACHE, generate_trace, run_workload
from repro.sweep.cache import SweepCache
from repro.sweep.results import SweepResult
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.workloads.tracegen import config_fingerprint


def _point_row(point: SweepPoint, run, elapsed: float) -> dict:
    """Flatten one WorkloadRun into the sweep's row format."""
    replay = run.replay
    metrics = replay.metrics
    row = {
        "point": point.index,
        "model": point.config.model.name,
        "config": point.config.label or point.config.describe(),
        "allocator": point.allocator_label,
        "seed": point.seed,
        "scale": point.scale,
        "device": point.device_name,
        "status": "ok" if replay.success else "OOM",
        "memory_efficiency_pct": round(100 * metrics.memory_efficiency, 1),
        "fragmentation_pct": round(100 * metrics.fragmentation_ratio, 1),
        "allocated_gib": round(metrics.peak_allocated_gib, 3),
        "reserved_gib": round(metrics.peak_reserved_gib, 3),
        "events_replayed": replay.events_replayed,
        "elapsed_seconds": round(elapsed, 4),
        "cached": False,
        "description": point.config.describe(),
    }
    if not replay.success:
        row["oom_at_event"] = replay.oom_at_event
    if run.tflops is not None:
        row["tflops_per_gpu"] = round(run.tflops, 1)
    pool_bytes = run.planning_report.get("static_pool_bytes") if run.planning_report else None
    if pool_bytes:
        row["static_pool_gib"] = round(pool_bytes / (1 << 30), 3)
    return row


def _as_cached_row(row: dict, point: SweepPoint, elapsed: float) -> dict:
    """Adapt a stored result row to the current sweep.

    The cached row may come from a sweep whose grid ordered this point
    differently, so its ``point`` index (and compute time) must not leak
    through verbatim.
    """
    row = dict(row)
    row["point"] = point.index
    row["cached"] = True
    row["elapsed_seconds"] = round(elapsed, 4)
    return row


def point_result_key(
    cache: SweepCache, point: SweepPoint, *, with_throughput: bool = False
) -> str:
    """Result-cache key of one sweep point (trace fingerprint + point identity).

    ``with_throughput`` is part of the key: rows computed without the
    throughput model must not satisfy a ``--with-throughput`` sweep.
    """
    fingerprint = config_fingerprint(point.config, seed=point.seed, scale=point.scale)
    payload = point.cache_payload()
    payload["with_throughput"] = bool(with_throughput)
    return cache.result_key(fingerprint, payload)


def execute_point(
    point: SweepPoint,
    cache_dir: str | None = None,
    *,
    reuse_results: bool = True,
    with_throughput: bool = False,
    cache: SweepCache | None = None,
    trace=None,
) -> dict:
    """Run one sweep point (the unit of work executed in worker processes).

    ``cache`` optionally supplies an existing :class:`SweepCache` for
    ``cache_dir`` (the serial path shares the orchestrator's instance so its
    hit/miss statistics aggregate); workers construct their own from the dir.
    ``trace`` optionally supplies the point's trace directly (cache-less
    parallel sweeps ship shared traces to workers this way).
    """
    started = time.perf_counter()
    if cache is None and cache_dir is not None:
        cache = SweepCache(cache_dir)
    result_key = None
    if cache is not None:
        result_key = point_result_key(cache, point, with_throughput=with_throughput)
        if reuse_results:
            row = cache.load_result(result_key)
            if row is not None:
                return _as_cached_row(row, point, time.perf_counter() - started)

    # Resolve the trace through the runner's in-process memo layered over this
    # point's on-disk cache, then run with the cache threaded explicitly so
    # synthesized STAlloc plans persist (and their hit/miss counters land on
    # the stats we report) without touching any process-global state.  A sweep
    # without a cache dir must really not cache -- NO_CACHE keeps a globally
    # installed persistent cache from sneaking back in.
    point_cache = cache if cache is not None else NO_CACHE
    if trace is None:
        trace = generate_trace(
            point.config, seed=point.seed, scale=point.scale, cache=point_cache
        )
    run = run_workload(
        point.config,
        point.allocator,
        device_name=point.device_name,
        device_capacity_gib=point.device_capacity_gib,
        seed=point.seed,
        scale=point.scale,
        with_throughput=with_throughput,
        trace=trace,
        stalloc_overrides=dict(point.stalloc_overrides),
        cache=point_cache,
    )
    row = _point_row(point, run, time.perf_counter() - started)
    if cache is not None and result_key is not None:
        cache.store_result(result_key, row)
    return row


def _execute_point_job(payload: tuple) -> tuple[dict, dict]:
    """ProcessPoolExecutor.map adapter: returns (row, worker cache stats)."""
    point, cache_dir, reuse_results, with_throughput, trace = payload
    cache = SweepCache(cache_dir) if cache_dir is not None else None
    row = execute_point(
        point,
        cache_dir,
        reuse_results=reuse_results,
        with_throughput=with_throughput,
        cache=cache,
        trace=trace,
    )
    return row, cache.stats.as_dict() if cache is not None else {}


def _prewarm_shared_traces(
    pending: list[SweepPoint], cache: SweepCache | None
) -> dict[int, object]:
    """Generate traces shared by several pending points once, in the parent.

    Concurrent workers for the same configuration would otherwise all miss
    the cache simultaneously and regenerate the identical trace.  With a
    persistent cache the pre-warmed trace is read back from disk by the
    workers; without one it must travel in the task payload (worker processes
    share no memory with the parent on spawn-style start methods), so the
    returned mapping of point index -> trace covers every pending point whose
    configuration is shared.
    """
    firsts: dict[str, SweepPoint] = {}
    seen: dict[str, int] = {}
    keys: dict[int, str] = {}
    for point in pending:
        key = config_fingerprint(point.config, seed=point.seed, scale=point.scale)
        keys[point.index] = key
        firsts.setdefault(key, point)
        seen[key] = seen.get(key, 0) + 1
    shipped_by_key: dict[str, object] = {}
    for key, point in firsts.items():
        if seen[key] < 2:
            continue
        if cache is not None:
            cache.get_trace(point.config, seed=point.seed, scale=point.scale)
        else:
            shipped_by_key[key] = generate_trace(
                point.config, seed=point.seed, scale=point.scale, cache=NO_CACHE
            )
    return {
        index: shipped_by_key[key] for index, key in keys.items() if key in shipped_by_key
    }


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    reuse_results: bool = True,
    with_throughput: bool = False,
) -> SweepResult:
    """Execute every point of ``spec`` and return the collected result rows."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cache_dir = str(cache_dir) if cache_dir is not None else None
    started = time.perf_counter()
    points = spec.expand()

    rows: dict[int, dict] = {}
    pending: list[SweepPoint] = []
    cache = SweepCache(cache_dir) if cache_dir is not None else None
    if cache is not None and reuse_results:
        # Serve warm rows from the parent so a fully-cached sweep involves no
        # worker processes at all (this is what makes reruns O(seconds)).
        for point in points:
            lookup_started = time.perf_counter()
            row = cache.load_result(
                point_result_key(cache, point, with_throughput=with_throughput)
            )
            if row is not None:
                rows[point.index] = _as_cached_row(
                    row, point, time.perf_counter() - lookup_started
                )
            else:
                pending.append(point)
    else:
        pending = list(points)

    worker_stats: list[dict] = []
    if pending:
        if jobs > 1 and len(pending) > 1:
            shipped = _prewarm_shared_traces(pending, cache)
            payloads = [
                (point, cache_dir, False, with_throughput, shipped.get(point.index))
                for point in pending
            ]
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                for point, (row, stats) in zip(pending, pool.map(_execute_point_job, payloads)):
                    rows[point.index] = row
                    worker_stats.append(stats)
        else:
            for point in pending:
                rows[point.index] = execute_point(
                    point,
                    cache_dir,
                    reuse_results=False,
                    with_throughput=with_throughput,
                    cache=cache,
                )

    cache_stats = cache.stats.as_dict() if cache is not None else {}
    for stats in worker_stats:
        for counter, value in stats.items():
            cache_stats[counter] = cache_stats.get(counter, 0) + value
    cache_stats["cached_rows"] = sum(1 for row in rows.values() if row.get("cached"))
    return SweepResult(
        spec_name=spec.name,
        rows=[rows[index] for index in sorted(rows)],
        elapsed_seconds=time.perf_counter() - started,
        jobs=jobs,
        cache_dir=cache_dir,
        cache_stats=cache_stats,
    )
