"""Declarative sweep specifications.

A :class:`SweepSpec` describes a grid of workloads to evaluate: a cartesian
product over :class:`~repro.workloads.training.TrainingConfig` fields (plus
parallelism degrees, model names, optimization presets, seeds and trace
scales), crossed with a list of allocators and -- for the STAlloc variants --
an optional grid of :class:`~repro.core.stalloc.STAllocConfig` ablation knobs.

Specs are plain JSON documents so sweeps can be version-controlled and shared::

    {
      "name": "mbs-vs-recompute",
      "model": "gpt2-345m",
      "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
      "base": {"num_microbatches": 4},
      "grid": {"micro_batch_size": [1, 2, 4], "recompute": [false, true]},
      "allocators": ["torch2.0", "torch2.3", "stalloc"],
      "stalloc_grid": {"enable_fusion": [true, false]},
      "scale": 0.5
    }

:func:`SweepSpec.expand` turns the spec into the ordered list of
:class:`SweepPoint` objects the engine executes.  A few named presets are
registered in :data:`SWEEP_PRESETS` for smoke tests and common studies.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path

from repro.allocators.registry import available_allocators
from repro.core.stalloc import STAllocConfig
from repro.simulator.runner import STALLOC, STALLOC_NO_REUSE, validate_timing
from repro.workloads.models import MODEL_REGISTRY, get_model
from repro.workloads.parallelism import ParallelismConfig, normalize_rank
from repro.workloads.training import OPTIMIZATION_PRESETS, TrainingConfig, preset_config

#: Grid axes that map onto ParallelismConfig fields.
PARALLELISM_AXES = frozenset(f.name for f in dataclass_fields(ParallelismConfig))

#: Grid axes that map onto TrainingConfig fields (model/parallelism/label are
#: built separately; the remaining fields can all be swept directly).
CONFIG_AXES = frozenset(
    f.name for f in dataclass_fields(TrainingConfig)
) - {"model", "parallelism", "label"}

#: Grid axes with special handling during expansion.  ``device_memory_by_rank``
#: sweeps heterogeneous per-rank budget *maps* (each grid value is one
#: ``{rank label: GiB}`` mapping, or null for the uniform device);  ``fabric``
#: sweeps network-fabric override maps (each grid value is one
#: ``{GPUSpec fabric field: value}`` mapping, or null for the device's flat
#: single-tier fabric).
SPECIAL_AXES = frozenset(
    {"model", "preset", "seed", "scale", "device_memory_by_rank", "fabric"}
)

#: GPUSpec fields a ``fabric`` override map may set (see repro.gpu.specs).
FABRIC_FIELDS = frozenset(
    {"gpus_per_node", "intra_node_gbytes_per_sec", "inter_node_gbytes_per_sec"}
)

#: STAlloc ablation knobs accepted in ``stalloc_grid``.
STALLOC_AXES = frozenset(f.name for f in dataclass_fields(STAllocConfig))

#: Allocator names the stalloc knob grid applies to (the runner's variants).
STALLOC_ALLOCATORS = frozenset({STALLOC, STALLOC_NO_REUSE})


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved (configuration, allocator) cell of a sweep grid."""

    index: int
    config: TrainingConfig
    allocator: str
    seed: int = 0
    scale: float = 1.0
    device_name: str = "A800-80GB"
    device_capacity_gib: float | None = None
    #: Ranks this point simulates (job-level aggregation over all of them):
    #: pipeline-rank ints, or ``(pp, ep)`` coordinate pairs for jobs with
    #: expert-parallel asymmetry; ``(0,)`` reproduces the single-rank
    #: behaviour of earlier specs.
    ranks: tuple = (0,)
    #: STAllocConfig overrides, sorted by knob name (hashable + picklable).
    stalloc_overrides: tuple[tuple[str, object], ...] = ()
    #: Heterogeneous per-rank device budgets: ``(rank label, GiB)`` pairs
    #: sorted by label (hashable + picklable); empty means a uniform device.
    device_memory_by_rank: tuple[tuple[str, float], ...] = ()
    #: Timing backend for the throughput columns: the discrete-event
    #: ``"timeline"`` simulator (default) or the closed-form ``"analytical"``
    #: model.
    timing: str = "timeline"
    #: Network-fabric overrides applied onto the device's GPUSpec when timing
    #: this point: sorted ``(field, value)`` pairs over
    #: :data:`FABRIC_FIELDS` (hashable + picklable); empty keeps the device's
    #: flat single-tier fabric.
    fabric: tuple[tuple[str, object], ...] = ()
    #: Row-label bit for a swept ``device_memory_by_rank`` axis (e.g.
    #: ``"mem=0:40"``); empty when budgets were not a grid axis.  Kept off
    #: the config's own label on purpose: the label feeds the trace
    #: fingerprint, and budgets never change trace content -- only the
    #: capacity each replay runs against.
    budget_label: str = ""
    #: Row-label bit for a swept ``fabric`` axis (e.g. ``"fabric=gpn4"``);
    #: empty when the fabric was not a grid axis.  Off the config label for
    #: the same reason as ``budget_label``: fabric shapes timing, never trace
    #: content.
    fabric_label: str = ""

    @property
    def row_label(self) -> str:
        """The ``config`` column of this point's result row."""
        bits = [
            bit
            for bit in (self.config.label, self.budget_label, self.fabric_label)
            if bit
        ]
        return "/".join(bits) or self.config.describe()

    @property
    def allocator_label(self) -> str:
        """Allocator name decorated with any ablation knobs, e.g. ``stalloc[enable_fusion=False]``."""
        if not self.stalloc_overrides:
            return self.allocator
        knobs = ",".join(f"{name}={value}" for name, value in self.stalloc_overrides)
        return f"{self.allocator}[{knobs}]"

    def cache_payload(self) -> dict:
        """JSON-safe identity of this point, used to key the result cache."""
        return {
            "allocator": self.allocator,
            "stalloc_overrides": {name: value for name, value in self.stalloc_overrides},
            "seed": self.seed,
            "scale": self.scale,
            "device_name": self.device_name,
            "device_capacity_gib": self.device_capacity_gib,
            # Part of the key on purpose: a row aggregated over rank 0 only
            # must never satisfy a job-level (all-ranks) sweep or vice versa,
            # and expert-parallel coordinates must never alias pipeline ranks.
            "ranks": [
                rank if isinstance(rank, int) else list(rank) for rank in self.ranks
            ],
            "device_memory_by_rank": {
                label: gib for label, gib in self.device_memory_by_rank
            },
            "timing": self.timing,
            "fabric": {name: value for name, value in self.fabric},
        }


def _valid_rank_entry(rank) -> bool:
    """A ranks-list entry: a non-negative int or a [pp, ep] pair of them."""
    if isinstance(rank, bool):
        return False
    if isinstance(rank, int):
        return rank >= 0
    if isinstance(rank, (list, tuple)) and len(rank) == 2:
        return all(
            isinstance(part, int) and not isinstance(part, bool) and part >= 0
            for part in rank
        )
    return False


def _valid_rank_key(key) -> bool:
    """A device_memory_by_rank key: int, '2' (stage) or '2.1' (coordinate)."""
    if isinstance(key, bool):
        return False
    if isinstance(key, int):
        return key >= 0
    if not isinstance(key, str):
        return False
    parts = key.split(".")
    if len(parts) not in (1, 2):
        return False
    return all(part.isdigit() for part in parts)


def _validate_budget_map(budgets, context: str) -> None:
    """Validate one ``{rank label: GiB}`` device-budget mapping."""
    if not isinstance(budgets, dict):
        raise ValueError(f"{context} must map rank labels to GiB, got {budgets!r}")
    for key, value in budgets.items():
        if not _valid_rank_key(key):
            raise ValueError(
                f"{context} key {key!r} is not a rank (expected an int, '2', or '2.1')"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(
                f"{context}[{key!r}] must be a positive GiB value, got {value!r}"
            )


def _budget_label(budgets: dict | None) -> str:
    """Compact row label of one swept budget map, e.g. ``mem=0:40,1.1:96``."""
    if not budgets:
        return "mem=uniform"
    parts = ",".join(
        f"{key}:{float(value):g}"
        for key, value in sorted(budgets.items(), key=lambda item: str(item[0]))
    )
    return f"mem={parts}"


def _validate_fabric(fabric, context: str) -> None:
    """Validate one ``{GPUSpec fabric field: value}`` override mapping."""
    if not isinstance(fabric, dict):
        raise ValueError(f"{context} must map fabric fields to values, got {fabric!r}")
    for key, value in fabric.items():
        if key not in FABRIC_FIELDS:
            raise ValueError(
                f"{context} key {key!r} is not a fabric field; expected one of "
                f"{sorted(FABRIC_FIELDS)}"
            )
        if key == "gpus_per_node":
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"{context}[{key!r}] must be a non-negative int, got {value!r}"
                )
        elif isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(
                f"{context}[{key!r}] must be a positive bandwidth (GB/s), got {value!r}"
            )


def _fabric_label(fabric: dict | None) -> str:
    """Compact row label of one swept fabric map, e.g. ``fabric=gpn4,intra160``."""
    if not fabric:
        return "fabric=flat"
    short = {
        "gpus_per_node": "gpn",
        "intra_node_gbytes_per_sec": "intra",
        "inter_node_gbytes_per_sec": "inter",
    }
    parts = ",".join(
        f"{short[key]}{fabric[key]:g}" for key in sorted(fabric, key=short.__getitem__)
    )
    return f"fabric={parts}"


@dataclass
class SweepSpec:
    """A declarative grid of TrainingConfig fields x allocators x STAlloc knobs."""

    name: str
    allocators: list[str]
    model: str = "gpt2-345m"
    parallelism: dict = field(default_factory=dict)
    base: dict = field(default_factory=dict)
    grid: dict = field(default_factory=dict)
    stalloc_grid: dict = field(default_factory=dict)
    device_name: str = "A800-80GB"
    device_capacity_gib: float | None = None
    seed: int = 0
    scale: float = 1.0
    #: ``None`` (rank 0 only), ``"all"`` (every rank -- job-level simulation;
    #: for MoE configs with expert asymmetry this is the full deduplicated
    #: (pp, ep) coordinate grid), or an explicit list whose entries are
    #: pipeline ranks (ints) or ``[pp, ep]`` coordinate pairs.
    ranks: object = None
    #: Heterogeneous per-rank device budgets in GiB, e.g.
    #: ``{"0": 40, "3": 96, "1.2": 80}`` -- keys are pipeline ranks (applying
    #: to every EP coordinate of the stage) or exact ``pp.ep`` coordinates;
    #: unlisted ranks use ``device_capacity_gib``/the device default.  Also
    #: available as a *grid axis*: ``"grid": {"device_memory_by_rank":
    #: [{"0": 40}, {"0": 80}]}`` sweeps over whole budget maps (null = the
    #: uniform device), overriding this spec-level value per cell.
    device_memory_by_rank: dict | None = None
    #: Timing backend for the throughput columns: ``"timeline"`` (the
    #: discrete-event simulator, default) or ``"analytical"`` (closed form).
    timing: str = "timeline"
    #: Network-fabric overrides applied onto the device spec when timing every
    #: point, e.g. ``{"gpus_per_node": 8, "inter_node_gbytes_per_sec": 25}``;
    #: ``None`` keeps the device's flat single-tier fabric.  Also available
    #: as a *grid axis*: ``"grid": {"fabric": [null, {...}]}`` sweeps whole
    #: override maps (null = the flat fabric), overriding this spec-level
    #: value per cell.
    fabric: dict | None = None

    def __post_init__(self) -> None:
        if not self.allocators:
            raise ValueError("a sweep needs at least one allocator")
        validate_timing(self.timing)
        if self.ranks is not None:
            if isinstance(self.ranks, str):
                if self.ranks != "all":
                    raise ValueError(
                        f"ranks must be 'all' or a list of ints, got {self.ranks!r}"
                    )
            elif isinstance(self.ranks, (list, tuple)):
                if not self.ranks or not all(_valid_rank_entry(rank) for rank in self.ranks):
                    raise ValueError(
                        "ranks must be a non-empty list of ints >= 0 or [pp, ep] pairs"
                    )
            else:
                raise ValueError(
                    f"ranks must be 'all' or a list of ints, got {self.ranks!r}"
                )
        if self.device_memory_by_rank is not None:
            _validate_budget_map(self.device_memory_by_rank, "device_memory_by_rank")
        if self.fabric is not None:
            _validate_fabric(self.fabric, "fabric")
        known_allocators = set(available_allocators()) | STALLOC_ALLOCATORS
        for allocator in self.allocators:
            if allocator not in known_allocators:
                raise ValueError(
                    f"unknown allocator {allocator!r}; available: "
                    f"{', '.join(sorted(known_allocators))}"
                )
        for axis, values in self.grid.items():
            if axis not in CONFIG_AXES and axis not in PARALLELISM_AXES and axis not in SPECIAL_AXES:
                raise ValueError(
                    f"unknown grid axis {axis!r}; expected a TrainingConfig field, a "
                    f"parallelism degree, or one of {sorted(SPECIAL_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid axis {axis!r} must map to a non-empty list")
            if axis == "device_memory_by_rank":
                for index, budgets in enumerate(values):
                    if budgets is None:
                        continue  # null = the uniform device for this cell
                    _validate_budget_map(
                        budgets, f"grid device_memory_by_rank[{index}]"
                    )
            if axis == "fabric":
                for index, fabric in enumerate(values):
                    if fabric is None:
                        continue  # null = the flat fabric for this cell
                    _validate_fabric(fabric, f"grid fabric[{index}]")
        for axis, values in self.stalloc_grid.items():
            if axis not in STALLOC_AXES:
                raise ValueError(
                    f"unknown stalloc_grid axis {axis!r}; expected one of {sorted(STALLOC_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"stalloc_grid axis {axis!r} must map to a non-empty list")
        for key in self.base:
            if key not in CONFIG_AXES:
                raise ValueError(f"unknown base field {key!r}")
        for key in self.parallelism:
            if key not in PARALLELISM_AXES:
                raise ValueError(f"unknown parallelism field {key!r}")
        if "preset" in self.grid:
            for preset in self.grid["preset"]:
                if preset not in OPTIMIZATION_PRESETS:
                    raise ValueError(
                        f"unknown preset {preset!r}; available: {', '.join(OPTIMIZATION_PRESETS)}"
                    )
        for model_name in self.grid.get("model", [self.model]):
            if model_name not in MODEL_REGISTRY:
                raise ValueError(
                    f"unknown model {model_name!r}; available: "
                    f"{', '.join(sorted(MODEL_REGISTRY))}"
                )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Build a spec from a parsed JSON document (``device`` aliases ``device_name``)."""
        data = dict(data)
        if "device" in data:
            data["device_name"] = data.pop("device")
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep spec fields: {', '.join(sorted(unknown))}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "allocators": list(self.allocators),
            "model": self.model,
            "parallelism": dict(self.parallelism),
            "base": dict(self.base),
            "grid": {axis: list(values) for axis, values in self.grid.items()},
            "stalloc_grid": {axis: list(values) for axis, values in self.stalloc_grid.items()},
            "device_name": self.device_name,
            "device_capacity_gib": self.device_capacity_gib,
            "seed": self.seed,
            "scale": self.scale,
            "ranks": list(self.ranks) if isinstance(self.ranks, (list, tuple)) else self.ranks,
            "device_memory_by_rank": (
                dict(self.device_memory_by_rank)
                if self.device_memory_by_rank is not None
                else None
            ),
            "timing": self.timing,
            "fabric": dict(self.fabric) if self.fabric is not None else None,
        }

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        """Number of grid cells the spec expands to (without building configs)."""
        combos = 1
        for values in self.grid.values():
            combos *= len(values)
        stalloc_combos = 1
        for values in self.stalloc_grid.values():
            stalloc_combos *= len(values)
        points = 0
        for allocator in self.allocators:
            points += stalloc_combos if allocator in STALLOC_ALLOCATORS else 1
        return combos * points

    def expand(self) -> list[SweepPoint]:
        """Materialise the grid into the ordered list of sweep points."""
        axes = list(self.grid)
        value_lists = [self.grid[axis] for axis in axes]
        stalloc_axes = sorted(self.stalloc_grid)
        stalloc_combos: list[tuple[tuple[str, object], ...]] = [
            tuple(zip(stalloc_axes, combo))
            for combo in itertools.product(*(self.stalloc_grid[axis] for axis in stalloc_axes))
        ] or [()]

        points: list[SweepPoint] = []
        budget_axis = "device_memory_by_rank" in self.grid
        fabric_axis = "fabric" in self.grid
        for combo in itertools.product(*value_lists):
            assignment = dict(zip(axes, combo))
            seed = assignment.pop("seed", self.seed)
            scale = assignment.pop("scale", self.scale)
            cell_budgets = (
                assignment.pop("device_memory_by_rank")
                if budget_axis
                else self.device_memory_by_rank
            )
            cell_fabric = (
                assignment.pop("fabric") if fabric_axis else self.fabric
            )
            config = self._build_config(assignment)
            ranks = self._resolve_ranks(config)
            budgets = tuple(
                sorted(
                    (str(key), float(value))
                    for key, value in (cell_budgets or {}).items()
                )
            )
            fabric = tuple(sorted((cell_fabric or {}).items()))
            for allocator in self.allocators:
                for overrides in stalloc_combos if allocator in STALLOC_ALLOCATORS else [()]:
                    points.append(
                        SweepPoint(
                            index=len(points),
                            config=config,
                            allocator=allocator,
                            seed=seed,
                            scale=scale,
                            device_name=self.device_name,
                            device_capacity_gib=self.device_capacity_gib,
                            ranks=ranks,
                            stalloc_overrides=overrides,
                            device_memory_by_rank=budgets,
                            timing=self.timing,
                            fabric=fabric,
                            # Swept budget/fabric maps label the row, not
                            # the config: the config label feeds the trace
                            # fingerprint and neither shapes trace content.
                            budget_label=_budget_label(cell_budgets) if budget_axis else "",
                            fabric_label=_fabric_label(cell_fabric) if fabric_axis else "",
                        )
                    )
        return points

    def _resolve_ranks(self, config: TrainingConfig) -> tuple:
        """Concrete rank tuple for one grid cell (``"all"`` needs the config's grid).

        For configs with expert-parallel asymmetry the resolved ranks are
        ``(pp, ep)`` coordinates -- ``"all"`` covers the full (deduplicated at
        execution time) coordinate grid, int entries select every EP
        coordinate of that stage and ``[pp, ep]`` pairs select one
        coordinate.  Symmetric configs keep plain pipeline-rank ints.
        """
        pipeline = config.parallelism.pipeline_parallel
        asymmetric = config.expert_asymmetry
        expert = config.parallelism.expert_parallel if asymmetric else 1
        if self.ranks is None:
            # Single-rank default: one coordinate, never a whole stage.
            return ((0, 0),) if asymmetric else (0,)
        if self.ranks == "all":
            if asymmetric:
                return tuple(
                    (pp, ep) for pp in range(pipeline) for ep in range(expert)
                )
            return tuple(range(pipeline))
        resolved: set = set()
        for entry in self.ranks:
            if isinstance(entry, int):
                if entry >= pipeline:
                    raise ValueError(
                        f"rank {entry} out of range for pipeline_parallel={pipeline} "
                        f"(config {config.describe()!r})"
                    )
                if asymmetric:
                    resolved.update((entry, ep) for ep in range(expert))
                else:
                    resolved.add(entry)
            else:
                pp, ep = normalize_rank(entry)
                if pp >= pipeline:
                    raise ValueError(
                        f"rank {pp} out of range for pipeline_parallel={pipeline} "
                        f"(config {config.describe()!r})"
                    )
                # Bounds come from the layout, not the asymmetry flag: a
                # typo'd ep must fail even while the router is balanced.
                if ep >= config.parallelism.expert_parallel:
                    raise ValueError(
                        f"ep_rank {ep} out of range for expert_parallel="
                        f"{config.parallelism.expert_parallel} "
                        f"(config {config.describe()!r})"
                    )
                if not asymmetric:
                    # EP ranks are interchangeable here; collapse to the stage.
                    resolved.add(pp)
                    continue
                resolved.add((pp, ep))
        return tuple(sorted(resolved))

    def _build_config(self, assignment: dict) -> TrainingConfig:
        """Resolve one grid assignment into a TrainingConfig."""
        assignment = dict(assignment)
        model = get_model(assignment.pop("model", self.model))
        preset = assignment.pop("preset", None)
        # Label every swept axis (parallelism included) so rows stay
        # distinguishable even when only a parallelism degree varies.
        label = _grid_label(preset, assignment)
        parallelism_fields = dict(self.parallelism)
        for axis in list(assignment):
            if axis in PARALLELISM_AXES:
                parallelism_fields[axis] = assignment.pop(axis)
        parallelism = ParallelismConfig(**parallelism_fields)

        config_fields = dict(self.base)
        config_fields.update(assignment)
        if preset is not None:
            config = preset_config(
                model,
                preset,
                parallelism=parallelism,
                micro_batch_size=config_fields.pop("micro_batch_size", 1),
                num_microbatches=config_fields.pop("num_microbatches", 8),
                framework=config_fields.pop("framework", "megatron"),
            )
            if config_fields:
                config = config.with_(**config_fields)
            return config.with_(label=label)
        return TrainingConfig(model=model, parallelism=parallelism, label=label, **config_fields)


def _grid_label(preset: str | None, assignment: dict) -> str:
    """Compact per-point label like ``R/mbs=2`` used in result rows."""
    bits = []
    if preset is not None:
        bits.append(preset)
    short = {
        "micro_batch_size": "mbs",
        "num_microbatches": "m",
        "zero_stage": "zero",
        "tensor_parallel": "tp",
        "pipeline_parallel": "pp",
        "data_parallel": "dp",
        "expert_parallel": "ep",
        "virtual_pipeline_chunks": "vpp",
        "moe_imbalance": "imb",
        "moe_comm_factor": "comm",
        "comm_overlap_factor": "ovl",
        "workload_kind": "kind",
        "decode_steps": "dec",
        "max_new_tokens": "tok",
    }
    for axis in assignment:
        name = short.get(axis, axis)
        value = assignment[axis]
        if isinstance(value, bool):
            if value:
                bits.append(name)
        else:
            bits.append(f"{name}={value}")
    return "/".join(bits)


# ---------------------------------------------------------------------- #
# Named presets
# ---------------------------------------------------------------------- #
#: Ready-made sweep specs: CI smoke tests, the paper's optimization grid, and
#: the STAlloc ablation study.  ``stalloc-repro sweep <name>`` resolves here.
SWEEP_PRESETS: dict[str, dict] = {
    # Tiny grid for smoke tests: 2 x 2 configs x 2 allocators = 8 points.
    "smoke": {
        "name": "smoke",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"num_microbatches": 2},
        "grid": {"micro_batch_size": [1, 2], "recompute": [False, True]},
        "allocators": ["torch2.3", "stalloc"],
        "scale": 0.25,
    },
    # 8 configs x 3 allocators = 24 points; the acceptance-test grid.
    "quick-grid": {
        "name": "quick-grid",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"num_microbatches": 4},
        "grid": {
            "micro_batch_size": [1, 2],
            "recompute": [False, True],
            "zero_stage": [0, 1],
        },
        "allocators": ["torch2.0", "torch2.3", "stalloc"],
        "scale": 0.25,
    },
    # The Figure 8 GPT-2 study as a sweep: 6 presets x 5 allocators = 30 points.
    "fig8-gpt2": {
        "name": "fig8-gpt2",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"num_microbatches": 16},
        "grid": {"preset": ["Naive", "R", "V", "VR", "ZR", "ZOR"], "micro_batch_size": [32]},
        "allocators": ["torch2.0", "gmlake", "torch2.3", "torch_es", "stalloc"],
    },
    # Job-level smoke: every pipeline rank of a PP=4 job is simulated and
    # aggregated into one row per point (binding rank, job peak, throughput).
    "job-smoke": {
        "name": "job-smoke",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"num_microbatches": 4},
        "grid": {"preset": ["Naive", "R"], "micro_batch_size": [4]},
        "allocators": ["torch2.3", "stalloc"],
        "ranks": "all",
        "scale": 0.5,
    },
    # Expert-parallel smoke: a tiny MoE job whose full (pp, ep) grid is
    # simulated at two router-imbalance settings.  At imbalance 0 the EP
    # ranks collapse into their stage's class (2 replays per point); at 0.6
    # every (pp, ep) coordinate routes a different token load and the rows
    # report a coordinate-valued binding rank.  Runs in the CI compare gate.
    "ep-smoke": {
        "name": "ep-smoke",
        "model": "moe-tiny",
        "parallelism": {"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
        "base": {"num_microbatches": 2, "micro_batch_size": 1},
        "grid": {"moe_imbalance": [0.0, 0.6]},
        "allocators": ["torch2.3", "stalloc"],
        "ranks": "all",
    },
    # All-to-all communication smoke: the skewed ep-smoke job with the comm
    # transients toggled on.  At comm=0 the trace is the legacy (comm-free)
    # stream; at comm=1 every layer execution stages a dispatch/combine
    # send+recv pair sized by the routed load, so the binding EP coordinate's
    # peak -- and the comm_peak_bytes column -- must strictly grow.  Runs in
    # the CI compare gate next to ep-smoke.
    "ep-comm-smoke": {
        "name": "ep-comm-smoke",
        "model": "moe-tiny",
        "parallelism": {"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
        "base": {"num_microbatches": 2, "micro_batch_size": 1, "moe_imbalance": 0.6},
        "grid": {"moe_comm_factor": [0.0, 1.0]},
        "allocators": ["torch2.3", "stalloc"],
        "ranks": "all",
    },
    # Timeline smoke: the skewed MoE job with the discrete-event timing model
    # (the default backend) swept over the all-to-all comm factor.  The a2a
    # collectives sit on every rank's critical path, so iteration_seconds and
    # comm_seconds must grow monotonically with the factor while the router
    # skew keeps a coordinate-valued binding rank; runs in the CI compare
    # gate next to ep-comm-smoke.
    "timeline-smoke": {
        "name": "timeline-smoke",
        "model": "moe-tiny",
        "parallelism": {"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
        "base": {"num_microbatches": 2, "micro_batch_size": 1, "moe_imbalance": 0.6},
        "grid": {"moe_comm_factor": [0.0, 0.5, 1.0]},
        "allocators": ["torch2.3"],
        "ranks": "all",
        "timing": "timeline",
    },
    # Hierarchical-fabric smoke: the skewed MoE job timed on a flat device
    # versus a tiered 2-node cluster (4 GPUs/node, NVLink-class intra at 160
    # GB/s, IB-class inter at 25 GB/s), crossed with the comm/compute overlap
    # factor.  The EP groups span nodes under the tiered fabric, so its rows
    # must show strictly larger comm_seconds than the flat rows, while
    # raising the overlap factor must shrink iteration_seconds without
    # touching comm_seconds (overlap hides communication, it does not erase
    # it).  Runs in the CI compare gate next to timeline-smoke.
    "fabric-smoke": {
        "name": "fabric-smoke",
        "model": "moe-tiny",
        "parallelism": {"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
        "base": {
            "num_microbatches": 2,
            "micro_batch_size": 1,
            "moe_imbalance": 0.6,
            "moe_comm_factor": 1.0,
        },
        "grid": {
            "fabric": [
                None,
                {
                    "gpus_per_node": 4,
                    "intra_node_gbytes_per_sec": 160,
                    "inter_node_gbytes_per_sec": 25,
                },
            ],
            "comm_overlap_factor": [0.0, 0.5],
        },
        "allocators": ["torch2.3"],
        "ranks": "all",
        "timing": "timeline",
    },
    # Generation smoke: a forward-only prefill/decode job swept over the
    # decode-step count.  Each decode step re-allocates every micro-batch's
    # per-layer KV cache one token larger, so kv_peak_bytes and the decode
    # share of iteration_seconds must grow strictly with decode_steps while
    # the dec=0 rows stay byte-identical to a pure-inference trace.  This is
    # the sweep that stresses static planning on dynamic allocation; runs in
    # the CI compare gate next to the training smokes.
    "gen-smoke": {
        "name": "gen-smoke",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 2, "data_parallel": 2},
        "base": {
            "num_microbatches": 2,
            "micro_batch_size": 2,
            "workload_kind": "generation",
        },
        "grid": {"decode_steps": [0, 8, 16]},
        "allocators": ["torch2.3", "stalloc"],
        "ranks": "all",
        "scale": 0.25,
        "timing": "timeline",
    },
    # STAlloc ablations (the §9.4 knobs) on a dense and a recompute config.
    "stalloc-ablation": {
        "name": "stalloc-ablation",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"micro_batch_size": 4, "num_microbatches": 4},
        "grid": {"recompute": [False, True]},
        "allocators": ["stalloc"],
        "stalloc_grid": {
            "enable_fusion": [True, False],
            "enable_gap_insertion": [True, False],
            "descending_size_order": [True, False],
        },
        "scale": 0.5,
    },
}


def available_presets() -> list[str]:
    """Names accepted by :func:`load_spec` (besides paths to JSON files)."""
    return sorted(SWEEP_PRESETS)


def load_spec(name_or_path: str | Path) -> SweepSpec:
    """Resolve a preset name or a path to a JSON spec file into a SweepSpec."""
    name = str(name_or_path)
    if name in SWEEP_PRESETS:
        return SweepSpec.from_dict(SWEEP_PRESETS[name])
    path = Path(name_or_path)
    if path.suffix == ".json" or path.exists():
        if not path.exists():
            raise FileNotFoundError(f"sweep spec file not found: {path}")
        return SweepSpec.from_file(path)
    raise ValueError(
        f"unknown sweep preset {name!r} (and no such file); available presets: "
        f"{', '.join(available_presets())}"
    )
