"""Parallel sweep engine with a persistent trace/plan/result cache.

Sweeps evaluate grids of (TrainingConfig x allocator x STAlloc knob)
combinations -- declaratively specified as JSON or picked from named presets
-- across worker processes, memoising generated traces, synthesized STAlloc
plans and finished result rows on disk so repeated sweeps skip regeneration
entirely.  See ``README.md`` ("Sweeps") for the spec format and cache layout.
"""

from repro.sweep.cache import CacheStats, SweepCache
from repro.sweep.engine import execute_point, run_sweep
from repro.sweep.results import SweepResult
from repro.sweep.spec import (
    SWEEP_PRESETS,
    SweepPoint,
    SweepSpec,
    available_presets,
    load_spec,
)

__all__ = [
    "CacheStats",
    "SweepCache",
    "SweepPoint",
    "SweepSpec",
    "SweepResult",
    "SWEEP_PRESETS",
    "available_presets",
    "execute_point",
    "load_spec",
    "run_sweep",
]
