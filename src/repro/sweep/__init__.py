"""Parallel sweep engine with a persistent trace/plan/result cache.

Sweeps evaluate grids of (TrainingConfig x allocator x STAlloc knob)
combinations -- declaratively specified as JSON or picked from named presets
-- across worker processes, memoising generated per-rank traces, synthesized
STAlloc plans and finished result rows on disk so repeated sweeps skip
regeneration entirely.  A sweep point may cover every pipeline rank of its
job (``"ranks": "all"`` -- for MoE jobs with a non-zero router imbalance this
is the full (pipeline, expert-parallel) coordinate grid); its row then
reports job-level aggregates (binding rank, max/mean peak, throughput).
``compare_results`` diffs two results for CI regression gating and
``compare_files`` diffs two saved results files without re-running.  See
``README.md`` ("Sweeps") for the spec format and cache layout.
"""

from repro.sweep.cache import RESULT_FORMAT_VERSION, CacheStats, SweepCache
from repro.sweep.compare import CompareReport, compare_files, compare_results
from repro.sweep.engine import SweepPointError, execute_point, run_sweep
from repro.sweep.results import SweepResult
from repro.sweep.spec import (
    SWEEP_PRESETS,
    SweepPoint,
    SweepSpec,
    available_presets,
    load_spec,
)

__all__ = [
    "CacheStats",
    "CompareReport",
    "RESULT_FORMAT_VERSION",
    "SweepCache",
    "SweepPoint",
    "SweepPointError",
    "SweepSpec",
    "SweepResult",
    "SWEEP_PRESETS",
    "available_presets",
    "compare_files",
    "compare_results",
    "execute_point",
    "load_spec",
    "run_sweep",
]
