"""Sweep result container and JSON/CSV writers."""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class SweepResult:
    """All rows of one executed sweep, plus execution metadata."""

    spec_name: str
    rows: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    jobs: int = 1
    cache_dir: str | None = None
    cache_stats: dict = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        return len(self.rows)

    @property
    def num_cached(self) -> int:
        """Rows served from the persistent result cache."""
        return sum(1 for row in self.rows if row.get("cached"))

    def columns(self) -> list[str]:
        """Union of row keys in first-seen order (rows may differ in fields)."""
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    # ------------------------------------------------------------------ #
    # Output formats
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "num_points": self.num_points,
            "num_cached": self.num_cached,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "cache_stats": self.cache_stats,
            "rows": self.rows,
        }

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8")

    def write_csv(self, path: str | Path) -> None:
        columns = self.columns()
        with Path(path).open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    def write(self, path: str | Path) -> None:
        """Write to ``path``, picking the format from its extension (.json/.csv).

        The extension check is case-insensitive, so ``results.JSON`` (as
        produced by e.g. case-preserving tooling on Windows) works too.
        """
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".json":
            self.write_json(path)
        elif suffix == ".csv":
            self.write_csv(path)
        else:
            raise ValueError(f"unsupported output extension {path.suffix!r}; use .json or .csv")

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        """Rebuild a result from the document :meth:`as_dict` produced."""
        return cls(
            spec_name=payload.get("spec", ""),
            rows=list(payload.get("rows", [])),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            jobs=int(payload.get("jobs", 1)),
            cache_dir=payload.get("cache_dir"),
            cache_stats=dict(payload.get("cache_stats", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Read a results file written by :meth:`write_json` (``--compare`` input)."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "rows" not in payload:
            raise ValueError(f"{path} is not a sweep results file (no 'rows' key)")
        return cls.from_dict(payload)

    def to_text(self, *, max_rows: int | None = None) -> str:
        """Column-aligned plain-text rendering (what the CLI prints)."""
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        lines = [
            f"== sweep {self.spec_name}: {self.num_points} points, "
            f"{self.num_cached} cached, {self.elapsed_seconds:.2f}s with jobs={self.jobs} =="
        ]
        columns = [c for c in self.columns() if c not in ("description",)]
        if shown and columns:
            widths = {
                column: max(len(column), *(len(_fmt(row.get(column, ""))) for row in shown))
                for column in columns
            }
            header = "  ".join(column.ljust(widths[column]) for column in columns)
            lines.append(header)
            lines.append("-" * len(header))
            for row in shown:
                lines.append(
                    "  ".join(_fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
                )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _fmt(value) -> str:
    """Display-only formatting of row values.

    Rounding happens here -- and only here -- so serialized rows keep full
    precision for ``--compare`` diffs.  Non-finite floats get explicit fixed
    labels instead of whatever ``format()`` produces, keeping columns aligned.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value != 0.0 and abs(value) < 5e-4:
            # Sub-rounding magnitudes (e.g. sub-100us allocator overheads)
            # would render as "0.000"; show them in scientific notation so
            # they stay visible without widening every other column.
            return f"{value:.3e}"
        return f"{value:.3f}"
    if value is None:
        return ""
    return str(value)
