"""Regression diffing between two sweep results (``sweep --compare``).

Compares the rows of a freshly-executed sweep against a previously saved
results file -- or, via :func:`compare_files`, two saved results files
against each other without re-running anything -- point by point.  Points are matched on their identity columns
(model, config, allocator, seed, scale, device, ranks, timing) rather than on
the ``point`` index, so reordered or extended grids still line up.  A *regression*
is something that makes the new run strictly worse:

* a point that fit before and OOMs now,
* a job peak (``allocated_gib``) that grew beyond the tolerance,
* reserved memory that grew beyond the tolerance,
* modelled throughput (``tflops_per_gpu``) that dropped beyond the tolerance.

The CLI exits non-zero when any regression is found, which is what makes
``sweep --compare`` usable as a CI gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sweep.results import SweepResult, _fmt

#: Row keys identifying a sweep point across runs (everything that names the
#: measurement, nothing that is measured).  ``timing`` is identity, not a
#: metric: an analytical baseline must never be diffed against a timeline
#: run's numbers -- the backends model different things.
IDENTITY_COLUMNS = (
    "model", "config", "allocator", "seed", "scale", "device", "ranks", "timing",
    "workload_kind",
)

#: Metric columns worth diffing, with the direction in which a change is a
#: regression: +1 means "bigger is worse", -1 means "smaller is worse",
#: 0 means "report the delta but never flag it".
METRIC_DIRECTIONS: dict[str, int] = {
    "allocated_gib": +1,
    "allocated_mean_gib": 0,
    "reserved_gib": +1,
    "comm_peak_bytes": +1,
    "kv_peak_bytes": +1,
    "fragmentation_pct": 0,
    "memory_efficiency_pct": 0,
    "tflops_per_gpu": -1,
    "tokens_per_second": -1,
    "iteration_seconds": +1,
    "comm_seconds": +1,
    "decode_seconds": +1,
    "decode_steps": 0,
    "bubble_fraction": +1,
    "mfu": -1,
    "binding_rank": 0,
    "search_rank": +1,
}


def row_identity(row: dict) -> tuple:
    """Hashable cross-run identity of one result row."""
    return tuple(row.get(column) for column in IDENTITY_COLUMNS)


@dataclass
class PointComparison:
    """Old-vs-new diff of one matched sweep point."""

    identity: tuple
    old_row: dict
    new_row: dict
    #: column -> (old value, new value) for every changed metric.
    deltas: dict[str, tuple] = field(default_factory=dict)
    #: Human-readable reasons this point regressed (empty = no regression).
    regressions: list[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        identity = dict(zip(IDENTITY_COLUMNS, self.identity))
        bits = [str(identity["model"]), str(identity["config"]), str(identity["allocator"])]
        ranks = identity["ranks"]
        if ranks not in (None, "0"):
            bits.append(f"ranks={ranks}")
        return " ".join(bits)


@dataclass
class CompareReport:
    """Every per-point diff plus the points only one side has."""

    comparisons: list[PointComparison] = field(default_factory=list)
    added: list[dict] = field(default_factory=list)
    removed: list[dict] = field(default_factory=list)
    tolerance_pct: float = 0.0

    @property
    def num_matched(self) -> int:
        return len(self.comparisons)

    @property
    def regressions(self) -> list[PointComparison]:
        return [comparison for comparison in self.comparisons if comparison.regressions]

    @property
    def changed(self) -> list[PointComparison]:
        return [comparison for comparison in self.comparisons if comparison.deltas]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    @property
    def baseline_unmatched(self) -> bool:
        """The baseline had rows but none lined up with the current run.

        This happens when the baseline predates a row-schema change (its
        identity columns differ) or targets a different spec; a gate that
        matched nothing has verified nothing and must not pass.
        """
        return self.num_matched == 0 and bool(self.removed)

    @property
    def exit_code(self) -> int:
        return 1 if self.has_regressions or self.baseline_unmatched else 0

    def to_text(self) -> str:
        lines = [
            f"== compare: {self.num_matched} matched points, "
            f"{len(self.changed)} changed, {len(self.regressions)} regressed "
            f"(tolerance {self.tolerance_pct:g}%) =="
        ]
        if self.baseline_unmatched:
            lines.append(
                "!! no baseline point matched the current run "
                "(stale baseline schema or different spec?) -- failing the gate"
            )
        for comparison in self.comparisons:
            if not comparison.deltas:
                continue
            marker = "REGRESSION" if comparison.regressions else "changed"
            lines.append(f"[{marker}] {comparison.label}")
            for column, (old, new) in sorted(comparison.deltas.items()):
                lines.append(f"    {column}: {_fmt(old)} -> {_fmt(new)}")
            for reason in comparison.regressions:
                lines.append(f"    !! {reason}")
        if self.added:
            lines.append(f"{len(self.added)} point(s) only in the new run:")
            for row in self.added:
                lines.append(f"    + {row_identity(row)}")
        if self.removed:
            lines.append(f"{len(self.removed)} point(s) only in the old run:")
            for row in self.removed:
                lines.append(f"    - {row_identity(row)}")
        if not self.changed and not self.added and not self.removed:
            lines.append("no differences")
        return "\n".join(lines)


def _values_differ(old, new, tolerance_pct: float) -> bool:
    if isinstance(old, (int, float)) and isinstance(new, (int, float)) \
            and not isinstance(old, bool) and not isinstance(new, bool):
        if math.isnan(old) and math.isnan(new):
            return False
        if old == new:
            return False
        scale = max(abs(old), abs(new))
        if not math.isfinite(scale):
            return True
        return abs(new - old) > scale * tolerance_pct / 100.0 + 1e-12
    return old != new


def _is_regression(column: str, old, new, tolerance_pct: float) -> bool:
    direction = METRIC_DIRECTIONS.get(column, 0)
    if direction == 0:
        return False
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)) \
            or isinstance(old, bool) or isinstance(new, bool):
        # Mirror _values_differ: booleans are not numerics here -- a
        # boolean-valued metric column must not be diffed as 0/1 arithmetic.
        return False
    return direction * (new - old) > abs(old) * tolerance_pct / 100.0 + 1e-12


def compare_results(
    old: SweepResult | dict,
    new: SweepResult | dict,
    *,
    tolerance_pct: float = 0.0,
) -> CompareReport:
    """Diff two sweep results; see the module docstring for what regresses.

    ``tolerance_pct`` is the relative change (in percent) a metric may move
    before it is reported/flagged; the default of 0 flags any worsening,
    which is the right setting for the deterministic simulator.
    """
    if isinstance(old, dict):
        old = SweepResult.from_dict(old)
    if isinstance(new, dict):
        new = SweepResult.from_dict(new)
    old_rows = {row_identity(row): row for row in old.rows}
    new_rows = {row_identity(row): row for row in new.rows}

    report = CompareReport(tolerance_pct=tolerance_pct)
    report.added = [row for key, row in new_rows.items() if key not in old_rows]
    report.removed = [row for key, row in old_rows.items() if key not in new_rows]

    for key, old_row in old_rows.items():
        new_row = new_rows.get(key)
        if new_row is None:
            continue
        comparison = PointComparison(identity=key, old_row=old_row, new_row=new_row)
        old_status, new_status = old_row.get("status"), new_row.get("status")
        if old_status != new_status:
            comparison.deltas["status"] = (old_status, new_status)
            if old_status == "ok" and new_status != "ok":
                comparison.regressions.append(
                    f"status regressed from {old_status} to {new_status}"
                )
        for column in METRIC_DIRECTIONS:
            old_value, new_value = old_row.get(column), new_row.get(column)
            if old_value is None and new_value is None:
                continue
            # Checked independently: the two scale the tolerance differently
            # (max(|old|,|new|) vs |old|), and a regression just past the
            # changed-threshold must never slip through unrecorded.
            changed = _values_differ(old_value, new_value, tolerance_pct)
            regressed = _is_regression(column, old_value, new_value, tolerance_pct)
            if changed or regressed:
                comparison.deltas[column] = (old_value, new_value)
                if regressed:
                    comparison.regressions.append(
                        f"{column} regressed: {_fmt(old_value)} -> {_fmt(new_value)}"
                    )
        report.comparisons.append(comparison)
    return report


def compare_files(old_path, new_path, *, tolerance_pct: float = 0.0) -> CompareReport:
    """Diff two saved results files without executing any sweep.

    The dual-file form of ``sweep --compare``: both sides are results JSON
    documents previously written by ``--output``, so post-hoc comparisons
    (two CI artifacts, two branches' runs) need no recomputation at all.
    """
    return compare_results(
        SweepResult.load(old_path), SweepResult.load(new_path), tolerance_pct=tolerance_pct
    )
