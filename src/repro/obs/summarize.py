"""Read an obs NDJSON file back into a span tree and a metrics report.

``stalloc-repro obs summarize obs.ndjson`` is the human end of the pipeline:
it validates every line against the version-1 schema (:func:`load_events`
refuses files from unknown writers or with malformed events -- the same
guard CI runs), rebuilds the span hierarchy from (pid, span id, parent)
references, aggregates spans by their name-path, and prints a time breakdown
plus the merged metric totals.

Aggregation is by *path* (the chain of span names from the root), not bare
name: ``tracegen.generate`` under ``sweep.point`` and under ``search`` are
different rows, which is what makes the breakdown answer "where did this
sweep's wall time go".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import validate_event


def load_events(source: str | Path, *, validate: bool = True) -> list[dict]:
    """Parse one NDJSON file into event dicts, validating each line.

    Raises :class:`ValueError` naming the line number of the first malformed
    or version-incompatible line; a file without a ``meta`` header is
    rejected too (nothing stamped its writer's schema version).
    """
    events: list[dict] = []
    with Path(source).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{source}:{number}: not valid JSON: {error}") from None
            if validate:
                try:
                    validate_event(event)
                except ValueError as error:
                    raise ValueError(f"{source}:{number}: {error}") from None
            events.append(event)
    if validate and not any(event.get("type") == "meta" for event in events):
        raise ValueError(f"{source}: no 'meta' header line (not an obs NDJSON file?)")
    return events


@dataclass
class PathStat:
    """Aggregate of every span sharing one name-path."""

    path: tuple[str, ...]
    count: int = 0
    total_seconds: float = 0.0
    child_seconds: float = 0.0

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def self_seconds(self) -> float:
        """Time spent in these spans outside any recorded child span."""
        return max(0.0, self.total_seconds - self.child_seconds)


@dataclass
class ObsSummary:
    """Everything ``obs summarize`` reports, in queryable form."""

    spans: int = 0
    #: Aggregates in depth-first display order (parents before children).
    tree: list[PathStat] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Union of root-span wall intervals: total observed wall seconds.
    wall_seconds: float = 0.0

    def stat(self, *path: str) -> PathStat | None:
        """Aggregate for one exact name-path, e.g. ``stat("sweep.run", "sweep.point")``."""
        for entry in self.tree:
            if entry.path == path:
                return entry
        return None

    def to_text(self) -> str:
        lines = [f"== obs summary: {self.spans} spans, {self.wall_seconds:.3f}s wall =="]
        if self.tree:
            lines.append("span tree (total seconds, count; children indented):")
            width = max(2 * stat.depth + len(stat.name) for stat in self.tree) + 2
            for stat in self.tree:
                label = "  " * stat.depth + stat.name
                lines.append(
                    f"  {label.ljust(width)} {stat.total_seconds:>10.3f}s"
                    f"  x{stat.count:<6d} self {stat.self_seconds:>9.3f}s"
                )
        if self.metrics.counters:
            lines.append("counters:")
            for name in sorted(self.metrics.counters):
                lines.append(f"  {name:40s} {self.metrics.counters[name]:>14,g}")
        if self.metrics.gauges:
            lines.append("gauges:")
            for name in sorted(self.metrics.gauges):
                lines.append(f"  {name:40s} {self.metrics.gauges[name]:>14,g}")
        if self.metrics.histograms:
            lines.append("histograms (count / mean / max):")
            for name in sorted(self.metrics.histograms):
                stat = self.metrics.histograms[name]
                lines.append(
                    f"  {name:40s} {stat.count:>8d} / {stat.mean:,.1f} / {stat.max:,.1f}"
                )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "spans": self.spans,
            "wall_seconds": self.wall_seconds,
            "tree": [
                {
                    "path": list(stat.path),
                    "count": stat.count,
                    "total_seconds": stat.total_seconds,
                    "self_seconds": stat.self_seconds,
                }
                for stat in self.tree
            ],
            "metrics": self.metrics.snapshot(),
        }


def _interval_union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    total = 0.0
    end_cursor = float("-inf")
    for start, end in sorted(intervals):
        if end <= end_cursor:
            continue
        total += end - max(start, end_cursor)
        end_cursor = end
    return total


def summarize_events(events: list[dict]) -> ObsSummary:
    """Aggregate parsed events (see :func:`load_events`) into a summary."""
    summary = ObsSummary()
    spans = [event for event in events if event.get("type") == "span"]
    summary.spans = len(spans)
    for event in events:
        if event.get("type") == "metrics":
            summary.metrics.merge(event)

    # Resolve each span's name-path by chasing parent references.  Span ids
    # are unique per process, so keys are (pid, span); a cross-process parent
    # (worker spans re-parented by Tracer.absorb) names its pid explicitly.
    by_key = {(event["pid"], event["span"]): event for event in spans}
    paths: dict[tuple[int, int], tuple[str, ...]] = {}

    def path_of(key: tuple[int, int]) -> tuple[str, ...]:
        # Iterative with a cycle guard: a corrupt file with a parent loop
        # degrades to treating the repeated span as a root, never recursing.
        chain: list[tuple[int, int]] = []
        walking: set[tuple[int, int]] = set()
        path = ()
        while True:
            known = paths.get(key)
            if known is not None:
                path = known
                break
            chain.append(key)
            walking.add(key)
            event = by_key[key]
            parent_id = event.get("parent")
            parent_key = (event.get("parent_pid", event["pid"]), parent_id)
            if parent_id is None or parent_key not in by_key or parent_key in walking:
                break
            key = parent_key
        for key in reversed(chain):
            path = path + (by_key[key]["name"],)
            paths[key] = path
        return path

    stats: dict[tuple[str, ...], PathStat] = {}
    roots: list[tuple[float, float]] = []
    for event in spans:
        path = path_of((event["pid"], event["span"]))
        stat = stats.get(path)
        if stat is None:
            stat = stats[path] = PathStat(path=path)
        stat.count += 1
        stat.total_seconds += event["dur"]
        if len(path) > 1:
            parent_stat = stats.get(path[:-1])
            if parent_stat is None:
                parent_stat = stats[path[:-1]] = PathStat(path=path[:-1])
            parent_stat.child_seconds += event["dur"]
        else:
            roots.append((event["start"], event["start"] + event["dur"]))

    summary.tree = sorted(stats.values(), key=lambda stat: stat.path)
    summary.wall_seconds = _interval_union_seconds(roots)
    return summary


def summarize_file(source: str | Path, *, validate: bool = True) -> ObsSummary:
    """Load, validate, and aggregate one NDJSON file."""
    return summarize_events(load_events(source, validate=validate))
