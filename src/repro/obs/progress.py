"""Line-mode progress reporting for long-running sweeps and searches.

A :class:`ProgressReporter` renders one continuously rewritten stderr status
line -- rows done / total, percentage, ETA, plus whatever extra fields the
caller supplies (cache hit rate, prune counts).  On a TTY the line rewrites
in place (``\\r``); on a plain pipe (CI logs) it degrades to occasional full
lines so logs stay readable instead of megabytes of carriage returns.

The reporter is deliberately independent of the span tracer: progress is
useful on an interactive sweep even when no ``--obs-out`` sink is recording,
and the CLI's ``--no-progress`` silences it without touching tracing.
"""

from __future__ import annotations

import sys
import time


def _format_eta(seconds: float) -> str:
    if seconds != seconds or seconds == float("inf"):  # NaN / unknown
        return "--:--"
    seconds = max(0, int(seconds))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Incremental ``done/total`` status line with ETA and extra fields."""

    def __init__(
        self,
        total: int,
        *,
        label: str = "sweep",
        stream=None,
        enabled: bool = True,
        min_interval_seconds: float = 0.1,
        clock=time.monotonic,
    ):
        self.total = max(0, int(total))
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        # A zero total silences rendering until the caller sets the real one
        # (the CLI builds the reporter before the sweep grid is expanded).
        self.enabled = enabled
        self.clock = clock
        self.done = 0
        self.info: dict[str, str] = {}
        self._started = clock()
        self._last_render = float("-inf")
        self._last_line_len = 0
        # TTYs get in-place rewrites as often as min_interval allows; pipes
        # get a full line only on meaningful jumps (>= 10% or >= 5s apart).
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._min_interval = min_interval_seconds if self._tty else 5.0
        self._last_pct = -100.0

    def update(self, advance: int = 1, **info) -> None:
        """Advance the done-count and re-render if enough time has passed.

        ``info`` values are short pre-formatted strings appended to the line
        (e.g. ``cache="83% hit"``, ``pruned="mem 4 / bound 12"``); they
        persist until overwritten, so callers only pass what changed.
        """
        self.done += advance
        self.info.update({key: str(value) for key, value in info.items()})
        if not self.enabled or self.total <= 0:
            return
        now = self.clock()
        pct = 100.0 * self.done / self.total
        if (
            now - self._last_render < self._min_interval
            and self.done < self.total
            and (self._tty or pct - self._last_pct < 10.0)
        ):
            return
        self._render(now, final=False)

    def finish(self, summary: str = "") -> None:
        """Render the final state and terminate the status line."""
        if not self.enabled or self.total <= 0:
            return
        if summary:
            self.info["done"] = summary
        self._render(self.clock(), final=True)

    def _render(self, now: float, *, final: bool) -> None:
        elapsed = now - self._started
        pct = 100.0 * self.done / self.total
        bits = [f"{self.label}: {self.done}/{self.total} rows ({pct:.0f}%)"]
        if 0 < self.done < self.total:
            bits.append(f"ETA {_format_eta(elapsed / self.done * (self.total - self.done))}")
        if final:
            bits.append(f"{elapsed:.1f}s")
        bits.extend(f"{key} {value}" for key, value in self.info.items())
        line = " | ".join(bits)
        if self._tty:
            padding = " " * max(0, self._last_line_len - len(line))
            self.stream.write("\r" + line + padding)
            if final:
                self.stream.write("\n")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._last_render = now
        self._last_line_len = len(line)
        self._last_pct = pct
