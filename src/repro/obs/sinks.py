"""Event sinks: NDJSON file, Chrome trace, and in-memory buffer.

Every sink consumes the same flat event dicts the tracer emits.  Three event
types exist (see :func:`validate_event` for the authoritative field lists):

* ``meta``    -- one header line per producing process: schema version
  (:data:`~repro.obs.tracer.OBS_FORMAT_VERSION`), package version, pid, and
  the wall-clock start.  Always the first line an :class:`NDJSONSink` writes,
  so consumers can reject files from an incompatible writer before parsing
  anything else.
* ``span``    -- one finished span: name, per-process span/parent ids, pid,
  nesting depth, epoch ``start`` and ``dur`` seconds, and free-form
  ``attrs``.  Spans absorbed from worker processes may carry ``parent_pid``
  when their parent lives in a different process.
* ``metrics`` -- a :class:`~repro.obs.metrics.MetricsRegistry` snapshot
  (counters / gauges / histograms), flushed when the tracer closes.

The NDJSON sink writes one JSON object per line as events finish -- the
emit-events-as-they-happen form downstream ingestion needs -- while the
Chrome sink buffers until :meth:`~ChromeTraceSink.close` because the trace
container is a single JSON document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.obs.tracer import OBS_FORMAT_VERSION
from repro.timeline.chrome import (
    SECONDS_TO_US,
    process_name_event,
    slice_event,
    thread_name_event,
    trace_container,
)
from repro.version import __version__

#: Required fields per event type (field name -> accepted types).  ``attrs``
#: values are free-form but must be JSON-representable, which the sinks
#: guarantee by construction and :func:`validate_event` re-checks on read.
_SPAN_FIELDS = {
    "name": str,
    "span": int,
    "pid": int,
    "depth": int,
    "start": (int, float),
    "dur": (int, float),
    "attrs": dict,
}
_META_FIELDS = {"obs_format_version": int, "version": str, "pid": int, "started": (int, float)}
_METRICS_FIELDS = {"pid": int, "counters": dict, "gauges": dict, "histograms": dict}


def validate_event(event: dict) -> dict:
    """Check one parsed NDJSON object against the version-1 schema.

    Returns the event unchanged; raises :class:`ValueError` naming the first
    offending field otherwise.  ``meta`` events from a different
    ``obs_format_version`` are rejected here -- the version guard every
    reader shares.
    """
    if not isinstance(event, dict):
        raise ValueError(f"obs event must be a JSON object, got {type(event).__name__}")
    kind = event.get("type")
    if kind == "span":
        required = _SPAN_FIELDS
    elif kind == "meta":
        required = _META_FIELDS
    elif kind == "metrics":
        required = _METRICS_FIELDS
    else:
        raise ValueError(f"unknown obs event type {kind!r}")
    for name, types in required.items():
        if name not in event:
            raise ValueError(f"{kind} event missing required field {name!r}")
        if not isinstance(event[name], types) or isinstance(event[name], bool):
            raise ValueError(
                f"{kind} field {name!r} has wrong type {type(event[name]).__name__}"
            )
    if kind == "meta" and event["obs_format_version"] != OBS_FORMAT_VERSION:
        raise ValueError(
            f"unsupported obs_format_version {event['obs_format_version']!r} "
            f"(this reader understands version {OBS_FORMAT_VERSION})"
        )
    if kind == "span":
        parent = event.get("parent")
        if parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
            raise ValueError(f"span 'parent' must be an int or null, got {parent!r}")
        if event["dur"] < 0:
            raise ValueError(f"span 'dur' must be >= 0, got {event['dur']!r}")
    return event


def meta_event(pid: int, started: float) -> dict:
    return {
        "type": "meta",
        "obs_format_version": OBS_FORMAT_VERSION,
        "version": __version__,
        "pid": pid,
        "started": started,
    }


class BufferSink:
    """Collects events in memory (worker deltas and tests)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class NDJSONSink:
    """Appends one JSON object per line, batching span flushes.

    The header ``meta`` line is written eagerly on construction so even an
    aborted run leaves a parseable, version-stamped file.  Span lines batch
    up to :data:`FLUSH_EVERY` events before one write+flush -- per-span
    ``flush`` syscalls are the dominant tracing cost on short sweeps --
    while ``meta``/``metrics`` lines (rare, and the last thing a run emits)
    flush immediately.  Every flush writes whole lines only, so a
    tail-reader (or a crash) never observes a partial JSON object.
    """

    #: Span lines buffered between flushes (a crash can lose at most these).
    FLUSH_EVERY = 64

    def __init__(self, destination: str | Path | IO[str], *, pid: int, started: float):
        if hasattr(destination, "write"):
            self._handle = destination
            self._owns_handle = False
        else:
            self._handle = Path(destination).open("w", encoding="utf-8")
            self._owns_handle = True
        self._pending: list[str] = []
        self.emit(meta_event(pid, started))

    def emit(self, event: dict) -> None:
        self._pending.append(json.dumps(event, separators=(",", ":")) + "\n")
        if event.get("type") != "span" or len(self._pending) >= self.FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        if self._pending:
            self._handle.write("".join(self._pending))
            self._pending.clear()
            self._handle.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_handle:
            self._handle.close()


class ChromeTraceSink:
    """Buffers spans and writes one Chrome trace-event JSON document on close.

    Reuses the conventions of :mod:`repro.timeline.chrome` (the same dialect
    the simulated-timeline exporter emits), so the *toolchain's own* spans --
    trace generation, cache lookups, replay, plan synthesis, timeline
    pricing, search prunes -- open in Perfetto exactly like a simulated rank
    timeline: one thread row per process, complete ("X") slices, categories
    derived from the span-name prefix (``sweep.point`` -> ``sweep``).
    Timestamps rebase onto the earliest span so the trace starts at zero.
    """

    def __init__(self, destination: str | Path, *, description: str = "stalloc-repro obs"):
        self.destination = destination
        self.description = description
        self._spans: list[dict] = []

    def emit(self, event: dict) -> None:
        if event.get("type") == "span":
            self._spans.append(event)

    def close(self) -> None:
        events: list[dict] = [process_name_event(self.description)]
        pids = []
        for span in self._spans:
            if span["pid"] not in pids:
                pids.append(span["pid"])
        tids = {pid: tid for tid, pid in enumerate(sorted(pids))}
        for pid, tid in sorted(tids.items(), key=lambda item: item[1]):
            label = "main" if tid == 0 else f"worker-{pid}"
            events.append(thread_name_event(f"{label} (pid {pid})", tid=tid))
        base = min((span["start"] for span in self._spans), default=0.0)
        for span in self._spans:
            events.append(
                slice_event(
                    span["name"],
                    span["name"].split(".", 1)[0],
                    (span["start"] - base) * SECONDS_TO_US,
                    span["dur"] * SECONDS_TO_US,
                    tid=tids[span["pid"]],
                    args={**span["attrs"], "pid": span["pid"]},
                )
            )
        payload = trace_container(
            events,
            obs_format_version=OBS_FORMAT_VERSION,
            version=__version__,
            spans=len(self._spans),
        )
        with open(self.destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
