"""Hierarchical span tracer with pluggable sinks.

The tracer is a process-wide singleton installed with :func:`install` (the
CLI does this from ``--obs-out`` / ``--obs-trace``) and queried on every
instrumentation site through module-level helpers:

* :func:`span` -- context manager timing one named unit of work.  Nesting is
  tracked through a :class:`contextvars.ContextVar`, so spans stay correctly
  parented across threads and ``asyncio`` tasks.  When no tracer is
  installed, :func:`span` returns a shared no-op object: the disabled cost is
  one global load, one ``is None`` test, and an attribute-free ``with`` --
  cheap enough to leave permanently in hot paths (guarded by the overhead
  test in ``tests/test_obs.py``).
* :func:`counter` / :func:`gauge` / :func:`observe` -- forward to the
  installed tracer's :class:`~repro.obs.metrics.MetricsRegistry`, no-ops when
  disabled.

Cross-process protocol: orchestrators (the sweep engine) call
:func:`worker_spec` and ship the result to worker processes; each worker
wraps its unit of work in :func:`worker_observation`, which installs a
buffering tracer and returns a serializable delta (span events + metric
snapshot).  The parent folds deltas back with :func:`absorb` -- re-emitting
the worker's span events into its own sinks (re-parented under the parent's
current span, so ``obs summarize`` shows one tree) and merging the metrics.

Span timestamps use ``time.time`` (epoch seconds): unlike ``perf_counter``
it is guaranteed comparable across processes, which is what lets one NDJSON
file interleave parent and worker spans on a single timeline.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time

from repro.obs.metrics import MetricsRegistry

#: Schema version stamped into every NDJSON meta line; bump whenever the
#: event shapes in :mod:`repro.obs.sinks` change incompatibly.
OBS_FORMAT_VERSION = 1

#: (parent span id, depth) of the innermost open span in this context.
_CONTEXT: contextvars.ContextVar[tuple[int, int] | None] = contextvars.ContextVar(
    "obs_span_context", default=None
)

#: The installed tracer (None = observability disabled, the default).
_ACTIVE: "Tracer | None" = None

#: Process-global span id source (thread-safe in CPython).  Module-level
#: rather than per-tracer so ids stay unique within one pid even when a
#: reused pool worker installs a fresh tracer per task -- summaries key
#: spans by (pid, span id).
_SPAN_IDS = itertools.count(1)


class Tracer:
    """Routes finished spans to sinks and metrics to a registry."""

    def __init__(self, sinks=(), *, clock=time.time, metrics: MetricsRegistry | None = None):
        self.sinks = list(sinks)
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pid = os.getpid()

    def next_span_id(self) -> int:
        return next(_SPAN_IDS)

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def absorb(self, delta: dict | None) -> None:
        """Fold one worker's :func:`worker_observation` delta into this tracer.

        Span events re-emit into this tracer's sinks; parentless worker spans
        are re-parented under the caller's currently open span (recording the
        parent's pid alongside, since span ids are only unique per process)
        so summaries show a single tree instead of per-worker islands.
        """
        if not delta:
            return
        context = _CONTEXT.get()
        depth_offset = context[1] + 1 if context else 0
        for event in delta.get("events", ()):
            if event.get("type") == "span" and context:
                if event.get("parent") is None:
                    event = dict(event, parent=context[0], parent_pid=self.pid)
                else:
                    event = dict(event)
                # The whole worker tree nests under the parent's open span,
                # so every span shifts by the same depth offset.
                event["depth"] = event.get("depth", 0) + depth_offset
            self.emit(event)
        metrics = delta.get("metrics")
        if metrics:
            self.metrics.merge(metrics)

    def flush_metrics(self) -> None:
        """Emit the registry's current totals as one ``metrics`` event."""
        if self.metrics:
            self.emit(
                {"type": "metrics", "pid": self.pid, "time": self.clock(), **self.metrics.snapshot()}
            )

    def close(self) -> None:
        self.flush_metrics()
        for sink in self.sinks:
            sink.close()


class _NoopSpan:
    """Shared reentrant no-op: what :func:`span` returns when disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


_NOOP_SPAN = _NoopSpan()


class Span:
    """One live span: times its ``with`` block and emits a ``span`` event."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "depth", "start", "_token")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        tracer = self.tracer
        context = _CONTEXT.get()
        self.parent_id, self.depth = (
            (context[0], context[1] + 1) if context else (None, 0)
        )
        self.span_id = tracer.next_span_id()
        self._token = _CONTEXT.set((self.span_id, self.depth))
        self.start = tracer.clock()
        return self

    def set(self, **attrs):
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb):
        end = self.tracer.clock()
        _CONTEXT.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.tracer.emit(
            {
                "type": "span",
                "name": self.name,
                "span": self.span_id,
                "parent": self.parent_id,
                "pid": self.tracer.pid,
                "depth": self.depth,
                "start": self.start,
                "dur": end - self.start,
                "attrs": self.attrs,
            }
        )
        return False


def span(name: str, **attrs):
    """Time one named unit of work (no-op unless a tracer is installed)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP_SPAN
    return Span(tracer, name, attrs)


def counter(name: str, value: float = 1) -> None:
    """Increment a named counter (no-op unless a tracer is installed)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a named gauge (no-op unless a tracer is installed)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample (no-op unless a tracer is installed)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.observe(name, value)


def is_enabled() -> bool:
    return _ACTIVE is not None


def current_tracer() -> Tracer | None:
    return _ACTIVE


def install(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` process-wide; returns the previously installed one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def shutdown() -> None:
    """Close and uninstall the active tracer (flushes sinks and metrics)."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    if tracer is not None:
        tracer.close()


def absorb(delta: dict | None) -> None:
    """Fold a worker delta into the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.absorb(delta)


def worker_spec() -> dict | None:
    """Serializable marker telling worker processes to observe their work.

    ``None`` when observability is disabled -- workers then skip all setup,
    keeping the disabled path identical to pre-obs behaviour.
    """
    return {"obs_format_version": OBS_FORMAT_VERSION} if _ACTIVE is not None else None


class worker_observation:
    """Context manager worker processes wrap one unit of work in.

    With a falsy ``spec`` it does nothing and :attr:`delta` stays ``None``.
    Otherwise it installs a buffering tracer for the duration of the block
    and leaves the serializable delta -- ``{"events": [...], "metrics"
    {...}}`` -- in :attr:`delta` for the worker to ship back with its result.

    The span context is reset for the block: fork-started pool workers
    inherit the parent's open-span :data:`_CONTEXT`, and without the reset
    the worker's first span would adopt a parent id from another process --
    possibly its own fresh id, producing a self-referencing span.
    """

    def __init__(self, spec: dict | None):
        self.spec = spec
        self.delta: dict | None = None
        self._previous: Tracer | None = None
        self._buffer = None
        self._token = None

    def __enter__(self):
        if self.spec:
            from repro.obs.sinks import BufferSink

            self._buffer = BufferSink()
            self._previous = install(Tracer(sinks=[self._buffer]))
            self._token = _CONTEXT.set(None)
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._buffer is not None:
            _CONTEXT.reset(self._token)
            tracer = current_tracer()
            install(self._previous)
            self.delta = {
                "events": self._buffer.events,
                "metrics": tracer.metrics.snapshot() if tracer and tracer.metrics else {},
            }
        return False
