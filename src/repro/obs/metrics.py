"""Metrics registry: counters, gauges, and summary histograms.

A :class:`MetricsRegistry` is a plain in-process accumulator -- instruments
call :meth:`count` / :meth:`gauge` / :meth:`observe` and the registry keeps
running totals.  Process safety comes from the *delta* protocol rather than
shared memory: each worker process accumulates into its own registry and
serializes a :meth:`snapshot` back with its result, which the orchestrating
process folds in with :meth:`merge`.  Snapshots are additive for counters and
histograms and last-write-wins for gauges, so merging worker deltas in any
order yields the same totals an in-process run would have produced.

Histograms deliberately store summary statistics (count / sum / min / max)
instead of buckets: every metric in this toolchain feeds either the progress
line or the ``obs summarize`` report, both of which print rates and means,
and summary stats merge exactly across processes where bucket boundaries
would have to be pre-agreed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HistogramStat:
    """Mergeable summary statistics of one observed distribution."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }

    def merge(self, other: dict) -> None:
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("total", 0.0))
        self.min = min(self.min, float(other.get("min", float("inf"))))
        self.max = max(self.max, float(other.get("max", float("-inf"))))


class MetricsRegistry:
    """Accumulates named counters, gauges, and histograms for one process."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramStat] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution ``name``."""
        stat = self.histograms.get(name)
        if stat is None:
            stat = self.histograms[name] = HistogramStat()
        stat.observe(value)

    def snapshot(self) -> dict:
        """JSON-safe copy of every metric (the cross-process delta payload)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: stat.as_dict() for name, stat in self.histograms.items()},
        }

    def merge(self, delta: dict) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the delta's value (the
        worker observed it later than this process's own last write).
        """
        for name, value in delta.get("counters", {}).items():
            self.count(name, value)
        self.gauges.update(delta.get("gauges", {}))
        for name, payload in delta.get("histograms", {}).items():
            stat = self.histograms.get(name)
            if stat is None:
                stat = self.histograms[name] = HistogramStat()
            stat.merge(payload)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)
