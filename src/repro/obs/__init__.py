"""repro.obs -- structured tracing, metrics, and progress telemetry.

Zero-dependency observability for the sweep / search / cache / timeline
orchestration layers.  Disabled by default: every instrumentation helper
(:func:`span`, :func:`counter`, ...) collapses to a near-free no-op until a
:class:`Tracer` is installed, so hot paths carry the hooks permanently.

Typical CLI wiring::

    tracer = configure(ndjson_path="obs.ndjson", chrome_path="trace.json")
    try:
        ...  # run sweep / search / timeline
    finally:
        shutdown()   # flush metrics, close sinks

and later ``stalloc-repro obs summarize obs.ndjson``.

Import layering: instrumented modules deep in the dependency graph (trace
generation, replay, the caches) import :mod:`repro.obs.tracer` directly, and
this package eagerly exposes only the dependency-free core (tracer, metrics,
progress).  The sinks and the summarizer -- whose Chrome-trace support pulls
in :mod:`repro.timeline` -- load lazily on first attribute access, so
``import repro.obs`` never re-enters the packages it instruments.
"""

from __future__ import annotations

import importlib
import os
import time

from repro.obs.metrics import HistogramStat, MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.tracer import (
    OBS_FORMAT_VERSION,
    Span,
    Tracer,
    absorb,
    counter,
    current_tracer,
    gauge,
    install,
    is_enabled,
    observe,
    shutdown,
    span,
    worker_observation,
    worker_spec,
)

#: Lazily resolved exports (attribute -> defining module); see module docs.
_LAZY_EXPORTS = {
    "BufferSink": "repro.obs.sinks",
    "ChromeTraceSink": "repro.obs.sinks",
    "NDJSONSink": "repro.obs.sinks",
    "meta_event": "repro.obs.sinks",
    "validate_event": "repro.obs.sinks",
    "ObsSummary": "repro.obs.summarize",
    "PathStat": "repro.obs.summarize",
    "load_events": "repro.obs.summarize",
    "summarize_events": "repro.obs.summarize",
    "summarize_file": "repro.obs.summarize",
}

__all__ = [
    "OBS_FORMAT_VERSION",
    "HistogramStat",
    "MetricsRegistry",
    "ProgressReporter",
    "Span",
    "Tracer",
    "absorb",
    "configure",
    "counter",
    "current_tracer",
    "gauge",
    "install",
    "is_enabled",
    "observe",
    "shutdown",
    "span",
    "worker_observation",
    "worker_spec",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ only fires on misses
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


def configure(*, ndjson_path=None, chrome_path=None) -> Tracer | None:
    """Build and install a tracer for the requested outputs.

    Returns the installed tracer, or ``None`` (and installs nothing) when
    neither path is given -- so CLI call sites can pass their ``--obs-out`` /
    ``--obs-trace`` values straight through.  Callers must pair this with
    :func:`shutdown` to flush sinks.
    """
    from repro.obs.sinks import ChromeTraceSink, NDJSONSink

    sinks = []
    if ndjson_path:
        sinks.append(NDJSONSink(ndjson_path, pid=os.getpid(), started=time.time()))
    if chrome_path:
        sinks.append(ChromeTraceSink(chrome_path))
    if not sinks:
        return None
    tracer = Tracer(sinks=sinks)
    install(tracer)
    return tracer
