"""Search-space definition and candidate enumeration.

A :class:`SearchSpec` is the search-planner counterpart of
:class:`~repro.sweep.spec.SweepSpec`: instead of a user-supplied grid it
derives the parallelism layouts itself from the model's divisibility
constraints and the cluster size.  ``"auto"`` axes enumerate every legal
degree; explicit lists restrict the space.  Enumeration produces ordinary
:class:`~repro.sweep.spec.SweepPoint` objects so the whole sweep machinery
(engine, cache, result rows, compare gate) prices candidates unchanged.

The legality rules, in the order they prune:

* ``num_attention_heads % tp == 0`` -- attention heads shard evenly;
* ``num_layers % pp == 0`` -- pipeline stages get equal layer blocks;
* ``tp * pp <= N`` and ``N % (tp * pp) == 0`` -- the remaining factor of the
  cluster is the data-parallel degree (every device is used);
* ``vpp == 1`` or (``pp > 1`` and ``layers_per_rank % vpp == 0``) -- virtual
  pipeline chunks split a stage's block evenly;
* dense models force ``ep == 1``; MoE models need ``num_experts % ep == 0``
  and ``ep`` dividing the data-parallel degree (EP groups nest inside DP);
* ``global_batch % (mbs * dp) == 0`` with at least one micro-batch -- the
  fixed global batch is what makes throughput comparable across layouts.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path

from repro.allocators.registry import available_allocators
from repro.search.cluster import ClusterSpec
from repro.simulator.runner import validate_timing
from repro.sweep.spec import (
    CONFIG_AXES,
    STALLOC_ALLOCATORS,
    STALLOC_AXES,
    SweepPoint,
)
from repro.workloads.models import MODEL_REGISTRY, get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig

#: TrainingConfig fields the search owns; they cannot appear in ``base``.
_SEARCH_OWNED = frozenset({"micro_batch_size", "num_microbatches", "recompute", "zero_stage"})


def _divisors(value: int, limit: int | None = None) -> list[int]:
    limit = value if limit is None else min(value, limit)
    return [d for d in range(1, limit + 1) if value % d == 0]


def _axis(values, name: str) -> list:
    """Validate one explicit (non-auto) axis list."""
    if not isinstance(values, (list, tuple)) or not values:
        raise ValueError(f"search axis {name!r} must be a non-empty list, got {values!r}")
    return list(values)


@dataclass
class SearchSpec:
    """What to search: a model, a cluster, and the axes of the config space."""

    name: str
    model: str
    cluster: ClusterSpec
    #: Sequences consumed per optimizer step across the whole job -- held
    #: fixed so every candidate does the same work and throughput ranks them.
    global_batch: int
    allocators: list[str]
    micro_batch_sizes: list[int] = field(default_factory=lambda: [1, 2])
    #: ``"auto"`` = every legal degree, or an explicit list to restrict.
    tensor_parallel: object = "auto"
    pipeline_parallel: object = "auto"
    expert_parallel: object = "auto"
    virtual_pipeline_chunks: list[int] = field(default_factory=lambda: [1])
    recompute: list[bool] = field(default_factory=lambda: [False, True])
    zero_stage: list[int] = field(default_factory=lambda: [0])
    #: Fixed TrainingConfig fields applied to every candidate (same contract
    #: as SweepSpec.base, minus the axes the search owns).
    base: dict = field(default_factory=dict)
    #: STAllocConfig ablation knobs crossed into stalloc-family candidates.
    stalloc_grid: dict = field(default_factory=dict)
    seed: int = 0
    scale: float = 1.0
    timing: str = "timeline"

    def __post_init__(self) -> None:
        self.cluster = ClusterSpec.from_dict(self.cluster)
        if self.model not in MODEL_REGISTRY:
            raise ValueError(
                f"unknown model {self.model!r}; available: "
                f"{', '.join(sorted(MODEL_REGISTRY))}"
            )
        if not isinstance(self.global_batch, int) or isinstance(self.global_batch, bool) \
                or self.global_batch < 1:
            raise ValueError(f"global_batch must be a positive int, got {self.global_batch!r}")
        if not self.allocators:
            raise ValueError("a search needs at least one allocator")
        known_allocators = set(available_allocators()) | STALLOC_ALLOCATORS
        for allocator in self.allocators:
            if allocator not in known_allocators:
                raise ValueError(
                    f"unknown allocator {allocator!r}; available: "
                    f"{', '.join(sorted(known_allocators))}"
                )
        validate_timing(self.timing)
        for name in ("tensor_parallel", "pipeline_parallel", "expert_parallel"):
            values = getattr(self, name)
            if values != "auto":
                setattr(self, name, _axis(values, name))
        self.micro_batch_sizes = _axis(self.micro_batch_sizes, "micro_batch_sizes")
        self.virtual_pipeline_chunks = _axis(
            self.virtual_pipeline_chunks, "virtual_pipeline_chunks"
        )
        self.recompute = _axis(self.recompute, "recompute")
        self.zero_stage = _axis(self.zero_stage, "zero_stage")
        for key in self.base:
            if key not in CONFIG_AXES:
                raise ValueError(f"unknown base field {key!r}")
            if key in _SEARCH_OWNED:
                raise ValueError(
                    f"base field {key!r} is a search axis; set it through the axis lists"
                )
        for axis, values in self.stalloc_grid.items():
            if axis not in STALLOC_AXES:
                raise ValueError(
                    f"unknown stalloc_grid axis {axis!r}; expected one of {sorted(STALLOC_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"stalloc_grid axis {axis!r} must map to a non-empty list")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpec":
        data = dict(data)
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown search spec fields: {', '.join(sorted(unknown))}")
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "SearchSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "model": self.model,
            "cluster": self.cluster.to_dict(),
            "global_batch": self.global_batch,
            "allocators": list(self.allocators),
            "micro_batch_sizes": list(self.micro_batch_sizes),
            "tensor_parallel": self._axis_dict("tensor_parallel"),
            "pipeline_parallel": self._axis_dict("pipeline_parallel"),
            "expert_parallel": self._axis_dict("expert_parallel"),
            "virtual_pipeline_chunks": list(self.virtual_pipeline_chunks),
            "recompute": list(self.recompute),
            "zero_stage": list(self.zero_stage),
            "base": dict(self.base),
            "stalloc_grid": {axis: list(values) for axis, values in self.stalloc_grid.items()},
            "seed": self.seed,
            "scale": self.scale,
            "timing": self.timing,
        }

    def _axis_dict(self, name: str):
        values = getattr(self, name)
        return values if values == "auto" else list(values)

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def _layouts(self) -> list[ParallelismConfig]:
        """Every legal (tp, pp, dp, ep, vpp) layout on the cluster."""
        model = get_model(self.model)
        devices = self.cluster.num_devices
        tp_axis = (
            _divisors(model.num_attention_heads, devices)
            if self.tensor_parallel == "auto"
            else self.tensor_parallel
        )
        pp_axis = (
            _divisors(model.num_layers, devices)
            if self.pipeline_parallel == "auto"
            else self.pipeline_parallel
        )
        if model.is_moe:
            ep_axis = (
                _divisors(model.num_experts)
                if self.expert_parallel == "auto"
                else self.expert_parallel
            )
        else:
            ep_axis = [1]

        layouts: list[ParallelismConfig] = []
        for tp, pp in itertools.product(tp_axis, pp_axis):
            if model.num_attention_heads % tp or model.num_layers % pp:
                continue
            slice_size = tp * pp
            if slice_size > devices or devices % slice_size:
                continue
            dp = devices // slice_size
            for ep in ep_axis:
                if ep > 1 and (not model.is_moe or model.num_experts % ep or dp % ep):
                    continue
                layers_per_stage = model.num_layers // pp
                for vpp in self.virtual_pipeline_chunks:
                    if vpp != 1 and (pp <= 1 or layers_per_stage % vpp):
                        continue
                    layouts.append(
                        ParallelismConfig(
                            tensor_parallel=tp,
                            pipeline_parallel=pp,
                            data_parallel=dp,
                            expert_parallel=ep,
                            virtual_pipeline_chunks=vpp,
                        )
                    )
        return layouts

    def _candidate_label(
        self, parallelism: ParallelismConfig, mbs: int, recompute: bool, zero: int
    ) -> str:
        bits = [
            f"tp={parallelism.tensor_parallel}",
            f"pp={parallelism.pipeline_parallel}",
            f"dp={parallelism.data_parallel}",
        ]
        if parallelism.expert_parallel > 1:
            bits.append(f"ep={parallelism.expert_parallel}")
        if parallelism.virtual_pipeline_chunks > 1:
            bits.append(f"vpp={parallelism.virtual_pipeline_chunks}")
        bits.append(f"mbs={mbs}")
        if recompute:
            bits.append("R")
        if zero:
            bits.append(f"zero={zero}")
        return "/".join(bits)

    def _resolve_ranks(self, config: TrainingConfig) -> tuple:
        """Job-level rank coverage, mirroring ``SweepSpec._resolve_ranks("all")``."""
        pipeline = config.parallelism.pipeline_parallel
        if config.expert_asymmetry:
            expert = config.parallelism.expert_parallel
            return tuple((pp, ep) for pp in range(pipeline) for ep in range(expert))
        return tuple(range(pipeline))

    def _candidate_budgets(
        self, parallelism: ParallelismConfig
    ) -> tuple[tuple[str, float], ...]:
        """The cluster budget map restricted to ranks this layout has.

        Budget-map keys address logical ``pp[.ep]`` slots; an entry whose
        stage or EP coordinate does not exist under this candidate's degrees
        is dropped for the candidate (see the cluster module docstring).
        """
        kept = []
        for label, gib in self.cluster.device_memory_by_rank:
            parts = label.split(".")
            pp = int(parts[0])
            if pp >= parallelism.pipeline_parallel:
                continue
            if len(parts) == 2 and int(parts[1]) >= parallelism.expert_parallel:
                continue
            kept.append((label, gib))
        return tuple(kept)

    def enumerate_candidates(self) -> list[SweepPoint]:
        """The full candidate grid as ordered, ready-to-execute sweep points."""
        model = get_model(self.model)
        stalloc_axes = sorted(self.stalloc_grid)
        stalloc_combos: list[tuple[tuple[str, object], ...]] = [
            tuple(zip(stalloc_axes, combo))
            for combo in itertools.product(
                *(self.stalloc_grid[axis] for axis in stalloc_axes)
            )
        ] or [()]

        points: list[SweepPoint] = []
        # Every candidate is timed on the cluster's network fabric: multi-node
        # clusters set gpus_per_node (plus any tier-bandwidth overrides), so
        # tiered all-to-all pricing flows into the throughput ranking.
        fabric = tuple(sorted(self.cluster.fabric.items()))
        for parallelism in self._layouts():
            dp = parallelism.data_parallel
            budgets = self._candidate_budgets(parallelism)
            for mbs, recompute, zero in itertools.product(
                self.micro_batch_sizes, self.recompute, self.zero_stage
            ):
                sequences = mbs * dp
                if self.global_batch % sequences:
                    continue
                num_microbatches = self.global_batch // sequences
                config = TrainingConfig(
                    model=model,
                    parallelism=parallelism,
                    label=self._candidate_label(parallelism, mbs, recompute, zero),
                    micro_batch_size=mbs,
                    num_microbatches=num_microbatches,
                    recompute=recompute,
                    zero_stage=zero,
                    **self.base,
                )
                ranks = self._resolve_ranks(config)
                for allocator in self.allocators:
                    for overrides in (
                        stalloc_combos if allocator in STALLOC_ALLOCATORS else [()]
                    ):
                        points.append(
                            SweepPoint(
                                index=len(points),
                                config=config,
                                allocator=allocator,
                                seed=self.seed,
                                scale=self.scale,
                                device_name=self.cluster.device_name,
                                device_capacity_gib=self.cluster.device_capacity_gib,
                                ranks=ranks,
                                stalloc_overrides=overrides,
                                device_memory_by_rank=budgets,
                                timing=self.timing,
                                fabric=fabric,
                            )
                        )
        return points
