"""Cluster descriptions for the auto-parallelism search planner.

A :class:`ClusterSpec` names the hardware a searched job must fit on: the
device type (one of the testbed accelerators in
:data:`repro.gpu.specs.GPU_SPECS` -- the search needs both the memory budget
and the compute/bandwidth ceilings, so unknown devices are rejected), the
number of devices, and optionally a uniform capacity override or a
heterogeneous per-rank budget map.

The compact string form the CLI accepts is ``<N>x<DEVICE>[@<GiB>]``::

    8xA800-80GB          # 8 devices at the spec's 80 GiB
    8xA800-80GB@40       # same devices capped at 40 GiB each
    4xH200-141GB

Budget maps (different budgets per rank) are only expressible through the
JSON/dict form: ``{"devices": "8xA800-80GB", "device_memory_by_rank":
{"0": 40, "1": 96}}``.  Budget-map keys address *logical* pipeline stages
(``"2"``) or ``pp.ep`` coordinates (``"2.1"``) -- the same addressing sweep
specs use.  Because the search varies the pipeline/expert degrees per
candidate, entries whose stage or coordinate does not exist under a
candidate's layout are simply ignored for that candidate (they address a
logical slot the candidate does not have), rather than invalidating the
candidate.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.gpu.specs import GPU_SPECS, GPUSpec, get_gpu
from repro.simulator.runner import validate_capacity_gib
from repro.sweep.spec import _validate_budget_map

#: ``8xA800-80GB`` / ``8xA800-80GB@40`` -- count, device name, optional GiB.
_CLUSTER_RE = re.compile(r"^(?P<count>\d+)x(?P<device>[^@]+?)(?:@(?P<gib>[0-9.]+))?$")


@dataclass(frozen=True)
class ClusterSpec:
    """The hardware one search targets."""

    device_name: str
    num_devices: int
    #: Uniform per-device budget override in GiB (None = the device spec's).
    device_capacity_gib: float | None = None
    #: Heterogeneous per-rank budgets as sorted ``(rank label, GiB)`` pairs
    #: (hashable); empty means every rank gets the uniform budget.
    device_memory_by_rank: tuple[tuple[str, float], ...] = field(default=())

    def __post_init__(self) -> None:
        get_gpu(self.device_name)  # raises for unknown devices
        if not isinstance(self.num_devices, int) or isinstance(self.num_devices, bool) \
                or self.num_devices < 1:
            raise ValueError(f"num_devices must be a positive int, got {self.num_devices!r}")
        validate_capacity_gib(self.device_capacity_gib)
        if self.device_memory_by_rank:
            _validate_budget_map(dict(self.device_memory_by_rank), "device_memory_by_rank")

    @property
    def gpu(self) -> GPUSpec:
        return GPU_SPECS[self.device_name]

    @property
    def capacity_gib(self) -> float:
        """Per-device budget in GiB the search prunes against (the uniform one)."""
        if self.device_capacity_gib is not None:
            return self.device_capacity_gib
        return float(self.gpu.memory_gib)

    def budget_map(self) -> dict[str, float]:
        return {label: gib for label, gib in self.device_memory_by_rank}

    @property
    def label(self) -> str:
        """The compact ``<N>x<DEVICE>[@<GiB>]`` rendering."""
        text = f"{self.num_devices}x{self.device_name}"
        if self.device_capacity_gib is not None:
            text += f"@{self.device_capacity_gib:g}"
        return text

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: str) -> "ClusterSpec":
        """Parse the compact ``<N>x<DEVICE>[@<GiB>]`` cluster string."""
        match = _CLUSTER_RE.match(text.strip())
        if not match:
            raise ValueError(
                f"cannot parse cluster {text!r}; expected '<N>x<DEVICE>[@<GiB>]' "
                f"like '8xA800-80GB' or '8xA800-80GB@40'"
            )
        capacity = match.group("gib")
        return cls(
            device_name=match.group("device"),
            num_devices=int(match.group("count")),
            device_capacity_gib=float(capacity) if capacity is not None else None,
        )

    @classmethod
    def from_dict(cls, data) -> "ClusterSpec":
        """Build from the JSON forms: a cluster string or a mapping.

        The mapping form accepts ``{"devices": "8xA800-80GB@40"}`` (the
        compact string under a key) plus an optional ``device_memory_by_rank``
        budget map, or the explicit fields ``device_name`` / ``num_devices`` /
        ``device_capacity_gib``.
        """
        if isinstance(data, ClusterSpec):
            return data
        if isinstance(data, str):
            return cls.parse(data)
        if not isinstance(data, dict):
            raise ValueError(f"cluster must be a string or mapping, got {data!r}")
        data = dict(data)
        budgets = data.pop("device_memory_by_rank", None) or {}
        if "devices" in data:
            base = cls.parse(data.pop("devices"))
            if data:
                raise ValueError(
                    f"unknown cluster fields next to 'devices': {', '.join(sorted(data))}"
                )
            device_name = base.device_name
            num_devices = base.num_devices
            capacity = base.device_capacity_gib
        else:
            unknown = set(data) - {"device_name", "num_devices", "device_capacity_gib"}
            if unknown:
                raise ValueError(f"unknown cluster fields: {', '.join(sorted(unknown))}")
            device_name = data.get("device_name", "A800-80GB")
            num_devices = data.get("num_devices", 1)
            capacity = data.get("device_capacity_gib")
        return cls(
            device_name=device_name,
            num_devices=num_devices,
            device_capacity_gib=capacity,
            device_memory_by_rank=tuple(
                sorted((str(key), float(value)) for key, value in budgets.items())
            ),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ClusterSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_dict(self) -> dict:
        return {
            "device_name": self.device_name,
            "num_devices": self.num_devices,
            "device_capacity_gib": self.device_capacity_gib,
            "device_memory_by_rank": self.budget_map(),
        }
