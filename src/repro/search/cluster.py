"""Cluster descriptions for the auto-parallelism search planner.

A :class:`ClusterSpec` names the hardware a searched job must fit on: the
device type (one of the testbed accelerators in
:data:`repro.gpu.specs.GPU_SPECS` -- the search needs both the memory budget
and the compute/bandwidth ceilings, so unknown devices are rejected), the
number of devices, and optionally a uniform capacity override or a
heterogeneous per-rank budget map.

The compact string form the CLI accepts is ``[<nodes>x]<N>x<DEVICE>[@<GiB>]``::

    8xA800-80GB          # 8 devices at the spec's 80 GiB
    8xA800-80GB@40       # same devices capped at 40 GiB each
    4xH200-141GB
    2x8xA800-80GB@40     # 2 nodes of 8 devices each (16 total), 40 GiB caps

The node-count form sets :attr:`ClusterSpec.num_nodes`; ``num_devices`` is
always the cluster *total*.  Multi-node clusters feed ``gpus_per_node`` (and,
via the JSON form's ``intra_node_gbytes_per_sec`` /
``inter_node_gbytes_per_sec`` fields, the tier bandwidths) into the timeline's
hierarchical fabric through :attr:`ClusterSpec.fabric`.

Budget maps (different budgets per rank) are only expressible through the
JSON/dict form: ``{"devices": "8xA800-80GB", "device_memory_by_rank":
{"0": 40, "1": 96}}``.  Budget-map keys address *logical* pipeline stages
(``"2"``) or ``pp.ep`` coordinates (``"2.1"``) -- the same addressing sweep
specs use.  Because the search varies the pipeline/expert degrees per
candidate, entries whose stage or coordinate does not exist under a
candidate's layout are simply ignored for that candidate (they address a
logical slot the candidate does not have), rather than invalidating the
candidate.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from dataclasses import replace as dataclass_replace

from repro.gpu.specs import GPU_SPECS, GPUSpec, get_gpu
from repro.simulator.runner import validate_capacity_gib
from repro.sweep.spec import _validate_budget_map

#: ``8xA800-80GB`` / ``2x8xA800-80GB@40`` -- optional node count, per-node (or
#: total) device count, device name, optional GiB.  The gib group is a strict
#: decimal (one optional dot) so malformed capacities like ``@1.2.3`` fail the
#: match and get the documented "cannot parse cluster ..." message instead of
#: a bare float() error.
_CLUSTER_RE = re.compile(
    r"^(?:(?P<nodes>\d+)x)?(?P<count>\d+)x(?P<device>[^@]+?)"
    r"(?:@(?P<gib>\d+(?:\.\d+)?))?$"
)


@dataclass(frozen=True)
class ClusterSpec:
    """The hardware one search targets."""

    device_name: str
    num_devices: int
    #: Uniform per-device budget override in GiB (None = the device spec's).
    device_capacity_gib: float | None = None
    #: Heterogeneous per-rank budgets as sorted ``(rank label, GiB)`` pairs
    #: (hashable); empty means every rank gets the uniform budget.
    device_memory_by_rank: tuple[tuple[str, float], ...] = field(default=())
    #: Number of nodes the devices are spread over; ``num_devices`` stays the
    #: cluster total.  1 (the default) is the flat single-tier topology.
    num_nodes: int = 1
    #: Optional tier-bandwidth overrides (GB/s) applied onto the device spec
    #: when pricing timelines; ``None`` keeps the spec's flat a2a rate.
    intra_node_gbytes_per_sec: float | None = None
    inter_node_gbytes_per_sec: float | None = None

    def __post_init__(self) -> None:
        get_gpu(self.device_name)  # raises for unknown devices
        if not isinstance(self.num_devices, int) or isinstance(self.num_devices, bool) \
                or self.num_devices < 1:
            raise ValueError(f"num_devices must be a positive int, got {self.num_devices!r}")
        validate_capacity_gib(self.device_capacity_gib)
        if self.device_memory_by_rank:
            _validate_budget_map(dict(self.device_memory_by_rank), "device_memory_by_rank")
        if not isinstance(self.num_nodes, int) or isinstance(self.num_nodes, bool) \
                or self.num_nodes < 1:
            raise ValueError(f"num_nodes must be a positive int, got {self.num_nodes!r}")
        if self.num_devices % self.num_nodes != 0:
            raise ValueError(
                f"num_devices ({self.num_devices}) must divide evenly into "
                f"num_nodes ({self.num_nodes})"
            )
        for name in ("intra_node_gbytes_per_sec", "inter_node_gbytes_per_sec"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, (int, float)) or value <= 0):
                raise ValueError(f"{name} must be a positive number, got {value!r}")

    @property
    def gpu(self) -> GPUSpec:
        return GPU_SPECS[self.device_name]

    @property
    def capacity_gib(self) -> float:
        """Per-device budget in GiB the search prunes against (the uniform one)."""
        if self.device_capacity_gib is not None:
            return self.device_capacity_gib
        return float(self.gpu.memory_gib)

    def budget_map(self) -> dict[str, float]:
        return {label: gib for label, gib in self.device_memory_by_rank}

    @property
    def gpus_per_node(self) -> int:
        """Devices per node; 0 for the degenerate single-node topology."""
        if self.num_nodes <= 1:
            return 0
        return self.num_devices // self.num_nodes

    @property
    def fabric(self) -> dict:
        """GPUSpec field overrides describing this cluster's network fabric.

        Empty for a flat single-node cluster with no bandwidth overrides --
        the form :func:`repro.simulator.runner.run_job` accepts as its
        ``fabric`` argument, and the payload a sweep's ``fabric`` axis sets.
        """
        overrides: dict = {}
        if self.num_nodes > 1:
            overrides["gpus_per_node"] = self.gpus_per_node
        if self.intra_node_gbytes_per_sec is not None:
            overrides["intra_node_gbytes_per_sec"] = self.intra_node_gbytes_per_sec
        if self.inter_node_gbytes_per_sec is not None:
            overrides["inter_node_gbytes_per_sec"] = self.inter_node_gbytes_per_sec
        return overrides

    @property
    def fabric_gpu(self) -> GPUSpec:
        """The device spec with this cluster's fabric overrides applied."""
        fabric = self.fabric
        if not fabric:
            return self.gpu
        return dataclass_replace(self.gpu, **fabric)

    @property
    def label(self) -> str:
        """The compact ``[<nodes>x]<N>x<DEVICE>[@<GiB>]`` rendering."""
        if self.num_nodes > 1:
            text = f"{self.num_nodes}x{self.gpus_per_node}x{self.device_name}"
        else:
            text = f"{self.num_devices}x{self.device_name}"
        if self.device_capacity_gib is not None:
            text += f"@{self.device_capacity_gib:g}"
        return text

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: str) -> "ClusterSpec":
        """Parse the compact ``[<nodes>x]<N>x<DEVICE>[@<GiB>]`` cluster string."""
        match = _CLUSTER_RE.match(text.strip())
        if not match:
            raise ValueError(
                f"cannot parse cluster {text!r}; expected "
                f"'[<nodes>x]<N>x<DEVICE>[@<GiB>]' like '8xA800-80GB', "
                f"'8xA800-80GB@40' or '2x8xA800-80GB'"
            )
        capacity = match.group("gib")
        nodes = int(match.group("nodes")) if match.group("nodes") else 1
        per_node = int(match.group("count"))
        return cls(
            device_name=match.group("device"),
            num_devices=nodes * per_node,
            device_capacity_gib=float(capacity) if capacity is not None else None,
            num_nodes=nodes,
        )

    @classmethod
    def from_dict(cls, data) -> "ClusterSpec":
        """Build from the JSON forms: a cluster string or a mapping.

        The mapping form accepts ``{"devices": "8xA800-80GB@40"}`` (the
        compact string under a key) plus an optional ``device_memory_by_rank``
        budget map, or the explicit fields ``device_name`` / ``num_devices`` /
        ``device_capacity_gib``.
        """
        if isinstance(data, ClusterSpec):
            return data
        if isinstance(data, str):
            return cls.parse(data)
        if not isinstance(data, dict):
            raise ValueError(f"cluster must be a string or mapping, got {data!r}")
        data = dict(data)
        budgets = data.pop("device_memory_by_rank", None) or {}
        intra = data.pop("intra_node_gbytes_per_sec", None)
        inter = data.pop("inter_node_gbytes_per_sec", None)
        if "devices" in data:
            base = cls.parse(data.pop("devices"))
            if data:
                raise ValueError(
                    f"unknown cluster fields next to 'devices': {', '.join(sorted(data))}"
                )
            device_name = base.device_name
            num_devices = base.num_devices
            capacity = base.device_capacity_gib
            num_nodes = base.num_nodes
        else:
            unknown = set(data) - {
                "device_name", "num_devices", "device_capacity_gib", "num_nodes",
            }
            if unknown:
                raise ValueError(f"unknown cluster fields: {', '.join(sorted(unknown))}")
            device_name = data.get("device_name", "A800-80GB")
            num_devices = data.get("num_devices", 1)
            capacity = data.get("device_capacity_gib")
            num_nodes = data.get("num_nodes", 1)
        return cls(
            device_name=device_name,
            num_devices=num_devices,
            device_capacity_gib=capacity,
            device_memory_by_rank=tuple(
                sorted((str(key), float(value)) for key, value in budgets.items())
            ),
            num_nodes=num_nodes,
            intra_node_gbytes_per_sec=intra,
            inter_node_gbytes_per_sec=inter,
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ClusterSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_dict(self) -> dict:
        data = {
            "device_name": self.device_name,
            "num_devices": self.num_devices,
            "device_capacity_gib": self.device_capacity_gib,
            "device_memory_by_rank": self.budget_map(),
            "num_nodes": self.num_nodes,
        }
        if self.intra_node_gbytes_per_sec is not None:
            data["intra_node_gbytes_per_sec"] = self.intra_node_gbytes_per_sec
        if self.inter_node_gbytes_per_sec is not None:
            data["inter_node_gbytes_per_sec"] = self.inter_node_gbytes_per_sec
        return data
