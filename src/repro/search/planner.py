"""Branch-and-bound planner over the enumerated candidate space.

:func:`search_points` prices candidates in three stages:

1. **Memory pruning** -- every candidate *configuration* gets the admissible
   :func:`~repro.search.bounds.memory_lower_bound` evaluated per
   capacity-refined rank class (the same class structure ``run_job`` would
   replay).  A class whose bound already exceeds its device budget proves the
   whole configuration OOMs under *every* allocator, so all of its points are
   killed before any trace is generated.

2. **Branch and bound** -- survivors are priced through the ordinary sweep
   engine (:func:`~repro.sweep.engine.execute_point`, so the content-addressed
   cache makes revisits free), in descending order of
   :func:`~repro.search.bounds.throughput_upper_bound`.  Once a candidate's
   upper bound falls *strictly* below the best measured ``tokens_per_second``
   the remaining candidates cannot win and are pruned unevaluated.  The
   strictness preserves the ranking tie-break: a candidate whose bound equals
   the incumbent could still tie on throughput and win on memory.

3. **Ranking** -- evaluated rows are ordered best-first (highest
   ``tokens_per_second``, then lowest job peak, then labels) and stamped with
   a 1-based ``search_rank`` column; rows that OOM'd trail unranked-but-kept
   so the compare gate sees them regress if a fit is ever lost.

``exhaustive=True`` disables both prunes and evaluates the entire grid in
enumeration order -- the oracle the property tests and the CI gate compare
the planner against.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace as dataclass_replace
from pathlib import Path

from repro.gpu.device import GIB
from repro.gpu.specs import get_gpu
from repro.obs.tracer import counter as _obs_counter
from repro.obs.tracer import span as _obs_span
from repro.search.bounds import memory_lower_bound, throughput_upper_bound
from repro.search.space import SearchSpec
from repro.simulator.runner import (
    _default_capacity_gib,
    _expand_classes_to_coordinates,
    _normalize_capacity_map,
    _split_classes_by_capacity,
    resolve_job_ranks,
)
from repro.sweep.cache import SweepCache
from repro.sweep.engine import execute_point
from repro.sweep.results import SweepResult
from repro.sweep.spec import SweepPoint
from repro.workloads.parallelism import normalize_rank, rank_label
from repro.workloads.tracegen import config_fingerprint

#: Version of the search algorithm + result schema; bump when prune logic or
#: the SearchResult serialization changes so stale goldens fail loudly.
#: Version 2: the timeline backend injects per-phase allocator overhead into
#: phase durations (shifting measured throughput) and the upper bound prices
#: the timing backend's fabric (fastest tier + collective floor).
SEARCH_VERSION = 2


@dataclass
class SearchResult:
    """Ranked candidates plus the prune accounting of one planner run."""

    name: str
    #: Result rows of every *evaluated* candidate, ranked best-first; the same
    #: row schema sweeps produce, plus a 1-based ``search_rank`` column.
    rows: list[dict] = field(default_factory=list)
    candidates_total: int = 0
    pruned_by_memory: int = 0
    pruned_by_bound: int = 0
    evaluated: int = 0
    #: One record per pruned point: config/allocator labels, the prune kind,
    #: and for memory prunes the violated (rank, bound, budget) evidence.
    pruned: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    cache_dir: str | None = None
    cache_stats: dict = field(default_factory=dict)
    #: True when pruning was disabled and the full grid was evaluated.
    exhaustive: bool = False

    @property
    def best(self) -> dict | None:
        """The winning row: the top-ranked candidate that fit, if any fit."""
        for row in self.rows:
            if row.get("status") == "ok":
                return row
        return None

    def as_dict(self) -> dict:
        # "spec"/"rows" mirror SweepResult.as_dict so compare.py (and
        # SweepResult.load) consume a search result file unchanged.
        return {
            "spec": self.name,
            "search_version": SEARCH_VERSION,
            "candidates_total": self.candidates_total,
            "pruned_by_memory": self.pruned_by_memory,
            "pruned_by_bound": self.pruned_by_bound,
            "evaluated": self.evaluated,
            "exhaustive": self.exhaustive,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_dir": self.cache_dir,
            "cache_stats": dict(self.cache_stats),
            "pruned": list(self.pruned),
            "rows": list(self.rows),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchResult":
        return cls(
            name=data.get("spec", "search"),
            rows=list(data.get("rows", [])),
            candidates_total=data.get("candidates_total", 0),
            pruned_by_memory=data.get("pruned_by_memory", 0),
            pruned_by_bound=data.get("pruned_by_bound", 0),
            evaluated=data.get("evaluated", 0),
            pruned=list(data.get("pruned", [])),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            cache_dir=data.get("cache_dir"),
            cache_stats=dict(data.get("cache_stats", {})),
            exhaustive=data.get("exhaustive", False),
        )

    @classmethod
    def load(cls, path: str | Path) -> "SearchResult":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def as_sweep_result(self) -> SweepResult:
        """The rows as an ordinary :class:`SweepResult` (table/CSV/compare)."""
        return SweepResult(
            spec_name=self.name,
            rows=list(self.rows),
            elapsed_seconds=self.elapsed_seconds,
            jobs=1,
            cache_dir=self.cache_dir,
            cache_stats=dict(self.cache_stats),
        )

    def summary(self) -> str:
        bits = [
            f"{self.candidates_total} candidates",
            f"{self.pruned_by_memory} pruned by memory bound",
            f"{self.pruned_by_bound} pruned by throughput bound",
            f"{self.evaluated} evaluated",
        ]
        if self.exhaustive:
            bits.append("(exhaustive)")
        return ", ".join(bits)

    def to_text(self, max_rows: int = 40) -> str:
        lines = [f"== search {self.name}: {self.summary()} =="]
        lines.append(self.as_sweep_result().to_text(max_rows=max_rows))
        best = self.best
        if best is not None:
            lines.append(
                f"best: {best['config']} / {best['allocator']} "
                f"({best.get('tokens_per_second', 0.0):.0f} tokens/s, "
                f"{best.get('allocated_gib', 0.0):.3f} GiB peak)"
            )
        else:
            lines.append("best: none -- no evaluated candidate fit the cluster")
        return "\n".join(lines)

    def write(self, path: str | Path) -> None:
        """Write ``.json`` (the full search document) or ``.csv`` (rows only)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".json":
            path.write_text(
                json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        elif suffix == ".csv":
            self.as_sweep_result().write(path)
        else:
            raise ValueError(f"unsupported output format {path.suffix!r} (use .json or .csv)")


def _prune_record(point: SweepPoint, reason: str, **detail) -> dict:
    record = {
        "config": point.row_label,
        "allocator": point.allocator_label,
        "reason": reason,
    }
    record.update(detail)
    return record


def _memory_verdict(point: SweepPoint) -> dict | None:
    """Evidence that ``point``'s configuration cannot fit, or None if it might.

    Rebuilds exactly the capacity-refined rank classes ``run_job`` would
    replay and compares each class's admissible memory lower bound against
    the budget its replay would run under; any violation proves an OOM for
    every allocator (the bound undercounts what every allocator must hold).
    """
    config = point.config
    classes = resolve_job_ranks(config, point.ranks)
    capacity_map = _normalize_capacity_map(dict(point.device_memory_by_rank), config)
    if any("." in label for label in capacity_map):
        classes = _expand_classes_to_coordinates(
            classes, config.parallelism.expert_parallel
        )
    default_capacity = _default_capacity_gib(point.device_name, point.device_capacity_gib)
    for members, capacity in _split_classes_by_capacity(
        classes, capacity_map, point.device_capacity_gib
    ):
        budget_gib = capacity if capacity is not None else default_capacity
        representative = members[0]
        pp, ep = normalize_rank(representative)
        bound = memory_lower_bound(config, rank=pp, ep_rank=ep, scale=point.scale)
        if bound > budget_gib * GIB:
            return {
                "rank": rank_label(representative)
                if not isinstance(representative, int)
                else representative,
                "memory_bound_gib": round(bound / GIB, 3),
                "budget_gib": budget_gib,
            }
    return None


def _rank_rows(rows: list[dict]) -> list[dict]:
    """Order evaluated rows best-first and stamp ``search_rank``.

    Fitting rows sort on (throughput desc, job peak asc, labels); OOM rows
    trail in label order.  Ranks are assigned over the whole list -- an OOM
    row still has a defined position, so losing a fit shows up as a rank
    regression in the compare gate rather than a vanished column.
    """
    def sort_key(row: dict):
        fits = row.get("status") == "ok"
        if fits:
            return (
                0,
                -row.get("tokens_per_second", 0.0),
                row.get("allocated_gib", float("inf")),
                str(row.get("config")),
                str(row.get("allocator")),
            )
        return (1, 0.0, 0.0, str(row.get("config")), str(row.get("allocator")))

    ranked = sorted(rows, key=sort_key)
    for position, row in enumerate(ranked, start=1):
        row["search_rank"] = position
    return ranked


def search_points(
    points: list[SweepPoint],
    *,
    name: str = "search",
    cache_dir: str | None = None,
    reuse_results: bool = True,
    cache_max_bytes: int | None = None,
    exhaustive: bool = False,
    progress=None,
) -> SearchResult:
    """Run the planner over an explicit candidate list (see module docstring).

    ``progress`` optionally supplies a
    :class:`~repro.obs.progress.ProgressReporter`; its total is set to the
    candidate count and advanced as candidates are pruned or evaluated.
    """
    started = time.perf_counter()
    cache_dir = str(cache_dir) if cache_dir is not None else None
    cache = (
        SweepCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir is not None else None
    )
    result = SearchResult(
        name=name,
        candidates_total=len(points),
        cache_dir=cache_dir,
        exhaustive=exhaustive,
    )
    if progress is not None:
        progress.total = len(points)

    def _progress_tick(advance: int) -> None:
        if progress is not None:
            progress.update(
                advance,
                pruned=f"mem {result.pruned_by_memory} / bound {result.pruned_by_bound}",
            )

    with _obs_span(
        "search.run", spec=name, candidates=len(points), exhaustive=exhaustive
    ) as obs_run:
        # Group points by priced configuration: every allocator/knob cell of
        # one (config, device, budgets, ranks, timing, fabric) shares a memory
        # verdict and a throughput bound, and the timeline memoisation means
        # evaluating them together reuses one simulation.
        groups: dict[tuple, list[SweepPoint]] = {}
        for point in points:
            key = (
                config_fingerprint(point.config, seed=point.seed, scale=point.scale),
                point.device_name,
                point.device_capacity_gib,
                point.device_memory_by_rank,
                point.ranks,
                point.timing,
                point.fabric,
            )
            groups.setdefault(key, []).append(point)

        survivors: list[tuple[float, int, list[SweepPoint]]] = []
        for group in groups.values():
            head = group[0]
            if not exhaustive:
                verdict = _memory_verdict(head)
                if verdict is not None:
                    result.pruned_by_memory += len(group)
                    _obs_counter("search.pruned_memory", len(group))
                    result.pruned.extend(
                        _prune_record(point, "memory_bound", **verdict) for point in group
                    )
                    _progress_tick(len(group))
                    continue
            # Bound against the fabric the candidate is actually timed on: the
            # tiered pricing must stay admissible (the floor charges the
            # fastest tier), and the extra collective floor only applies to
            # the backend that emits explicit collectives.
            try:
                gpu = get_gpu(head.device_name)
                if head.fabric:
                    gpu = dataclass_replace(gpu, **dict(head.fabric))
            except (ValueError, TypeError):
                bound = float("inf")  # unusable bound fails open, never prunes
            else:
                bound = throughput_upper_bound(
                    head.config, gpu, timing=head.timing, scale=head.scale
                )
            survivors.append((bound, head.index, group))

        if exhaustive:
            # Oracle mode: evaluate in enumeration order, no bound pruning.
            survivors.sort(key=lambda item: item[1])
        else:
            # Best bound first, then enumeration order for determinism.
            survivors.sort(key=lambda item: (-item[0], item[1]))

        rows: list[dict] = []
        best_tps = float("-inf")
        for position, (bound, _, group) in enumerate(survivors):
            # Prune only when the bound is *meaningfully* below the incumbent:
            # a candidate whose bound ties the best measured throughput (to
            # within float noise -- the timeline and the closed-form floor
            # compute the same product in different association orders) can
            # still tie on tokens/s and win the lower-memory tie-break, so it
            # must be priced.
            if not exhaustive and bound < best_tps * (1.0 - 1e-9):
                # No candidate from here on can beat the incumbent: bounds are
                # sorted descending, so every remaining group is dominated too.
                dominated_total = 0
                for _, _, dominated in survivors[position:]:
                    result.pruned_by_bound += len(dominated)
                    dominated_total += len(dominated)
                    result.pruned.extend(
                        _prune_record(
                            point,
                            "throughput_bound",
                            throughput_bound=bound,
                            incumbent_tokens_per_second=best_tps,
                        )
                        for point in dominated
                    )
                _obs_counter("search.pruned_bound", dominated_total)
                _progress_tick(dominated_total)
                break
            for point in group:
                row = execute_point(
                    point,
                    cache_dir,
                    reuse_results=reuse_results,
                    cache=cache,
                    cache_max_bytes=cache_max_bytes,
                )
                rows.append(row)
                result.evaluated += 1
                _obs_counter("search.evaluated")
                _progress_tick(1)
                if row.get("status") == "ok":
                    best_tps = max(best_tps, row.get("tokens_per_second", 0.0))

        result.rows = _rank_rows(rows)
        if cache is not None:
            cache.enforce_cap()
            result.cache_stats = cache.stats.as_dict()
            result.cache_stats["cached_rows"] = sum(
                1 for row in rows if row.get("cached")
            )
        obs_run.set(evaluated=result.evaluated)
    if progress is not None:
        progress.finish()
    result.elapsed_seconds = time.perf_counter() - started
    return result


def run_search(
    spec: SearchSpec,
    *,
    cache_dir: str | None = None,
    reuse_results: bool = True,
    cache_max_bytes: int | None = None,
    exhaustive: bool = False,
    progress=None,
) -> SearchResult:
    """Enumerate ``spec``'s candidate grid and run the planner over it."""
    return search_points(
        spec.enumerate_candidates(),
        name=spec.name,
        cache_dir=cache_dir,
        reuse_results=reuse_results,
        cache_max_bytes=cache_max_bytes,
        exhaustive=exhaustive,
        progress=progress,
    )
