"""Named search specifications.

``stalloc-repro search <name>`` resolves here first (then falls back to JSON
spec files, then to building a default spec from a model name + cluster
string).  The per-preset cluster budgets are deliberately tight for the tiny
models: they sit between the lower bounds of the skinny and the fat layouts so
the memory prune has real work to do, which is exactly what the acceptance
contract (same argmin as the exhaustive sweep while evaluating at most half
the grid) exercises.
"""

from __future__ import annotations

from pathlib import Path

from repro.search.space import SearchSpec

#: Ready-made search specs; budgets are tuned against the tiny models so both
#: prune stages fire while the true optimum always survives to evaluation.
SEARCH_PRESETS: dict[str, dict] = {
    # Dense search: 8 layouts x 2 micro-batch sizes x recompute on/off.
    "gpt-tiny": {
        "name": "gpt-tiny",
        "model": "gpt-tiny",
        "cluster": "8xA800-80GB@0.06",
        "global_batch": 16,
        "allocators": ["torch2.3", "stalloc"],
        "micro_batch_sizes": [1, 2],
        "recompute": [False, True],
    },
    # MoE search: expert-parallel degrees are part of the space; tp is pinned
    # (heads=8 would otherwise explode the grid) and the budget squeezes the
    # expert-dense low-EP layouts out.
    "moe-tiny": {
        "name": "moe-tiny",
        "model": "moe-tiny",
        "cluster": "8xA800-80GB@0.35",
        "global_batch": 8,
        "allocators": ["torch2.3", "stalloc"],
        "micro_batch_sizes": [1],
        "tensor_parallel": [1],
        "pipeline_parallel": [1, 2],
        "recompute": [False],
    },
    # CI smoke: a 4-device dense search small enough for the compare gate.
    "search-smoke": {
        "name": "search-smoke",
        "model": "gpt-tiny",
        "cluster": "4xA800-80GB@0.25",
        "global_batch": 8,
        "allocators": ["torch2.3", "stalloc"],
        "micro_batch_sizes": [1, 2],
        "recompute": [False, True],
    },
}


def available_search_presets() -> list[str]:
    """Names accepted by :func:`load_search_spec` (besides JSON file paths)."""
    return sorted(SEARCH_PRESETS)


def load_search_spec(name_or_path: str | Path) -> SearchSpec:
    """Resolve a preset name or a path to a JSON search spec file."""
    name = str(name_or_path)
    if name in SEARCH_PRESETS:
        return SearchSpec.from_dict(SEARCH_PRESETS[name])
    path = Path(name_or_path)
    if path.suffix == ".json" or path.exists():
        if not path.exists():
            raise FileNotFoundError(f"search spec file not found: {path}")
        return SearchSpec.from_file(path)
    raise ValueError(
        f"unknown search preset {name!r} (and no such file); available presets: "
        f"{', '.join(available_search_presets())}"
    )
