"""Admissible lower bounds that prune search candidates before pricing them.

Two bounds, both *sound* with respect to what the simulator would measure:

* :func:`memory_lower_bound` -- bytes every allocator must hold live
  simultaneously on a rank at the steady-state peak, computed from the
  :class:`~repro.workloads.memory_model.MemoryModel` inventory alone (no trace
  generation).  It undercounts on purpose: boundary activations, logits,
  dynamic expert tensors, communication buffers and transients are all
  excluded, and every jitterable size is taken at the *minimum* jitter factor
  the generator can apply.  Therefore ``bound <= peak_allocated <=
  peak_reserved`` for every allocator, and ``bound > capacity`` proves the
  candidate OOMs everywhere -- the pre-tracegen kill the tentpole asks for.

* :func:`time_floor_seconds` -- the compute-bound step time of the analytical
  model with the pipeline-bubble and straggler terms dropped.  Both timing
  backends charge at least this much (the timeline simulator schedules the
  same per-phase compute costs and can only *add* waiting), so
  :func:`throughput_upper_bound` (tokens per iteration over the floor) is an
  admissible branch-and-bound bound on ``tokens_per_second``.

Soundness of both bounds against the real backends is property-tested in
``tests/test_search.py``.
"""

from __future__ import annotations

from repro.core.events import TensorCategory
from repro.gpu.specs import GPUSpec, get_gpu
from repro.simulator.throughput import ThroughputModel
from repro.workloads.memory_model import ACT_BYTES, MemoryModel, TensorSpec
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig

#: The smallest factor the generator's size jitter can shrink an
#: activation-like tensor by; the floor prices every jitterable tensor at it.
_MIN_JITTER = min(TraceGenerator.DEFAULT_SIZE_JITTER)

#: Categories the generator jitters (see ``TraceGenerator._jitter``).
_JITTERED = (
    TensorCategory.ACTIVATION,
    TensorCategory.TEMPORARY,
    TensorCategory.EXPERT_ACTIVATION,
)


def _jitter_floor(spec: TensorSpec) -> int:
    """Smallest size the generator can emit for ``spec`` in a micro-batch."""
    if spec.category not in _JITTERED:
        return spec.size
    # Mirrors TraceGenerator._jitter's rounding exactly, at the minimum factor.
    return max(512, ((int(spec.size * _MIN_JITTER) + 511) // 512) * 512)


def _scaled_chunk_layers(config: TrainingConfig, scale: float) -> int:
    """Layers one virtual-pipeline chunk emits under the ``scale`` knob."""
    full = config.parallelism.layers_per_chunk(config.model.num_layers)
    return max(1, round(full * scale))


def persistent_bytes_floor(
    config: TrainingConfig, *, rank: int = 0, ep_rank: int = 0, scale: float = 1.0
) -> int:
    """Exact persistent (INIT-phase) bytes a rank allocates.

    Replicates ``TraceGenerator._emit_init``: layer-tagged specs beyond the
    scaled layer count are dropped, ZeRO-3 shards WEIGHT specs across the
    data-parallel group, and forward-only workloads (inference/generation)
    skip gradient and optimizer-state tensors entirely.  Persistent tensors
    are never jittered, so this term is exact, not merely a lower bound.
    """
    memory = MemoryModel(config, rank=rank, ep_rank=ep_rank)
    parallelism = config.parallelism
    scale_layers = _scaled_chunk_layers(config, scale) * parallelism.virtual_pipeline_chunks
    full_layers = parallelism.layers_per_rank(config.model.num_layers)
    forward_only = not config.is_training
    total = 0
    for spec in memory.persistent_tensors():
        if forward_only and spec.category in (
            TensorCategory.GRADIENT, TensorCategory.OPTIMIZER_STATE
        ):
            continue
        if spec.tag.startswith("layer"):
            layer_index = int(spec.tag.split(".")[0][len("layer"):])
            if layer_index >= scale_layers and full_layers > scale_layers:
                continue
        if config.zero_stage >= 3 and spec.category is TensorCategory.WEIGHT:
            total += max(512, spec.size // parallelism.data_parallel)
        else:
            total += spec.size
    return total


def scoped_layer_bytes_floor(
    config: TrainingConfig, *, rank: int = 0, ep_rank: int = 0
) -> int:
    """Minimum bytes one layer of one in-flight micro-batch keeps saved.

    Under recomputation or offloading only the layer-input checkpoint
    survives the forward pass; otherwise the dense saved activations (minus
    the expert-replaced ``mlp*`` tensors for MoE models) plus the
    routing-independent MoE tensors do.  Dynamic expert tensors and
    all-to-all buffers are excluded -- they can transiently be freed --
    keeping the bound admissible.
    """
    memory = MemoryModel(config, rank=rank, ep_rank=ep_rank)
    if config.recompute or config.offload_activations:
        specs = memory.recompute_checkpoint_tensors()
    else:
        specs = memory.saved_activation_tensors()
        if config.model.is_moe:
            specs = [spec for spec in specs if not spec.tag.startswith("mlp")]
            specs = specs + memory.moe_static_tensors()
    return sum(_jitter_floor(spec) for spec in specs)


def kv_cache_bytes_floor(config: TrainingConfig, *, scale: float = 1.0) -> int:
    """Minimum concurrently-live KV-cache bytes of a generation workload.

    Decode runs step-major, so at the end of the next-to-last decode step
    every (micro-batch, chunk) unit still holds all its per-layer caches at
    the step's context length; during the final step the first unit grows to
    the full context before anything is freed.  The floor prices exactly that
    guaranteed-live set -- all units at ``context_tokens_at(decode_steps - 1)``
    plus one unit's growth to the full context -- and KV sizes are never
    jittered, so ``floor <= kv_peak <= peak_allocated`` for every trace.
    Zero for non-generation workloads and for prefill-only generation
    (``decode_steps == 0``, which allocates no caches at all).
    """
    if config.workload_kind != "generation" or config.decode_steps == 0:
        return 0
    memory = MemoryModel(config)
    layers = _scaled_chunk_layers(config, scale)
    units = config.num_microbatches * config.parallelism.virtual_pipeline_chunks
    last = memory.kv_cache_tensor(0, config.context_tokens_at(config.decode_steps)).size
    prior = memory.kv_cache_tensor(
        0, config.context_tokens_at(config.decode_steps - 1)
    ).size
    return (units - 1) * layers * prior + layers * last


def memory_lower_bound(
    config: TrainingConfig, *, rank: int = 0, ep_rank: int = 0, scale: float = 1.0
) -> int:
    """Bytes every allocator must hold live at once on ``rank``.

    ``persistent + in_flight_microbatch_chunks * layers_per_chunk *
    per_layer_floor``: at the 1F1B / interleaved steady state the schedule
    keeps ``in_flight_microbatches`` forward chunks un-backwarded, and each
    holds its saved activations for every layer of the chunk.  Everything
    else a real trace allocates on top (boundary buffers, logits, experts,
    comm, transients) only raises the true peak.

    Forward-only workloads retain nothing across phases -- the generator
    frees every scoped and boundary activation at the end of each forward --
    so the in-flight activation term is dropped; generation workloads add
    the KV-cache floor instead (see :func:`kv_cache_bytes_floor`), the
    dynamic allocation a static planner must still provision for.
    """
    persistent = persistent_bytes_floor(config, rank=rank, ep_rank=ep_rank, scale=scale)
    if not config.is_training:
        return persistent + kv_cache_bytes_floor(config, scale=scale)
    in_flight = config.parallelism.in_flight_microbatches(rank, config.num_microbatches)
    per_layer = scoped_layer_bytes_floor(config, rank=rank, ep_rank=ep_rank)
    return persistent + in_flight * _scaled_chunk_layers(config, scale) * per_layer


def _comm_floor_seconds(
    config: TrainingConfig, gpu: GPUSpec, *, scale: float = 1.0
) -> float:
    """Minimum all-to-all seconds the timeline backend charges one rank.

    The timeline emits one dispatch/combine collective per MoE layer
    execution -- ``2 * num_microbatches * chunks * scaled_layers`` per rank --
    and each collective's duration is at least the *balanced* routed bytes
    (``tokens * top_k / ep``; the slowest participant can only carry more)
    over the **fastest** tier (a tiered fabric's per-rank mix of two rates is
    never faster than its best rate).  With a ``comm_overlap_factor`` of
    ``w``, at most ``w`` of each collective hides under expert compute, so at
    least ``1 - w`` of it extends the critical path.  Every inequality
    under-counts, keeping the floor admissible.
    """
    model = config.model
    factor = config.moe_comm_factor
    if not model.is_moe or factor <= 0:
        return 0.0
    parallelism = config.parallelism
    balanced_tokens = (
        config.tokens_per_microbatch * model.moe_top_k / parallelism.expert_parallel
    )
    bytes_per_collective = factor * balanced_tokens * model.hidden_size * ACT_BYTES
    seconds_per_collective = bytes_per_collective / (
        gpu.fastest_tier_gbytes_per_sec * 1e9
    )
    chunks = parallelism.virtual_pipeline_chunks
    collectives = 2 * config.num_microbatches * chunks * _scaled_chunk_layers(config, scale)
    return (1.0 - config.comm_overlap_factor) * collectives * seconds_per_collective


def time_floor_seconds(
    config: TrainingConfig,
    gpu: GPUSpec | str,
    *,
    timing: str = "analytical",
    scale: float = 1.0,
) -> float:
    """Seconds one iteration takes at best, for the given timing backend.

    The analytical model's compute term with its compute/communication
    multipliers but *without* the pipeline-bubble divisor or allocator
    overhead; the timeline backend schedules the same per-phase costs and can
    only add stalls on top.  For ``timing="timeline"`` the floor additionally
    charges the backend's explicit all-to-all collectives at the fastest
    fabric tier (see :func:`_comm_floor_seconds`) -- the analytical backend
    prices communication through its multiplier instead, so the extra term
    must stay off its floor to remain admissible.  The compute term is
    independent of ``scale``; the collective count is not (the timeline emits
    one per *scaled* layer execution).
    """
    gpu = get_gpu(gpu)
    model = ThroughputModel(gpu)
    per_gpu_flops = (
        model.model_flops_per_iteration(config)
        * model.workload_flops_fraction(config)
        / config.parallelism.num_gpus
    )
    floor = (
        per_gpu_flops
        * model.compute_multiplier(config)
        * model.communication_multiplier(config)
        / gpu.achievable_flops
    )
    if timing == "timeline":
        floor += _comm_floor_seconds(config, gpu, scale=scale)
    return floor


def throughput_upper_bound(
    config: TrainingConfig,
    gpu: GPUSpec | str,
    *,
    timing: str = "analytical",
    scale: float = 1.0,
) -> float:
    """Admissible upper bound on ``tokens_per_second`` for the candidate.

    Infinite (bound disabled, the candidate is never pruned on time) when the
    device is unknown or the model somehow prices to a zero floor -- an
    unusable bound must fail open, not kill candidates.
    """
    try:
        floor = time_floor_seconds(config, gpu, timing=timing, scale=scale)
    except ValueError:
        return float("inf")
    if floor <= 0:
        return float("inf")
    return config.tokens_per_iteration / floor
