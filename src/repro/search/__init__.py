"""Auto-parallelism search: find the fastest configuration that fits.

The planner closes the loop the sweep subsystem leaves open: instead of
scoring a user-supplied grid, it derives the legal candidate space from the
model's divisibility constraints and a cluster description, kills candidates
whose admissible memory lower bound already exceeds their device budgets
before any trace is generated, and branch-and-bounds the survivors on an
admissible throughput bound while pricing them through the ordinary sweep
engine (same rows, same cache, same compare gate).
"""

from repro.search.bounds import (
    memory_lower_bound,
    persistent_bytes_floor,
    scoped_layer_bytes_floor,
    throughput_upper_bound,
    time_floor_seconds,
)
from repro.search.cluster import ClusterSpec
from repro.search.planner import SEARCH_VERSION, SearchResult, run_search, search_points
from repro.search.presets import (
    SEARCH_PRESETS,
    available_search_presets,
    load_search_spec,
)
from repro.search.space import SearchSpec

__all__ = [
    "ClusterSpec",
    "SEARCH_PRESETS",
    "SEARCH_VERSION",
    "SearchResult",
    "SearchSpec",
    "available_search_presets",
    "load_search_spec",
    "memory_lower_bound",
    "persistent_bytes_floor",
    "run_search",
    "scoped_layer_bytes_floor",
    "search_points",
    "throughput_upper_bound",
    "time_floor_seconds",
]
