"""High-level experiment runner: generate a trace, run allocators, report.

The experiments in :mod:`repro.experiments` all follow the same recipe:

1. build a :class:`TrainingConfig`,
2. generate its allocation trace (stored columnar, see
   :mod:`repro.core.columns`; traces cached here are shared by reference,
   which is safe because traces are immutable once generated),
3. replay the trace through one or more allocators on a fresh device
   (batch-replayable allocators apply the whole trace in one vectorized
   pass, see :meth:`repro.allocators.base.Allocator.batch_replay`),
4. compute memory-efficiency metrics (and optionally throughput).

This module implements that recipe once, including STAlloc's extra offline
step (profile + plan synthesis before the replay), plus a small trace cache so
sweeping five allocators over one configuration only generates the trace once.

The pure per-run path is :func:`run_workload`; :func:`run_workload_suite` is
the orchestrator on top of it and can fan the allocators out over worker
processes (``jobs > 1``).  When a persistent cache directory is installed (see
:func:`set_persistent_cache`, wired up by ``repro.experiments.common`` and the
CLI), traces and synthesized STAlloc plans are additionally memoised on disk
through :class:`repro.sweep.cache.SweepCache`, so repeated runs -- and worker
processes, which cannot see the parent's in-memory cache -- skip regeneration.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace as dataclass_replace

from repro.allocators.base import Allocator
from repro.allocators.registry import available_allocators, create_allocator
from repro.core.stalloc import STAlloc, STAllocConfig
from repro.gpu.device import Device, GIB
from repro.gpu.errors import OutOfMemoryError
from repro.obs.tracer import span as _obs_span
from repro.simulator.metrics import MemoryMetrics
from repro.simulator.replay import ReplayResult, replay_trace
from repro.simulator.throughput import GPU_SPECS, ThroughputEstimate, ThroughputModel
from repro.workloads.parallelism import normalize_rank, rank_label
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceGenerator, config_fingerprint
from repro.workloads.training import TrainingConfig

#: Name under which STAlloc appears in experiment tables.
STALLOC = "stalloc"
#: STAlloc with the dynamic-reuse path disabled (the §9.4 ablation).
STALLOC_NO_REUSE = "stalloc_no_reuse"

#: Accepted timing backends: the discrete-event simulator walking the real
#: per-rank schedules (``"timeline"``, the job-level default) or the legacy
#: closed-form model (``"analytical"``, kept as a fallback and cross-check).
VALID_TIMINGS = ("timeline", "analytical")


def validate_timing(timing: str) -> str:
    """Reject unknown timing backends (shared with sweep-spec validation)."""
    if timing not in VALID_TIMINGS:
        raise ValueError(
            f"timing must be one of {', '.join(VALID_TIMINGS)}, got {timing!r}"
        )
    return timing


def _estimate_throughput(
    config: TrainingConfig,
    gpu,
    timing: str,
    *,
    allocator_overhead_seconds: float,
    seed: int = 0,
    scale: float = 1.0,
):
    """One iteration's timing estimate from the selected backend.

    Returns ``(estimate, timeline)`` where ``timeline`` is the full
    :class:`~repro.timeline.TimelineResult` behind a timeline estimate and
    None for the analytical backend.
    """
    if timing == "timeline":
        # Imported lazily: repro.timeline consumes this package's throughput
        # shapes, so a module-level import here would be circular.
        from repro.timeline import simulate_timeline

        # The overhead is injected into the simulated phase durations (so
        # allocator cost rides the schedule's dependency structure); the
        # estimate must therefore NOT add it again on top.
        timeline = simulate_timeline(
            config,
            gpu=gpu,
            seed=seed,
            scale=scale,
            allocator_overhead_seconds=allocator_overhead_seconds,
        )
        return timeline.to_estimate(), timeline
    estimate = ThroughputModel(gpu).estimate(
        config, allocator_overhead_seconds=allocator_overhead_seconds
    )
    return estimate, None


@dataclass
class WorkloadRun:
    """One (configuration, allocator, rank) measurement."""

    config: TrainingConfig
    allocator_name: str
    replay: ReplayResult
    device_name: str
    rank: int = 0
    ep_rank: int = 0
    throughput: ThroughputEstimate | None = None
    planning_report: dict = field(default_factory=dict)
    #: Peak concurrently-live COMM_BUFFER bytes of the replayed trace (the
    #: all-to-all dispatch/combine transients plus P2P/ZeRO buffers);
    #: trace-determined, identical for every allocator.
    comm_peak_bytes: int = 0
    #: Peak concurrently-live KV_CACHE bytes of the replayed trace (the
    #: per-layer key/value caches of a generation workload; 0 for training
    #: and inference); trace-determined, identical for every allocator.
    kv_peak_bytes: int = 0

    @property
    def memory_efficiency(self) -> float:
        return self.replay.memory_efficiency

    @property
    def fragmentation_ratio(self) -> float:
        return self.replay.fragmentation_ratio

    @property
    def success(self) -> bool:
        return self.replay.success

    @property
    def tflops(self) -> float | None:
        """Per-GPU model TFLOPS, when the throughput model was evaluated."""
        return self.throughput.tflops_per_gpu if self.throughput is not None else None

    @property
    def tokens_per_second(self) -> float | None:
        return self.throughput.tokens_per_second if self.throughput is not None else None

    @property
    def iteration_seconds(self) -> float | None:
        """Modelled iteration time (excluding allocator overhead)."""
        return self.throughput.iteration_seconds if self.throughput is not None else None

    @property
    def comm_seconds(self) -> float | None:
        """All-to-all seconds of the most communication-bound rank (0 for the
        analytical backend)."""
        return self.throughput.comm_seconds if self.throughput is not None else None

    @property
    def bubble_fraction(self) -> float | None:
        return self.throughput.bubble_fraction if self.throughput is not None else None

    @property
    def mfu(self) -> float | None:
        return self.throughput.mfu if self.throughput is not None else None

    def as_dict(self) -> dict:
        data = {
            "config": self.config.describe(),
            "device": self.device_name,
            "rank": self.rank,
            "ep_rank": self.ep_rank,
            "comm_peak_bytes": self.comm_peak_bytes,
            "kv_peak_bytes": self.kv_peak_bytes,
        }
        data.update(self.replay.as_dict())
        if self.throughput is not None:
            data.update(self.throughput.row_columns())
        return data


class _TraceCache:
    """LRU memo of generated traces keyed by the full config fingerprint.

    The fingerprint covers every field that shapes generation -- unlike
    ``config.describe()``, which omits e.g. ``seq_length`` and the dtype
    knobs and would let distinct configs alias each other's traces.  The memo
    is bounded: a sweep over hundreds of configurations must not retain every
    trace in RAM for the life of the process (points sharing a configuration
    are adjacent in expansion order, so a small window captures the reuse).
    """

    def __init__(self, maxsize: int = 16) -> None:
        self.maxsize = maxsize
        self._traces: dict[str, Trace] = {}

    def get(
        self,
        config: TrainingConfig,
        *,
        seed: int,
        scale: float,
        rank: int = 0,
        ep_rank: int = 0,
        loader=None,
    ) -> Trace:
        key = config_fingerprint(config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank)
        if key in self._traces:
            self._traces[key] = self._traces.pop(key)  # refresh LRU position
        else:
            if loader is None:
                loader = TraceGenerator(
                    config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank
                ).generate
            self._traces[key] = loader()
            while len(self._traces) > self.maxsize:
                self._traces.pop(next(iter(self._traces)))
        return self._traces[key]

    def clear(self) -> None:
        self._traces.clear()


_TRACE_CACHE = _TraceCache()

#: Directory of the installed persistent (on-disk) cache, or None.
_PERSISTENT_CACHE_DIR: str | None = None
#: Lazily-constructed SweepCache for :data:`_PERSISTENT_CACHE_DIR`.
_PERSISTENT_CACHE = None

#: Default worker-process count for :func:`run_workload_suite` (1 = serial).
_DEFAULT_JOBS = 1

#: Sentinel for the ``cache`` parameters below: explicitly disable on-disk
#: caching for one call, even when a persistent cache is installed globally
#: (``None`` means "use the installed default").
NO_CACHE = object()


def _resolve_cache(cache):
    if cache is NO_CACHE:
        return None
    return cache if cache is not None else persistent_cache()


def clear_trace_cache() -> None:
    """Drop memoised traces (tests use this to control memory)."""
    _TRACE_CACHE.clear()


def set_persistent_cache(cache) -> None:
    """Install (or, with None, remove) the on-disk trace/plan cache.

    Accepts a directory path (the cache is constructed lazily) or an existing
    :class:`repro.sweep.cache.SweepCache` instance (shared, so its hit/miss
    statistics aggregate across the runner and the caller).
    """
    global _PERSISTENT_CACHE_DIR, _PERSISTENT_CACHE
    if cache is None:
        _PERSISTENT_CACHE_DIR = None
        _PERSISTENT_CACHE = None
    elif isinstance(cache, (str, os.PathLike)):
        _PERSISTENT_CACHE_DIR = str(cache)
        _PERSISTENT_CACHE = None
    else:
        _PERSISTENT_CACHE_DIR = str(cache.root)
        _PERSISTENT_CACHE = cache


def persistent_cache_dir() -> str | None:
    """Directory of the installed persistent cache (None when disabled)."""
    return _PERSISTENT_CACHE_DIR


def persistent_cache():
    """The installed SweepCache instance, constructed on first use (or None)."""
    global _PERSISTENT_CACHE
    if _PERSISTENT_CACHE is None and _PERSISTENT_CACHE_DIR is not None:
        from repro.sweep.cache import SweepCache

        _PERSISTENT_CACHE = SweepCache(_PERSISTENT_CACHE_DIR)
    return _PERSISTENT_CACHE


def set_default_jobs(jobs: int) -> None:
    """Set the process-parallelism :func:`run_workload_suite` defaults to."""
    global _DEFAULT_JOBS
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS = int(jobs)


def generate_trace(
    config: TrainingConfig,
    *,
    seed: int = 0,
    scale: float = 1.0,
    rank: int = 0,
    ep_rank: int = 0,
    cache=None,
) -> Trace:
    """Generate (or fetch from cache) one rank's allocation trace.

    Lookup order: the in-process memo, then the on-disk cache (``cache`` if
    given, else the installed persistent cache; pass :data:`NO_CACHE` to skip
    disk entirely) which generates and stores on miss, then plain generation.
    Every cache layer keys on the full config fingerprint *including* both
    rank coordinates, so per-(pp, ep)-rank traces of one job never alias
    each other.
    """
    cache = _resolve_cache(cache)
    loader = None
    if cache is not None:
        loader = lambda: cache.get_trace(  # noqa: E731
            config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank
        )
    return _TRACE_CACHE.get(
        config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank, loader=loader
    )


def _default_capacity_gib(device_name: str, device_capacity_gib: float | None) -> float:
    """Device budget in GiB: explicit override, the GPU spec, or 80 GiB."""
    if device_capacity_gib is not None:
        return device_capacity_gib
    gpu = GPU_SPECS.get(device_name)
    return gpu.memory_gib if gpu else 80


def validate_capacity_gib(value, context: str = "device_capacity_gib") -> float | None:
    """Reject non-positive / non-numeric device budgets (None passes through).

    The sweep-spec loader already enforces this for budgets arriving through
    JSON specs (``spec.py``); this guards the direct-API entry points so
    ``run_job(device_capacity_gib=0)`` fails loudly instead of producing a
    zero-byte device that every allocator trivially OOMs against.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{context} must be a positive GiB value, got {value!r}")
    return float(value)


def _stalloc_config(name: str, overrides: dict | None) -> STAllocConfig:
    """STAllocConfig for one of the runner-level stalloc variants."""
    params = dict(overrides or {})
    if name == STALLOC_NO_REUSE:
        params.setdefault("enable_dynamic_reuse", False)
    return STAllocConfig(**params)


def _build_allocator(
    name: str,
    device: Device,
    trace: Trace,
    stalloc_overrides: dict | None = None,
    cache=None,
) -> tuple[Allocator, dict]:
    """Instantiate an allocator by name, handling STAlloc's offline pipeline.

    For the STAlloc variants the offline pipeline (profile + plan synthesis)
    runs here -- unless the plan cache (``cache`` if given, else the installed
    persistent cache) already holds a plan for this exact
    (trace, pipeline-config) pair, in which case the plan is loaded.
    """
    if name in (STALLOC, STALLOC_NO_REUSE):
        with _obs_span("plan.synthesize", allocator=name):
            stalloc_config = _stalloc_config(name, stalloc_overrides)
            cache = _resolve_cache(cache)
            if cache is not None:
                stalloc = cache.get_stalloc(trace, stalloc_config)
            else:
                stalloc = STAlloc.from_trace(trace, stalloc_config)
            return stalloc.build_runtime_allocator(device), stalloc.planning_report()
    return create_allocator(name, device), {}


def run_workload(
    config: TrainingConfig,
    allocator_name: str,
    *,
    device_name: str = "A800-80GB",
    device_capacity_gib: float | None = None,
    seed: int = 0,
    scale: float = 1.0,
    rank: int = 0,
    ep_rank: int = 0,
    with_throughput: bool = False,
    timing: str = "analytical",
    trace: Trace | None = None,
    stalloc_overrides: dict | None = None,
    cache=None,
) -> WorkloadRun:
    """Run one configuration through one allocator and collect metrics.

    This is the pure per-run worker: it has no side effects beyond the caches
    and is what the sweep engine executes in worker processes.  ``rank`` and
    ``ep_rank`` select the (pipeline, expert-parallel) rank coordinate being
    simulated (rank (0, 0) by default, matching the single-rank behaviour of
    earlier releases; ``rank`` also accepts a ``(pp, ep)`` pair directly).
    ``timing`` selects the backend behind ``with_throughput``: the cheap
    closed form by default here (this is the single-rank path; the timeline
    simulates the whole job, which :func:`run_job` amortises across
    allocators), or ``"timeline"`` for the discrete-event simulator.
    ``stalloc_overrides`` optionally overrides STAllocConfig knobs for the
    STAlloc variants (ablation sweeps); other allocators ignore it.  ``cache``
    optionally routes trace/plan lookups through an explicit
    :class:`repro.sweep.cache.SweepCache` instead of the installed persistent
    cache.
    """
    validate_timing(timing)
    device_capacity_gib = validate_capacity_gib(device_capacity_gib)
    if not isinstance(rank, int):
        rank, ep_rank = normalize_rank(rank)
    with _obs_span("workload.run", allocator=allocator_name, rank=rank, ep=ep_rank):
        if trace is None:
            trace = generate_trace(
                config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank, cache=cache
            )
        gpu = GPU_SPECS.get(device_name)
        capacity_gib = _default_capacity_gib(device_name, device_capacity_gib)
        device = Device(
            name=device_name, capacity=int(capacity_gib * GIB), reserved_overhead=0
        )
        try:
            allocator, planning_report = _build_allocator(
                allocator_name, device, trace, stalloc_overrides, cache=cache
            )
        except OutOfMemoryError as oom:
            # STAlloc's static-pool reservation can itself exceed a small
            # device budget.  A real job dies at startup the same way it dies
            # mid-step, so this is an OOM *result* (failed before any event
            # replayed, ``oom_at_event=-1``), not an orchestration error to
            # propagate.
            replay = ReplayResult(
                allocator_name=allocator_name,
                metrics=MemoryMetrics(peak_allocated_bytes=0, peak_reserved_bytes=0),
                success=False,
                oom_at_event=-1,
                oom_request_bytes=oom.requested,
            )
            return WorkloadRun(
                config=config,
                allocator_name=allocator_name,
                replay=replay,
                device_name=device_name,
                rank=rank,
                ep_rank=ep_rank,
                planning_report={},
                comm_peak_bytes=trace.comm_peak_bytes(),
                kv_peak_bytes=trace.kv_peak_bytes(),
            )
        replay = replay_trace(trace, allocator)
        throughput = None
        if with_throughput and gpu is not None:
            throughput, _ = _estimate_throughput(
                config,
                gpu,
                timing,
                allocator_overhead_seconds=replay.overhead_seconds,
                seed=seed,
                scale=scale,
            )
        return WorkloadRun(
            config=config,
            allocator_name=allocator_name,
            replay=replay,
            device_name=device_name,
            rank=rank,
            ep_rank=ep_rank,
            throughput=throughput,
            planning_report=planning_report,
            comm_peak_bytes=trace.comm_peak_bytes(),
            kv_peak_bytes=trace.kv_peak_bytes(),
        )


def _suite_worker(payload: tuple) -> tuple[str, WorkloadRun]:
    """Process-pool entry point: run one allocator of a suite in a worker.

    The worker re-installs the parent's persistent cache (worker processes do
    not share the parent's module state when spawned) and resolves the trace
    through it; without a cache the parent ships the trace in the payload, so
    the trace is generated at most once per suite on every start method.
    """
    config, name, kwargs, cache_dir, trace = payload
    if cache_dir is not None and persistent_cache_dir() != cache_dir:
        set_persistent_cache(cache_dir)
    return name, run_workload(config, name, trace=trace, **kwargs)


def run_workload_suite(
    config: TrainingConfig,
    allocator_names: list[str],
    *,
    device_name: str = "A800-80GB",
    device_capacity_gib: float | None = None,
    seed: int = 0,
    scale: float = 1.0,
    rank: int = 0,
    ep_rank: int = 0,
    with_throughput: bool = False,
    timing: str = "analytical",
    jobs: int | None = None,
) -> dict[str, WorkloadRun]:
    """Run one configuration through several allocators, sharing the trace.

    ``rank``/``ep_rank`` select the simulated rank coordinate (shared by every
    allocator of the suite).  ``timing`` selects the throughput backend (see
    :func:`run_workload`).  ``jobs`` sets the number of worker processes the
    allocators fan out over; ``None`` uses the module default (see
    :func:`set_default_jobs`, configured through
    ``repro.experiments.common.configure_execution`` / the CLI) and ``1``
    keeps the serial in-process path.
    """
    jobs = _DEFAULT_JOBS if jobs is None else int(jobs)
    validate_timing(timing)
    if not isinstance(rank, int):
        rank, ep_rank = normalize_rank(rank)
    kwargs = dict(
        device_name=device_name,
        device_capacity_gib=device_capacity_gib,
        seed=seed,
        scale=scale,
        rank=rank,
        ep_rank=ep_rank,
        with_throughput=with_throughput,
        timing=timing,
    )
    if jobs > 1 and len(allocator_names) > 1:
        # Generate the trace once up front.  With a persistent cache the
        # workers read it back from disk; without one it is shipped to them
        # in the payload (correct on every multiprocessing start method).
        trace = generate_trace(config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank)
        shipped = None if persistent_cache_dir() is not None else trace
        payloads = [
            (config, name, kwargs, persistent_cache_dir(), shipped)
            for name in allocator_names
        ]
        workers = min(jobs, len(allocator_names))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return dict(pool.map(_suite_worker, payloads))
    trace = generate_trace(config, seed=seed, scale=scale, rank=rank, ep_rank=ep_rank)
    return {name: run_workload(config, name, trace=trace, **kwargs) for name in allocator_names}


# ---------------------------------------------------------------------- #
# Job-level (multi-rank) orchestration
# ---------------------------------------------------------------------- #
def resolve_job_ranks(config: TrainingConfig, ranks=None) -> list[tuple]:
    """Resolve a rank selection into memory-equivalence classes to simulate.

    ``ranks`` is ``None`` (rank (0, 0) only -- the single-rank behaviour of
    earlier releases), the string ``"all"`` (every rank of the job), or an
    iterable whose entries are pipeline ranks (ints) or explicit ``(pp, ep)``
    pairs.  The returned classes partition the requested ranks so that
    simulating one representative per class (its first member) covers every
    requested rank: class members generate event-identical traces, so a PP=8
    job needs at most 8 -- and with few micro-batches far fewer -- trace
    generations and replays.

    For a job with expert-parallel asymmetry (see
    :attr:`TrainingConfig.expert_asymmetry`) the classes partition the full
    ``(pp, ep)`` coordinate grid and their members are coordinate pairs: every
    EP rank routes a different token load, so EP peers stop being
    interchangeable.  A plain int entry then selects *all* EP ranks of that
    pipeline stage.  Without asymmetry the classes stay plain pipeline-rank
    ints and EP peers collapse into their stage's class, exactly as before.
    """
    pipeline = config.parallelism.pipeline_parallel
    asymmetric = config.expert_asymmetry
    expert = config.parallelism.expert_parallel if asymmetric else 1

    def _validate(pp: int, ep: int) -> None:
        if not 0 <= pp < pipeline:
            raise ValueError(f"rank {pp} out of range for pipeline_parallel={pipeline}")
        # Bounds come from the parallelism layout, not the asymmetry flag: a
        # typo'd ep must fail whether or not the router is currently skewed.
        if not 0 <= ep < config.parallelism.expert_parallel:
            raise ValueError(
                f"ep_rank {ep} out of range for expert_parallel="
                f"{config.parallelism.expert_parallel}"
            )

    requested: set = set()
    if ranks is None:
        requested = {(0, 0)} if asymmetric else {0}
    elif isinstance(ranks, str):
        if ranks != "all":
            raise ValueError(f"ranks must be 'all' or a list of ints, got {ranks!r}")
        if asymmetric:
            requested = {(pp, ep) for pp in range(pipeline) for ep in range(expert)}
        else:
            requested = set(range(pipeline))
    else:
        entries = list(ranks)
        if not entries:
            raise ValueError("ranks must not be empty")
        for entry in entries:
            if isinstance(entry, int) and not isinstance(entry, bool):
                _validate(entry, 0)
                if asymmetric:
                    requested.update((entry, ep) for ep in range(expert))
                else:
                    requested.add(entry)
            else:
                pp, ep = normalize_rank(entry)
                _validate(pp, ep)
                if asymmetric:
                    requested.add((pp, ep))
                else:
                    # EP ranks are memory-identical here, so an explicit
                    # coordinate collapses onto its pipeline stage.
                    requested.add(pp)
    classes = config.parallelism.rank_equivalence_classes(
        config.num_microbatches, expert_asymmetry=asymmetric
    )
    restricted = [
        tuple(rank for rank in cls if rank in requested) for cls in classes
    ]
    return [cls for cls in restricted if cls]


def _normalize_capacity_map(
    device_memory_by_rank: dict | None, config: TrainingConfig
) -> dict[str, float]:
    """Canonicalize heterogeneous device budgets to ``rank label -> GiB``.

    Keys may be ints (pipeline ranks), ``(pp, ep)`` tuples, or their string
    labels (``"2"``, ``"2.1"`` -- the JSON spelling sweep specs use).  A
    pipeline-rank key applies to every EP coordinate of that stage unless an
    exact ``pp.ep`` key overrides it.  Every key is validated against the
    job's rank grid, so a typo'd budget fails loudly instead of silently
    applying to nothing.
    """
    if not device_memory_by_rank:
        return {}
    pipeline = config.parallelism.pipeline_parallel
    expert = config.parallelism.expert_parallel
    normalized: dict[str, float] = {}
    for key, value in device_memory_by_rank.items():
        capacity = validate_capacity_gib(value, context=f"device memory for rank {key!r}")
        label = key if isinstance(key, str) else rank_label(key)
        parts = label.split(".")
        if len(parts) not in (1, 2) or not all(part.isdigit() for part in parts):
            raise ValueError(
                f"device_memory_by_rank key {key!r} is not a rank "
                f"(expected an int, '2', or '2.1')"
            )
        pp = int(parts[0])
        if pp >= pipeline:
            raise ValueError(
                f"device_memory_by_rank key {key!r}: rank {pp} out of range for "
                f"pipeline_parallel={pipeline}"
            )
        if len(parts) == 2 and int(parts[1]) >= expert:
            raise ValueError(
                f"device_memory_by_rank key {key!r}: ep_rank {parts[1]} out of "
                f"range for expert_parallel={expert}"
            )
        normalized[label] = capacity
    return normalized


def _expand_classes_to_coordinates(
    classes: list[tuple], expert_parallel: int
) -> list[tuple]:
    """Rewrite pipeline-int classes as ``(pp, ep)`` coordinate classes.

    Used when per-coordinate device budgets address EP ranks of a job whose
    *traces* are EP-symmetric: the coordinates are still distinct physical
    devices, so the budget split below needs them as individual members.
    Class structure is preserved -- EP peers of one stage stay together until
    a budget difference splits them.
    """
    if not classes or not isinstance(classes[0][0], int):
        return classes
    return [
        tuple((pp, ep) for pp in cls for ep in range(expert_parallel))
        for cls in classes
    ]


def _rank_capacity(rank, capacity_map: dict[str, float], default: float | None) -> float | None:
    """Device budget of one rank: exact coordinate, then stage, then default."""
    if capacity_map:
        label = rank_label(rank)
        if label in capacity_map:
            return capacity_map[label]
        if not isinstance(rank, int):
            stage = str(normalize_rank(rank)[0])
            if stage in capacity_map:
                return capacity_map[stage]
    return default


def _split_classes_by_capacity(
    classes: list[tuple], capacity_map: dict[str, float], default: float | None
) -> list[tuple[tuple, float | None]]:
    """Refine memory-equivalence classes so each is capacity-homogeneous.

    Class members generate identical traces, but with heterogeneous device
    budgets their *replays* can still differ (an allocator behaves differently
    against a smaller device, and success itself is per-budget), so a class
    spanning two budgets must be simulated once per budget.
    """
    refined: list[tuple[tuple, float | None]] = []
    for cls in classes:
        by_capacity: dict[float | None, list] = {}
        for rank in cls:
            by_capacity.setdefault(_rank_capacity(rank, capacity_map, default), []).append(rank)
        # Sort on (has-no-budget, budget, first member): capacities first so
        # that budget-less groups (capacity None) always trail, never mixing
        # None into a numeric comparison, and the first member breaks ties
        # deterministically.  The previous key compared a rank (int or tuple)
        # against the empty tuple -- a latent TypeError for int-ranked classes.
        for capacity, members in sorted(
            by_capacity.items(),
            key=lambda item: (
                item[0] is None,
                item[0] if item[0] is not None else 0.0,
                item[1][0],
            ),
        ):
            refined.append((tuple(members), capacity))
    return refined


def _budget_utilization(peak_gib: float, capacity: float | None) -> float:
    """Fraction of a rank's device budget its peak consumes.

    A class without a budget (``capacity is None``) never binds on
    utilization; a *zero* budget is maximally binding (infinite utilization),
    not invisible -- the distinction the old truthiness checks collapsed.
    """
    if capacity is None:
        return 0.0
    if capacity == 0:
        return float("inf")
    return peak_gib / capacity


@dataclass
class JobRun:
    """One (configuration, allocator) measurement across a job's ranks.

    ``rank_classes`` partitions the simulated ranks into memory-equivalence
    classes; ``class_runs`` holds one :class:`WorkloadRun` per class (its
    representative rank's replay), in the same order.  Aggregates weight each
    class by its member count, so deduplicated execution reports exactly what
    an exhaustive per-rank run would.  Class members are pipeline-rank ints
    for symmetric jobs and ``(pp, ep)`` coordinates when expert-parallel
    asymmetry makes EP ranks distinct.  ``class_capacities`` holds each
    class's device budget in GiB (``None`` when no budget applies), so with
    heterogeneous per-rank devices the *binding* rank is the one closest to
    exhausting its own budget -- which can differ from the peak-memory rank.
    """

    config: TrainingConfig
    allocator_name: str
    device_name: str
    rank_classes: list[tuple]
    class_runs: list[WorkloadRun]
    throughput: ThroughputEstimate | None = None
    class_capacities: list[float | None] = field(default_factory=list)
    #: Full discrete-event simulation behind the throughput estimate when the
    #: timeline backend produced it (None for the analytical backend); holds
    #: the per-rank event streams for experiments, digests and debugging.
    timeline: object = None

    @property
    def ranks(self) -> list:
        """Every simulated rank, ascending."""
        return sorted(rank for cls in self.rank_classes for rank in cls)

    @property
    def num_ranks(self) -> int:
        return sum(len(cls) for cls in self.rank_classes)

    @property
    def success(self) -> bool:
        """A job fits only if every one of its ranks fits."""
        return all(run.success for run in self.class_runs)

    def runs_by_rank(self) -> dict:
        """Expand the per-class runs to every requested rank."""
        expanded: dict = {}
        for cls, run in zip(self.rank_classes, self.class_runs):
            for rank in cls:
                expanded[rank] = run
        return dict(sorted(expanded.items()))

    @property
    def heterogeneous_budgets(self) -> bool:
        capacities = {c for c in self.class_capacities if c is not None}
        return len(capacities) > 1

    @property
    def binding_class_index(self) -> int:
        """Index of the class whose representative binds the job.

        With a uniform device budget this is simply the peak-memory class;
        with heterogeneous per-rank budgets it is the class with the highest
        *utilization* of its own budget (peak / capacity) -- a 30 GiB peak on
        a 40 GiB device binds harder than a 50 GiB peak on a 96 GiB one.
        """
        peaks = [run.replay.metrics.peak_allocated_gib for run in self.class_runs]
        if self.heterogeneous_budgets:
            utilizations = [
                _budget_utilization(peak, capacity)
                for peak, capacity in zip(peaks, self.class_capacities)
            ]
            return max(range(len(peaks)), key=utilizations.__getitem__)
        return max(range(len(peaks)), key=peaks.__getitem__)

    @property
    def binding_rank(self):
        """The rank whose memory pressure decides whether the job fits."""
        return self.rank_classes[self.binding_class_index][0]

    @property
    def binding_run(self) -> WorkloadRun:
        return self.class_runs[self.binding_class_index]

    @property
    def binding_utilization(self) -> float | None:
        """Peak / device budget of the binding rank (None without a budget)."""
        index = self.binding_class_index
        capacities = self.class_capacities
        capacity = capacities[index] if index < len(capacities) else None
        if capacity is None:
            return None
        return _budget_utilization(
            self.class_runs[index].replay.metrics.peak_allocated_gib, capacity
        )

    @property
    def peak_allocated_gib(self) -> float:
        """Job peak: the max over per-rank peaks (the binding rank's peak)."""
        return max(run.replay.metrics.peak_allocated_gib for run in self.class_runs)

    @property
    def mean_peak_allocated_gib(self) -> float:
        """Per-rank peak averaged over every requested rank (class-weighted)."""
        total = sum(
            len(cls) * run.replay.metrics.peak_allocated_gib
            for cls, run in zip(self.rank_classes, self.class_runs)
        )
        return total / self.num_ranks

    @property
    def peak_reserved_gib(self) -> float:
        return max(run.replay.metrics.peak_reserved_gib for run in self.class_runs)

    @property
    def comm_peak_bytes(self) -> int:
        """Job communication peak: max per-rank live COMM_BUFFER bytes.

        With a skewed MoE router this is dominated by the EP rank whose
        experts attract the most tokens (its all-to-all recv staging buffer
        scales with the routed load), which is exactly the transient the
        static planner must provision for.
        """
        return max(run.comm_peak_bytes for run in self.class_runs)

    @property
    def kv_peak_bytes(self) -> int:
        """Job KV-cache peak: max per-rank live KV_CACHE bytes.

        For a generation workload every micro-batch's per-layer caches are
        still live when the last decode sweep runs, so this is the dynamic
        allocation floor static planning must reserve; 0 for training and
        inference jobs.
        """
        return max(run.kv_peak_bytes for run in self.class_runs)

    @property
    def oom_ranks(self) -> list:
        """Every requested rank whose replay ran out of memory."""
        return sorted(
            rank
            for cls, run in zip(self.rank_classes, self.class_runs)
            if not run.success
            for rank in cls
        )

    @property
    def tflops(self) -> float | None:
        return self.throughput.tflops_per_gpu if self.throughput is not None else None

    @property
    def tokens_per_second(self) -> float | None:
        return self.throughput.tokens_per_second if self.throughput is not None else None

    @property
    def iteration_seconds(self) -> float | None:
        """Modelled iteration time of the job (excluding allocator overhead)."""
        return self.throughput.iteration_seconds if self.throughput is not None else None

    @property
    def comm_seconds(self) -> float | None:
        """All-to-all seconds of the most communication-bound rank."""
        return self.throughput.comm_seconds if self.throughput is not None else None

    @property
    def bubble_fraction(self) -> float | None:
        """Fraction of the iteration the busiest rank is not computing."""
        return self.throughput.bubble_fraction if self.throughput is not None else None

    @property
    def mfu(self) -> float | None:
        return self.throughput.mfu if self.throughput is not None else None

    def as_dict(self) -> dict:
        data = {
            "config": self.config.describe(),
            "device": self.device_name,
            "allocator": self.allocator_name,
            "ranks": [
                rank if isinstance(rank, int) else rank_label(rank) for rank in self.ranks
            ],
            "num_ranks": self.num_ranks,
            "unique_ranks": len(self.class_runs),
            "success": self.success,
            "binding_rank": (
                self.binding_rank
                if isinstance(self.binding_rank, int)
                else rank_label(self.binding_rank)
            ),
            "peak_allocated_gib": self.peak_allocated_gib,
            "mean_peak_allocated_gib": self.mean_peak_allocated_gib,
            "peak_reserved_gib": self.peak_reserved_gib,
            "comm_peak_bytes": self.comm_peak_bytes,
            "kv_peak_bytes": self.kv_peak_bytes,
            "per_rank_peak_allocated_gib": {
                rank_label(rank): run.replay.metrics.peak_allocated_gib
                for rank, run in self.runs_by_rank().items()
            },
        }
        if self.heterogeneous_budgets:
            data["per_rank_capacity_gib"] = {
                rank_label(rank): capacity
                for cls, capacity in zip(self.rank_classes, self.class_capacities)
                for rank in cls
            }
            if self.binding_utilization is not None:
                data["binding_utilization"] = self.binding_utilization
        if self.oom_ranks:
            data["oom_ranks"] = [
                rank if isinstance(rank, int) else rank_label(rank)
                for rank in self.oom_ranks
            ]
        if self.throughput is not None:
            data.update(self.throughput.row_columns())
        return data


def _job_rank_worker(payload: tuple):
    """Process-pool entry point: replay one representative rank of a job."""
    config, allocator_name, rank, kwargs, cache_dir, trace = payload
    if cache_dir is not None and persistent_cache_dir() != cache_dir:
        set_persistent_cache(cache_dir)
    return rank, run_workload(config, allocator_name, rank=rank, trace=trace, **kwargs)


def run_job(
    config: TrainingConfig,
    allocator_name: str,
    *,
    ranks="all",
    device_name: str = "A800-80GB",
    device_capacity_gib: float | None = None,
    device_memory_by_rank: dict | None = None,
    seed: int = 0,
    scale: float = 1.0,
    with_throughput: bool = True,
    timing: str = "timeline",
    stalloc_overrides: dict | None = None,
    cache=None,
    jobs: int | None = None,
    traces: dict | None = None,
    fabric: dict | None = None,
) -> JobRun:
    """Run one whole-job measurement: every requested rank, one allocator.

    Ranks are deduplicated into memory-equivalence classes first (see
    :func:`resolve_job_ranks`); each class representative is generated and
    replayed once -- independently cached by the content-addressed trace/plan
    cache -- and ``jobs`` > 1 fans the representatives out over the existing
    worker-pool machinery.  ``traces`` optionally supplies pre-generated
    traces by rank (the sweep engine ships shared traces to workers this way).

    ``timing`` selects the throughput backend: ``"timeline"`` (the default)
    runs the discrete-event simulator over every (pp, ep) rank's schedule --
    pipeline bubbles and all-to-all straggler stalls emerge from the same
    router draws that size the trace's communication transients -- while
    ``"analytical"`` keeps the legacy closed-form
    :class:`~repro.simulator.throughput.ThroughputModel` estimate.

    ``device_memory_by_rank`` optionally assigns heterogeneous device budgets
    (GiB) to individual ranks -- keys are pipeline ranks (``2``/``"2"``,
    applying to every EP coordinate of the stage) or exact coordinates
    (``"2.1"``/``(2, 1)``); unlisted ranks fall back to
    ``device_capacity_gib``/the device default.  Classes spanning several
    budgets are split so every replay runs against its own rank's device, and
    the binding rank becomes the rank with the highest utilization of its
    budget rather than the raw peak-memory rank.

    ``fabric`` optionally customises the device's network fabric for the
    timing estimate: a mapping of :class:`~repro.gpu.specs.GPUSpec` field
    overrides (``gpus_per_node``, ``intra_node_gbytes_per_sec``,
    ``inter_node_gbytes_per_sec``) applied over the stock spec, so a tiered
    2-node cluster prices its all-to-alls hierarchically.  Memory replay is
    fabric-independent; only the throughput backend sees the override.
    """
    jobs = _DEFAULT_JOBS if jobs is None else int(jobs)
    validate_timing(timing)
    device_capacity_gib = validate_capacity_gib(device_capacity_gib)
    with _obs_span("job.run", allocator=allocator_name, timing=timing):
        capacity_map = _normalize_capacity_map(device_memory_by_rank, config)
        classes = resolve_job_ranks(config, ranks)
        if any("." in label for label in capacity_map):
            # A budget addresses an individual (pp, ep) coordinate; even when
            # the traces are EP-symmetric the coordinates are distinct
            # devices, so the classes must expose them for the per-budget
            # split below.
            classes = _expand_classes_to_coordinates(
                classes, config.parallelism.expert_parallel
            )
        classes_with_capacity = _split_classes_by_capacity(
            classes, capacity_map, device_capacity_gib
        )
        rank_classes = [cls for cls, _ in classes_with_capacity]
        representatives = [cls[0] for cls in rank_classes]
        capacities = [capacity for _, capacity in classes_with_capacity]
        base_kwargs = dict(
            device_name=device_name,
            seed=seed,
            scale=scale,
            # Per-rank throughput estimates would all be recomputed (and
            # discarded) below; only replay.overhead_seconds is needed from
            # the per-rank runs, so the model is evaluated once at the job
            # level.
            with_throughput=False,
            stalloc_overrides=stalloc_overrides,
        )
        traces = traces or {}
        runs: dict = {}
        if jobs > 1 and len(representatives) > 1 and cache is None:
            payloads = [
                (
                    config,
                    allocator_name,
                    rank,
                    dict(base_kwargs, device_capacity_gib=capacity),
                    persistent_cache_dir(),
                    traces.get(rank),
                )
                for rank, capacity in zip(representatives, capacities)
            ]
            with ProcessPoolExecutor(max_workers=min(jobs, len(representatives))) as pool:
                runs.update(dict(pool.map(_job_rank_worker, payloads)))
        else:
            for rank, capacity in zip(representatives, capacities):
                runs[rank] = run_workload(
                    config,
                    allocator_name,
                    rank=rank,
                    device_capacity_gib=capacity,
                    trace=traces.get(rank),
                    cache=cache,
                    **base_kwargs,
                )
        class_runs = [runs[rank] for rank in representatives]
        # Record the concrete budget every class ran against (the device
        # default when no explicit budget applied), so binding-by-utilization
        # is well-defined whenever any heterogeneity is present.
        default_capacity = _default_capacity_gib(device_name, device_capacity_gib)
        resolved_capacities = [
            capacity if capacity is not None else default_capacity
            for capacity in capacities
        ]
        throughput = None
        timeline = None
        if with_throughput:
            gpu = GPU_SPECS.get(device_name)
            if gpu is not None and fabric:
                try:
                    gpu = dataclass_replace(gpu, **dict(fabric))
                except TypeError as error:
                    raise ValueError(f"unknown fabric field: {error}") from None
            if gpu is not None:
                # The pipeline advances at the pace of its slowest rank, so
                # the job-level estimate charges the worst per-rank allocator
                # overhead.
                overhead = max(run.replay.overhead_seconds for run in class_runs)
                throughput, timeline = _estimate_throughput(
                    config,
                    gpu,
                    timing,
                    allocator_overhead_seconds=overhead,
                    seed=seed,
                    scale=scale,
                )
        return JobRun(
            config=config,
            allocator_name=allocator_name,
            device_name=device_name,
            rank_classes=rank_classes,
            class_runs=class_runs,
            throughput=throughput,
            class_capacities=resolved_capacities,
            timeline=timeline,
        )


def default_allocator_lineup(*, include_stalloc: bool = True) -> list[str]:
    """The Figure 8 allocator line-up in presentation order."""
    lineup = ["torch2.0", "gmlake", "torch2.3", "torch_es"]
    if include_stalloc:
        lineup.append(STALLOC)
    return lineup


def all_known_allocators() -> list[str]:
    """Registry allocators plus the STAlloc variants handled by this runner."""
    return available_allocators() + [STALLOC, STALLOC_NO_REUSE]
