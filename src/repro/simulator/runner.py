"""High-level experiment runner: generate a trace, run allocators, report.

The experiments in :mod:`repro.experiments` all follow the same recipe:

1. build a :class:`TrainingConfig`,
2. generate its allocation trace,
3. replay the trace through one or more allocators on a fresh device,
4. compute memory-efficiency metrics (and optionally throughput).

This module implements that recipe once, including STAlloc's extra offline
step (profile + plan synthesis before the replay), plus a small trace cache so
sweeping five allocators over one configuration only generates the trace once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.allocators.base import Allocator
from repro.allocators.registry import available_allocators, create_allocator
from repro.core.stalloc import STAlloc, STAllocConfig
from repro.gpu.device import Device, GIB
from repro.simulator.replay import ReplayResult, replay_trace
from repro.simulator.throughput import GPU_SPECS, ThroughputModel
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig

#: Name under which STAlloc appears in experiment tables.
STALLOC = "stalloc"
#: STAlloc with the dynamic-reuse path disabled (the §9.4 ablation).
STALLOC_NO_REUSE = "stalloc_no_reuse"


@dataclass
class WorkloadRun:
    """One (configuration, allocator) measurement."""

    config: TrainingConfig
    allocator_name: str
    replay: ReplayResult
    device_name: str
    tflops: float | None = None
    planning_report: dict = field(default_factory=dict)

    @property
    def memory_efficiency(self) -> float:
        return self.replay.memory_efficiency

    @property
    def fragmentation_ratio(self) -> float:
        return self.replay.fragmentation_ratio

    @property
    def success(self) -> bool:
        return self.replay.success

    def as_dict(self) -> dict:
        data = {
            "config": self.config.describe(),
            "device": self.device_name,
        }
        data.update(self.replay.as_dict())
        if self.tflops is not None:
            data["tflops_per_gpu"] = round(self.tflops, 1)
        return data


class _TraceCache:
    """Memoises generated traces keyed by (config description, seed, scale)."""

    def __init__(self) -> None:
        self._traces: dict[tuple, Trace] = {}

    def get(self, config: TrainingConfig, *, seed: int, scale: float) -> Trace:
        key = (config.describe(), seed, scale)
        if key not in self._traces:
            self._traces[key] = TraceGenerator(config, seed=seed, scale=scale).generate()
        return self._traces[key]

    def clear(self) -> None:
        self._traces.clear()


_TRACE_CACHE = _TraceCache()


def clear_trace_cache() -> None:
    """Drop memoised traces (tests use this to control memory)."""
    _TRACE_CACHE.clear()


def generate_trace(config: TrainingConfig, *, seed: int = 0, scale: float = 1.0) -> Trace:
    """Generate (or fetch from cache) the allocation trace of a configuration."""
    return _TRACE_CACHE.get(config, seed=seed, scale=scale)


def _build_allocator(name: str, device: Device, trace: Trace) -> tuple[Allocator, dict]:
    """Instantiate an allocator by name, handling STAlloc's offline pipeline."""
    if name == STALLOC:
        stalloc = STAlloc.from_trace(trace)
        return stalloc.build_runtime_allocator(device), stalloc.planning_report()
    if name == STALLOC_NO_REUSE:
        stalloc = STAlloc.from_trace(trace, STAllocConfig(enable_dynamic_reuse=False))
        return stalloc.build_runtime_allocator(device), stalloc.planning_report()
    return create_allocator(name, device), {}


def run_workload(
    config: TrainingConfig,
    allocator_name: str,
    *,
    device_name: str = "A800-80GB",
    device_capacity_gib: float | None = None,
    seed: int = 0,
    scale: float = 1.0,
    with_throughput: bool = False,
    trace: Trace | None = None,
) -> WorkloadRun:
    """Run one configuration through one allocator and collect metrics."""
    if trace is None:
        trace = generate_trace(config, seed=seed, scale=scale)
    gpu = GPU_SPECS.get(device_name)
    capacity_gib = device_capacity_gib if device_capacity_gib is not None else (
        gpu.memory_gib if gpu else 80
    )
    device = Device(name=device_name, capacity=int(capacity_gib * GIB), reserved_overhead=0)
    allocator, planning_report = _build_allocator(allocator_name, device, trace)
    replay = replay_trace(trace, allocator)
    tflops = None
    if with_throughput and gpu is not None:
        model = ThroughputModel(gpu)
        tflops = model.tflops(config, allocator_overhead_seconds=replay.overhead_seconds)
    return WorkloadRun(
        config=config,
        allocator_name=allocator_name,
        replay=replay,
        device_name=device_name,
        tflops=tflops,
        planning_report=planning_report,
    )


def run_workload_suite(
    config: TrainingConfig,
    allocator_names: list[str],
    *,
    device_name: str = "A800-80GB",
    device_capacity_gib: float | None = None,
    seed: int = 0,
    scale: float = 1.0,
    with_throughput: bool = False,
) -> dict[str, WorkloadRun]:
    """Run one configuration through several allocators, sharing the trace."""
    trace = generate_trace(config, seed=seed, scale=scale)
    runs: dict[str, WorkloadRun] = {}
    for name in allocator_names:
        runs[name] = run_workload(
            config,
            name,
            device_name=device_name,
            device_capacity_gib=device_capacity_gib,
            seed=seed,
            scale=scale,
            with_throughput=with_throughput,
            trace=trace,
        )
    return runs


def default_allocator_lineup(*, include_stalloc: bool = True) -> list[str]:
    """The Figure 8 allocator line-up in presentation order."""
    lineup = ["torch2.0", "gmlake", "torch2.3", "torch_es"]
    if include_stalloc:
        lineup.append(STALLOC)
    return lineup


def all_known_allocators() -> list[str]:
    """Registry allocators plus the STAlloc variants handled by this runner."""
    return available_allocators() + [STALLOC, STALLOC_NO_REUSE]
