"""Analytical training-throughput model.

The paper's throughput results come from two effects:

1. the *configuration* chosen (pipeline schedule, tensor-parallel degree,
   recomputation, offloading) -- which is exactly what fragmentation forces
   developers to change when a high-throughput configuration OOMs;
2. the *allocator's own runtime overhead* (driver calls, virtual-memory
   operations) added to every iteration.

This module models both analytically: model FLOPs per iteration, a per-GPU
achievable-FLOPS ceiling, pipeline-bubble and parallelism penalties, plus the
allocator overhead measured during replay.  Absolute TFLOPS numbers are
indicative; what the reproduction preserves is the ordering and rough
magnitude of the differences between configurations and allocators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Re-exported for backwards compatibility: the accelerator specs moved to
# repro.gpu.specs so the memory model (Device presets) and the timing models
# share one definition per device.
from repro.gpu.specs import GPU_SPECS, GPUSpec  # noqa: F401
from repro.workloads.training import TrainingConfig


@dataclass
class ThroughputEstimate:
    """Per-iteration timing and the derived per-GPU TFLOPS.

    Produced by both timing backends: :class:`ThroughputModel` (closed-form,
    ``source="analytical"``) and the discrete-event simulator in
    :mod:`repro.timeline` (``source="timeline"``), so everything downstream
    (runner aggregation, sweep rows, ``--compare``) consumes one shape.
    """

    iteration_seconds: float
    model_flops_per_iteration: float
    num_gpus: int
    allocator_overhead_seconds: float = 0.0
    tokens_per_iteration: int = 0
    #: Seconds the binding rank spends in expert-parallel all-to-all
    #: collectives (0 for the analytical backend, which has no routed load).
    comm_seconds: float = 0.0
    #: Fraction of the iteration the busiest rank is not computing -- the
    #: closed-form pipeline-bubble fraction for the analytical backend, the
    #: emergent (bubbles + straggler stalls) fraction for the timeline.
    bubble_fraction: float = 0.0
    #: Seconds the binding rank spends in autoregressive decode steps (0 for
    #: training/inference workloads and for the analytical backend, which
    #: folds decode into the closed-form iteration time).
    decode_seconds: float = 0.0
    #: Dense peak TFLOPS of the device the estimate was made for (0 when
    #: unknown; enables the :attr:`mfu` property).
    peak_tflops: float = 0.0
    #: Which timing backend produced this estimate.
    source: str = "analytical"

    @property
    def total_seconds(self) -> float:
        """Wall-clock of one iteration including allocator overhead."""
        return self.iteration_seconds + self.allocator_overhead_seconds

    @property
    def tflops_per_gpu(self) -> float:
        """Model-FLOPs throughput per GPU (the number frameworks report)."""
        total_time = self.total_seconds
        if total_time <= 0:
            return 0.0
        return self.model_flops_per_iteration / self.num_gpus / total_time / 1e12

    @property
    def tokens_per_second(self) -> float:
        """Training tokens consumed per second across the whole job."""
        total_time = self.total_seconds
        if total_time <= 0:
            return 0.0
        return self.tokens_per_iteration / total_time

    @property
    def mfu(self) -> float:
        """Model-FLOPs utilisation: achieved TFLOPS over the device peak.

        Derived from :attr:`tflops_per_gpu`, so it charges the allocator
        overhead like every other achieved-throughput number here (always
        exactly ``tflops_per_gpu / peak_tflops``); the overhead-free MFU of
        the simulation alone is :attr:`repro.timeline.TimelineResult.mfu`.
        """
        if self.peak_tflops <= 0:
            return 0.0
        return self.tflops_per_gpu / self.peak_tflops

    def row_columns(self) -> dict:
        """The throughput columns of one result row, in presentation order.

        The single definition consumed by ``WorkloadRun.as_dict``,
        ``JobRun.as_dict`` and the sweep engine's row builder -- adding a
        column here is the whole change (plus its
        ``repro.sweep.compare.METRIC_DIRECTIONS`` entry).  Full precision on
        purpose: rounding is display-only (``repro.sweep.results._fmt``), so
        result diffs compare real values.
        """
        return {
            "tflops_per_gpu": self.tflops_per_gpu,
            "tokens_per_second": self.tokens_per_second,
            "iteration_seconds": self.iteration_seconds,
            "comm_seconds": self.comm_seconds,
            "decode_seconds": self.decode_seconds,
            "bubble_fraction": self.bubble_fraction,
            "mfu": self.mfu,
            "timing": self.source,
        }


class ThroughputModel:
    """Analytical step-time model for one training configuration."""

    #: Extra compute fraction from full activation recomputation (~1 forward).
    RECOMPUTE_OVERHEAD = 1.0 / 3.0
    #: Per-doubling penalty of tensor-parallel communication.
    TP_PENALTY_PER_DOUBLING = 0.055
    #: Multiplier applied when activations are offloaded to host memory.
    OFFLOAD_PENALTY = 1.30
    #: Multiplier for the distributed optimizer's extra communication.
    ZERO_PENALTY = 1.02

    def __init__(self, gpu: GPUSpec):
        self.gpu = gpu

    # ------------------------------------------------------------------ #
    # FLOPs accounting
    # ------------------------------------------------------------------ #
    def model_flops_per_iteration(self, config: TrainingConfig) -> float:
        """Model FLOPs of one optimizer step across the whole job.

        Uses the standard ``6 * active_params * tokens`` estimate plus the
        quadratic attention term, and excludes recomputation (so recompute
        configurations show the expected drop in *reported* TFLOPS).
        """
        model = config.model
        tokens = config.tokens_per_iteration
        dense = 6.0 * model.active_params() * tokens
        attention = (
            12.0
            * model.num_layers
            * model.hidden_size
            * config.sequence_length
            * tokens
        )
        return dense + attention

    def workload_flops_fraction(self, config: TrainingConfig) -> float:
        """Fraction of the train-step FLOPs this workload actually executes.

        :meth:`model_flops_per_iteration` counts a full forward+backward pass
        (the standard ``6 * params * tokens``); forward-only inference and
        generation workloads run just the forward third of it.  Training is
        exactly 1.0, so existing estimates are bit-identical.
        """
        return 1.0 if config.is_training else 1.0 / 3.0

    # ------------------------------------------------------------------ #
    # Step-time model
    # ------------------------------------------------------------------ #
    def pipeline_bubble_fraction(self, config: TrainingConfig) -> float:
        """Fraction of the iteration the first stage idles in pipeline bubbles."""
        stages = config.parallelism.pipeline_parallel
        if stages <= 1:
            return 0.0
        chunks = config.parallelism.virtual_pipeline_chunks
        microbatches = config.num_microbatches
        return (stages - 1) / (chunks * microbatches + stages - 1)

    def compute_multiplier(self, config: TrainingConfig) -> float:
        """Extra hardware compute relative to model FLOPs (recompute etc.)."""
        multiplier = 1.0
        if config.recompute:
            multiplier += self.RECOMPUTE_OVERHEAD
        return multiplier

    def communication_multiplier(self, config: TrainingConfig) -> float:
        """Slowdown from tensor-parallel / ZeRO / offload communication."""
        multiplier = 1.0
        tp = config.parallelism.tensor_parallel
        if tp > 1:
            multiplier *= 1.0 + self.TP_PENALTY_PER_DOUBLING * math.log2(tp)
        if config.uses_distributed_optimizer:
            multiplier *= self.ZERO_PENALTY
        if config.offload_activations:
            multiplier *= self.OFFLOAD_PENALTY
        return multiplier

    def estimate(
        self,
        config: TrainingConfig,
        *,
        allocator_overhead_seconds: float = 0.0,
        num_gpus: int | None = None,
    ) -> ThroughputEstimate:
        """Estimate one iteration's duration and throughput."""
        num_gpus = num_gpus or config.parallelism.num_gpus
        model_flops = self.model_flops_per_iteration(config) * self.workload_flops_fraction(config)
        per_gpu_flops = model_flops / num_gpus
        compute_seconds = (
            per_gpu_flops * self.compute_multiplier(config) / self.gpu.achievable_flops
        )
        bubble = self.pipeline_bubble_fraction(config)
        pipeline_seconds = compute_seconds / max(1e-9, (1.0 - bubble))
        iteration_seconds = pipeline_seconds * self.communication_multiplier(config)
        return ThroughputEstimate(
            iteration_seconds=iteration_seconds,
            model_flops_per_iteration=model_flops,
            num_gpus=num_gpus,
            allocator_overhead_seconds=allocator_overhead_seconds,
            tokens_per_iteration=config.tokens_per_iteration,
            bubble_fraction=bubble,
            peak_tflops=self.gpu.peak_tflops,
            source="analytical",
        )

    def tflops(self, config: TrainingConfig, *, allocator_overhead_seconds: float = 0.0) -> float:
        """Convenience wrapper returning per-GPU model TFLOPS."""
        return self.estimate(
            config, allocator_overhead_seconds=allocator_overhead_seconds
        ).tflops_per_gpu
