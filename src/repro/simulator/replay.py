"""Replay an allocation trace against an allocator on a simulated device."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.allocators.base import AllocationHints, Allocator
from repro.gpu.errors import OutOfMemoryError
from repro.simulator.metrics import MemoryMetrics
from repro.workloads.trace import Trace


@dataclass
class ReplayResult:
    """Outcome of replaying one trace through one allocator."""

    allocator_name: str
    metrics: MemoryMetrics
    success: bool = True
    oom_at_event: int | None = None
    oom_request_bytes: int = 0
    events_replayed: int = 0
    allocator_stats: dict = field(default_factory=dict)
    overhead_seconds: float = 0.0

    @property
    def memory_efficiency(self) -> float:
        return self.metrics.memory_efficiency

    @property
    def fragmentation_ratio(self) -> float:
        return self.metrics.fragmentation_ratio

    def as_dict(self) -> dict:
        data = {
            "allocator": self.allocator_name,
            "success": self.success,
            "events_replayed": self.events_replayed,
            "overhead_seconds": round(self.overhead_seconds, 4),
        }
        data.update(self.metrics.as_dict())
        if not self.success:
            data["oom_at_event"] = self.oom_at_event
            data["oom_request_bytes"] = self.oom_request_bytes
        return data


def replay_trace(trace: Trace, allocator: Allocator, *, stop_on_oom: bool = True) -> ReplayResult:
    """Feed every event of ``trace`` to ``allocator`` and collect peak metrics.

    When the allocator raises an out-of-memory error the replay stops (the
    training job would have crashed) and the result is flagged unsuccessful;
    peak metrics cover the portion replayed up to that point.
    """
    events_replayed = 0
    oom_at_event: int | None = None
    oom_request_bytes = 0
    failed_requests: set[int] = set()
    for index, event in enumerate(trace.events):
        try:
            if event.is_alloc():
                hints = AllocationHints(
                    phase=event.phase,
                    module=event.module,
                    dyn=event.dyn,
                    category=event.category,
                )
                allocator.allocate(event.req_id, event.size, hints)
            else:
                if event.req_id in failed_requests:
                    continue
                allocator.free(event.req_id)
        except OutOfMemoryError:
            if oom_at_event is None:
                oom_at_event = index
                oom_request_bytes = event.size
            failed_requests.add(event.req_id)
            if stop_on_oom:
                break
            continue
        events_replayed += 1

    metrics = MemoryMetrics(
        peak_allocated_bytes=allocator.stats.peak_allocated,
        peak_reserved_bytes=allocator.stats.peak_reserved,
    )
    return ReplayResult(
        allocator_name=allocator.name,
        metrics=metrics,
        success=oom_at_event is None,
        oom_at_event=oom_at_event,
        oom_request_bytes=oom_request_bytes,
        events_replayed=events_replayed,
        allocator_stats=allocator.stats.snapshot(),
        overhead_seconds=allocator.overhead_seconds(),
    )
