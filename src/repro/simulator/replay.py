"""Replay an allocation trace against an allocator on a simulated device."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.allocators.base import AllocationHints, Allocator
from repro.gpu.errors import OutOfMemoryError
from repro.obs.tracer import is_enabled as _obs_enabled
from repro.obs.tracer import observe as _obs_observe
from repro.obs.tracer import span as _obs_span
from repro.simulator.metrics import MemoryMetrics
from repro.workloads.trace import Trace


@dataclass
class ReplayResult:
    """Outcome of replaying one trace through one allocator."""

    allocator_name: str
    metrics: MemoryMetrics
    success: bool = True
    oom_at_event: int | None = None
    oom_request_bytes: int = 0
    events_replayed: int = 0
    failed_allocs: int = 0
    skipped_frees: int = 0
    allocator_stats: dict = field(default_factory=dict)
    overhead_seconds: float = 0.0

    @property
    def memory_efficiency(self) -> float:
        return self.metrics.memory_efficiency

    @property
    def fragmentation_ratio(self) -> float:
        return self.metrics.fragmentation_ratio

    @property
    def events_skipped(self) -> int:
        """Events not applied to the allocator (failed allocs + their frees)."""
        return self.failed_allocs + self.skipped_frees

    def as_dict(self) -> dict:
        data = {
            "allocator": self.allocator_name,
            "success": self.success,
            "events_replayed": self.events_replayed,
            # Full precision: as_dict feeds sweep rows and compare diffs, and
            # rounding is display-only (results._fmt).  Sub-100us allocator
            # overheads must survive the round trip.
            "overhead_seconds": self.overhead_seconds,
        }
        data.update(self.metrics.as_dict())
        if not self.success:
            data["oom_at_event"] = self.oom_at_event
            data["oom_request_bytes"] = self.oom_request_bytes
        # Skip accounting is reported whenever events were skipped, not only
        # on failure: a stop_on_oom=False replay can finish "successfully"
        # while having dropped requests, and that must stay visible.
        if not self.success or self.failed_allocs or self.skipped_frees:
            data["failed_allocs"] = self.failed_allocs
            data["skipped_frees"] = self.skipped_frees
        return data


def replay_trace(trace: Trace, allocator: Allocator, *, stop_on_oom: bool = True) -> ReplayResult:
    """Feed every event of ``trace`` to ``allocator`` and collect peak metrics.

    When the allocator raises an out-of-memory error the replay stops (the
    training job would have crashed) and the result is flagged unsuccessful;
    peak metrics cover the portion replayed up to that point.

    With ``stop_on_oom=False`` the replay instead skips the failed request and
    keeps going: the failed allocation and its matching free are both counted
    as skipped (never shown to the allocator), so at the end
    ``events_replayed + events_skipped`` equals the trace's event count.

    Allocators that can apply a whole trace in one vectorized pass (see
    :meth:`Allocator.batch_replay`) skip the per-event loop entirely; they
    fall back to it whenever the outcome could differ (OOM, pathological
    pairing, per-event hints), so results are identical either way.
    """
    if not _obs_enabled():
        return _replay_trace(trace, allocator, stop_on_oom=stop_on_oom)
    started = time.perf_counter()
    with _obs_span("replay.trace", allocator=allocator.name) as obs_replay:
        result = _replay_trace(trace, allocator, stop_on_oom=stop_on_oom)
        obs_replay.set(events=result.events_replayed, success=result.success)
    elapsed = time.perf_counter() - started
    if elapsed > 0:
        _obs_observe("replay.events_per_sec", result.events_replayed / elapsed)
    return result


def _replay_trace(trace: Trace, allocator: Allocator, *, stop_on_oom: bool) -> ReplayResult:
    batched = allocator.batch_replay(trace, stop_on_oom=stop_on_oom)
    if batched is not None:
        return ReplayResult(
            allocator_name=allocator.name,
            metrics=MemoryMetrics(
                peak_allocated_bytes=allocator.stats.peak_allocated,
                peak_reserved_bytes=allocator.stats.peak_reserved,
            ),
            success=True,
            events_replayed=batched,
            allocator_stats=allocator.stats.snapshot(),
            overhead_seconds=allocator.overhead_seconds(),
        )
    events_replayed = 0
    failed_allocs = 0
    skipped_frees = 0
    oom_at_event: int | None = None
    oom_request_bytes = 0
    failed_requests: set[int] = set()
    for index, event in enumerate(trace.events):
        if event.is_alloc():
            hints = AllocationHints(
                phase=event.phase,
                module=event.module,
                dyn=event.dyn,
                category=event.category,
            )
            try:
                allocator.allocate(event.req_id, event.size, hints)
            except OutOfMemoryError:
                if oom_at_event is None:
                    oom_at_event = index
                    oom_request_bytes = event.size
                failed_requests.add(event.req_id)
                failed_allocs += 1
                if stop_on_oom:
                    break
                continue
        else:
            if event.req_id in failed_requests:
                # The matching allocation never happened; drop the request
                # from the failed set so the bookkeeping stays bounded and
                # a (pathological) re-use of the id is not swallowed too.
                failed_requests.discard(event.req_id)
                skipped_frees += 1
                continue
            allocator.free(event.req_id)
        events_replayed += 1

    metrics = MemoryMetrics(
        peak_allocated_bytes=allocator.stats.peak_allocated,
        peak_reserved_bytes=allocator.stats.peak_reserved,
    )
    return ReplayResult(
        allocator_name=allocator.name,
        metrics=metrics,
        success=oom_at_event is None,
        oom_at_event=oom_at_event,
        oom_request_bytes=oom_request_bytes,
        events_replayed=events_replayed,
        failed_allocs=failed_allocs,
        skipped_frees=skipped_frees,
        allocator_stats=allocator.stats.snapshot(),
        overhead_seconds=allocator.overhead_seconds(),
    )
