"""Memory-efficiency metrics (§2.2).

The paper's central metric is memory efficiency ``E = M_a / M_r`` where
``M_a`` is the peak allocated (theoretically required) memory and ``M_r`` the
peak memory reserved by the allocator.  The fragmentation ratio is ``1 - E``
and the fragmentation bytes are ``M_r - M_a``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import GIB


@dataclass(frozen=True)
class MemoryMetrics:
    """Peak memory accounting of one replay."""

    peak_allocated_bytes: int
    peak_reserved_bytes: int

    def __post_init__(self) -> None:
        if self.peak_allocated_bytes < 0 or self.peak_reserved_bytes < 0:
            raise ValueError("peak byte counts must be non-negative")

    @property
    def memory_efficiency(self) -> float:
        """``E = M_a / M_r`` (defined as 1.0 when nothing was reserved)."""
        if self.peak_reserved_bytes == 0:
            return 1.0
        return min(1.0, self.peak_allocated_bytes / self.peak_reserved_bytes)

    @property
    def fragmentation_ratio(self) -> float:
        """Fraction of reserved memory wasted: ``1 - E``."""
        return 1.0 - self.memory_efficiency

    @property
    def fragmentation_bytes(self) -> int:
        """Reserved-but-unusable bytes at the peak: ``M_r - M_a``."""
        return max(0, self.peak_reserved_bytes - self.peak_allocated_bytes)

    @property
    def peak_allocated_gib(self) -> float:
        return self.peak_allocated_bytes / GIB

    @property
    def peak_reserved_gib(self) -> float:
        return self.peak_reserved_bytes / GIB

    @property
    def fragmentation_gib(self) -> float:
        return self.fragmentation_bytes / GIB

    def as_dict(self) -> dict:
        return {
            "peak_allocated_gib": round(self.peak_allocated_gib, 3),
            "peak_reserved_gib": round(self.peak_reserved_gib, 3),
            "memory_efficiency": round(self.memory_efficiency, 4),
            "fragmentation_ratio": round(self.fragmentation_ratio, 4),
            "fragmentation_gib": round(self.fragmentation_gib, 3),
        }


def fragmentation_reduction(baseline: MemoryMetrics, improved: MemoryMetrics) -> float:
    """Relative reduction of fragmentation bytes (the paper's "reduces by X%")."""
    if baseline.fragmentation_bytes == 0:
        return 0.0
    saved = baseline.fragmentation_bytes - improved.fragmentation_bytes
    return saved / baseline.fragmentation_bytes
