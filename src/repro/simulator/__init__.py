"""Trace replay, memory metrics, and the timing models (timeline + analytical)."""

from repro.simulator.metrics import MemoryMetrics
from repro.simulator.replay import ReplayResult, replay_trace
from repro.simulator.runner import (
    VALID_TIMINGS,
    JobRun,
    WorkloadRun,
    run_job,
    run_workload,
    run_workload_suite,
)
from repro.simulator.throughput import GPUSpec, ThroughputModel, GPU_SPECS

__all__ = [
    "MemoryMetrics",
    "ReplayResult",
    "replay_trace",
    "VALID_TIMINGS",
    "JobRun",
    "WorkloadRun",
    "run_job",
    "run_workload",
    "run_workload_suite",
    "GPUSpec",
    "GPU_SPECS",
    "ThroughputModel",
]
