"""Trace replay, memory metrics, and the analytical throughput model."""

from repro.simulator.metrics import MemoryMetrics
from repro.simulator.replay import ReplayResult, replay_trace
from repro.simulator.runner import WorkloadRun, run_workload, run_workload_suite
from repro.simulator.throughput import GPUSpec, ThroughputModel, GPU_SPECS

__all__ = [
    "MemoryMetrics",
    "ReplayResult",
    "replay_trace",
    "WorkloadRun",
    "run_workload",
    "run_workload_suite",
    "GPUSpec",
    "GPU_SPECS",
    "ThroughputModel",
]
