"""Exceptions raised by the simulated GPU device and allocators."""

from __future__ import annotations


class DeviceError(Exception):
    """Base class for all simulated-device errors."""


class OutOfMemoryError(DeviceError):
    """Raised when a request cannot be satisfied by the device's capacity.

    This is the analogue of ``cudaErrorMemoryAllocation`` /
    ``torch.cuda.OutOfMemoryError``.  The exception carries enough context to
    produce the familiar "tried to allocate X, Y reserved, Z free" message.
    """

    def __init__(self, requested: int, capacity: int, in_use: int, message: str | None = None):
        self.requested = int(requested)
        self.capacity = int(capacity)
        self.in_use = int(in_use)
        if message is None:
            free = self.capacity - self.in_use
            message = (
                f"out of memory: tried to allocate {self.requested} bytes, "
                f"device capacity {self.capacity} bytes, "
                f"{self.in_use} bytes in use, {free} bytes free"
            )
        super().__init__(message)


class InvalidAddressError(DeviceError):
    """Raised when freeing or mapping an address the device does not know."""


class DoubleFreeError(DeviceError):
    """Raised when an allocation is freed twice."""


class AllocatorError(Exception):
    """Base class for allocator-level (not device-level) failures."""


class PlanMismatchError(AllocatorError):
    """Raised when a runtime request cannot be matched against the static plan."""
