"""Canonical accelerator specifications (the single source of truth).

Every layer that needs to know what a device *is* -- the memory capacity the
:class:`~repro.gpu.device.Device` presets enforce, the compute ceiling the
analytical :class:`~repro.simulator.throughput.ThroughputModel` divides by,
and the all-to-all bandwidth the :mod:`repro.timeline` simulator charges for
expert-parallel collectives -- reads it from :data:`GPU_SPECS` here, so a
testbed device cannot drift apart between the memory and timing models.

Bandwidth is optionally *tiered*: a spec may carry distinct intra-node
(NVLink-class) and inter-node (IB-class) all-to-all rates plus the node size
(``gpus_per_node``).  The flat :attr:`GPUSpec.a2a_gbytes_per_sec` stays the
degenerate single-tier default -- every stock spec leaves the tier fields
unset, so existing timing results are bit-identical -- and
:class:`NodeTopology` maps ``(pp, ep)`` rank coordinates onto nodes so the
timeline can price each participant's tier mix.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Compute and memory capability of one accelerator."""

    name: str
    peak_tflops: float       # dense BF16 peak
    achievable_mfu: float    # model FLOPs utilisation of a well-tuned run
    memory_gib: int
    #: Effective per-GPU all-to-all bandwidth (GB/s) for expert-parallel
    #: dispatch/combine collectives -- the NVLink/IB mix a well-tuned MoE job
    #: achieves, not the link peak.  Used by the timeline simulator to turn
    #: routed bytes into communication seconds, and as the single flat tier
    #: when the hierarchical fields below are unset.
    a2a_gbytes_per_sec: float = 25.0
    #: Intra-node all-to-all bandwidth (GB/s, NVLink-class); ``None`` falls
    #: back to the flat :attr:`a2a_gbytes_per_sec`.
    intra_node_gbytes_per_sec: float | None = None
    #: Inter-node all-to-all bandwidth (GB/s, IB-class); ``None`` falls back
    #: to the flat :attr:`a2a_gbytes_per_sec`.
    inter_node_gbytes_per_sec: float | None = None
    #: Ranks per node for the hierarchical fabric; ``0`` means "one node"
    #: (every rank co-located -- the degenerate single-tier topology).
    gpus_per_node: int = 0
    #: HBM read bandwidth (GB/s).  Decode steps of generation workloads are
    #: KV-read bound -- each step streams the whole cached context through the
    #: attention kernels -- so the timeline prices a decode step's memory term
    #: as ``kv_bytes(context) / hbm_gbytes_per_sec``.
    hbm_gbytes_per_sec: float = 2000.0

    def __post_init__(self) -> None:
        if self.a2a_gbytes_per_sec <= 0:
            raise ValueError(
                f"a2a_gbytes_per_sec must be positive, got {self.a2a_gbytes_per_sec}"
            )
        if self.hbm_gbytes_per_sec <= 0:
            raise ValueError(
                f"hbm_gbytes_per_sec must be positive, got {self.hbm_gbytes_per_sec}"
            )
        for field_name in ("intra_node_gbytes_per_sec", "inter_node_gbytes_per_sec"):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if not isinstance(self.gpus_per_node, int) or isinstance(self.gpus_per_node, bool) \
                or self.gpus_per_node < 0:
            raise ValueError(
                f"gpus_per_node must be a non-negative int, got {self.gpus_per_node!r}"
            )

    @property
    def achievable_flops(self) -> float:
        return self.peak_tflops * 1e12 * self.achievable_mfu

    # ------------------------------------------------------------------ #
    # Tiered-fabric accessors
    # ------------------------------------------------------------------ #
    @property
    def intra_tier_gbytes_per_sec(self) -> float:
        """Effective fast-tier rate (falls back to the flat a2a rate)."""
        if self.intra_node_gbytes_per_sec is not None:
            return self.intra_node_gbytes_per_sec
        return self.a2a_gbytes_per_sec

    @property
    def inter_tier_gbytes_per_sec(self) -> float:
        """Effective slow-tier rate (falls back to the flat a2a rate)."""
        if self.inter_node_gbytes_per_sec is not None:
            return self.inter_node_gbytes_per_sec
        return self.a2a_gbytes_per_sec

    @property
    def fastest_tier_gbytes_per_sec(self) -> float:
        """The fastest effective tier -- what admissible bounds must price at."""
        return max(self.intra_tier_gbytes_per_sec, self.inter_tier_gbytes_per_sec)

    @property
    def is_tiered(self) -> bool:
        """Whether the hierarchical pricing path can differ from the flat one.

        A multi-node layout with equal tiers is *not* tiered: every byte moves
        at the same rate, so the flat formula is exact (and bit-identical to
        the single-tier simulator).
        """
        return (
            self.gpus_per_node > 0
            and self.intra_tier_gbytes_per_sec != self.inter_tier_gbytes_per_sec
        )


@dataclass(frozen=True)
class NodeTopology:
    """Placement of ``(pp, ep)`` rank coordinates onto nodes.

    Ranks are linearised expert-major (``index = ep * pp + stage``) and
    filled into nodes of ``gpus_per_node`` consecutive slots -- the layout a
    launcher assigns when expert-parallel groups are the outer dimension.
    ``gpus_per_node <= 0`` collapses to a single node (every coordinate
    co-located), the degenerate topology the flat fabric prices.
    """

    pipeline_parallel: int
    expert_parallel: int
    gpus_per_node: int = 0

    def __post_init__(self) -> None:
        if self.pipeline_parallel < 1 or self.expert_parallel < 1:
            raise ValueError(
                "pipeline_parallel and expert_parallel must be >= 1, got "
                f"({self.pipeline_parallel}, {self.expert_parallel})"
            )

    @property
    def num_ranks(self) -> int:
        return self.pipeline_parallel * self.expert_parallel

    @property
    def num_nodes(self) -> int:
        if self.gpus_per_node <= 0:
            return 1
        return -(-self.num_ranks // self.gpus_per_node)

    def node_of(self, stage: int, ep: int) -> int:
        """Node index hosting coordinate ``(stage, ep)``."""
        if self.gpus_per_node <= 0:
            return 0
        return (ep * self.pipeline_parallel + stage) // self.gpus_per_node

    def intra_fraction(self, stage: int, ep: int) -> float:
        """Fraction of this rank's EP peers (itself included) on its node.

        In a balanced all-to-all each participant exchanges ``1/E`` of its
        bytes with every EP peer; the share staying on the fast tier is the
        share of peers co-located with it.
        """
        experts = self.expert_parallel
        if self.gpus_per_node <= 0 or experts <= 1:
            return 1.0
        node = self.node_of(stage, ep)
        local = sum(1 for peer in range(experts) if self.node_of(stage, peer) == node)
        return local / experts

    def ep_group_spans_nodes(self, stage: int) -> bool:
        """Whether stage ``stage``'s expert-parallel group crosses nodes."""
        if self.gpus_per_node <= 0:
            return False
        nodes = {self.node_of(stage, ep) for ep in range(self.expert_parallel)}
        return len(nodes) > 1


#: The paper's testbed accelerators, keyed by the device name used throughout
#: the experiments and sweep specs.
GPU_SPECS: dict[str, GPUSpec] = {
    "A800-80GB": GPUSpec(
        "A800-80GB", peak_tflops=312.0, achievable_mfu=0.52, memory_gib=80,
        a2a_gbytes_per_sec=50.0, hbm_gbytes_per_sec=2039.0,
    ),
    "H200-141GB": GPUSpec(
        "H200-141GB", peak_tflops=989.0, achievable_mfu=0.47, memory_gib=141,
        a2a_gbytes_per_sec=112.0, hbm_gbytes_per_sec=4800.0,
    ),
    "MI210-64GB": GPUSpec(
        "MI210-64GB", peak_tflops=181.0, achievable_mfu=0.45, memory_gib=64,
        a2a_gbytes_per_sec=40.0, hbm_gbytes_per_sec=1638.0,
    ),
}


def get_gpu(name_or_spec: str | GPUSpec) -> GPUSpec:
    """Resolve a device name (or pass an explicit spec through) to a GPUSpec."""
    if isinstance(name_or_spec, GPUSpec):
        return name_or_spec
    try:
        return GPU_SPECS[name_or_spec]
    except KeyError:
        raise ValueError(
            f"unknown GPU {name_or_spec!r}; available: {', '.join(sorted(GPU_SPECS))}"
        ) from None
