"""Canonical accelerator specifications (the single source of truth).

Every layer that needs to know what a device *is* -- the memory capacity the
:class:`~repro.gpu.device.Device` presets enforce, the compute ceiling the
analytical :class:`~repro.simulator.throughput.ThroughputModel` divides by,
and the all-to-all bandwidth the :mod:`repro.timeline` simulator charges for
expert-parallel collectives -- reads it from :data:`GPU_SPECS` here, so a
testbed device cannot drift apart between the memory and timing models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Compute and memory capability of one accelerator."""

    name: str
    peak_tflops: float       # dense BF16 peak
    achievable_mfu: float    # model FLOPs utilisation of a well-tuned run
    memory_gib: int
    #: Effective per-GPU all-to-all bandwidth (GB/s) for expert-parallel
    #: dispatch/combine collectives -- the NVLink/IB mix a well-tuned MoE job
    #: achieves, not the link peak.  Used by the timeline simulator to turn
    #: routed bytes into communication seconds.
    a2a_gbytes_per_sec: float = 25.0

    @property
    def achievable_flops(self) -> float:
        return self.peak_tflops * 1e12 * self.achievable_mfu


#: The paper's testbed accelerators, keyed by the device name used throughout
#: the experiments and sweep specs.
GPU_SPECS: dict[str, GPUSpec] = {
    "A800-80GB": GPUSpec(
        "A800-80GB", peak_tflops=312.0, achievable_mfu=0.52, memory_gib=80,
        a2a_gbytes_per_sec=50.0,
    ),
    "H200-141GB": GPUSpec(
        "H200-141GB", peak_tflops=989.0, achievable_mfu=0.47, memory_gib=141,
        a2a_gbytes_per_sec=112.0,
    ),
    "MI210-64GB": GPUSpec(
        "MI210-64GB", peak_tflops=181.0, achievable_mfu=0.45, memory_gib=64,
        a2a_gbytes_per_sec=40.0,
    ),
}


def get_gpu(name_or_spec: str | GPUSpec) -> GPUSpec:
    """Resolve a device name (or pass an explicit spec through) to a GPUSpec."""
    if isinstance(name_or_spec, GPUSpec):
        return name_or_spec
    try:
        return GPU_SPECS[name_or_spec]
    except KeyError:
        raise ValueError(
            f"unknown GPU {name_or_spec!r}; available: {', '.join(sorted(GPU_SPECS))}"
        ) from None
