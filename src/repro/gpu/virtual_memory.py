"""Simulated CUDA virtual-memory-management (VMM) driver API.

PyTorch's *expandable segments* allocator and GMLake both build on the CUDA
VMM API: physical memory is created in fixed-size granules (``cuMemCreate``),
a contiguous *virtual* address range is reserved (``cuMemAddressReserve``) and
granules are mapped into it on demand (``cuMemMap``/``cuMemSetAccess``).  The
important properties for a memory-efficiency study are:

* physical memory is consumed granule-by-granule (2 MiB by default), so a
  virtual segment can grow without re-allocating or copying;
* non-contiguous physical granules can back a contiguous virtual range, which
  is exactly GMLake's "virtual memory stitching";
* every map/unmap is a driver call with a non-trivial latency (the paper
  measures ~30 ms per operation under MoE churn), so the number of VMM
  operations matters for end-to-end throughput.

The simulation therefore tracks physical consumption on the underlying
:class:`~repro.gpu.device.Device` and counts every VMM operation so the
throughput model can charge for them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.gpu.device import Device, MIB, PhysicalAllocation, align_up
from repro.gpu.errors import InvalidAddressError, OutOfMemoryError

#: Default physical granule size used by CUDA VMM (and by PyTorch expandable
#: segments / GMLake).
DEFAULT_GRANULE = 2 * MIB


@dataclass(frozen=True)
class PhysicalHandle:
    """A granule of physical memory created through the VMM API."""

    handle_id: int
    size: int
    backing: PhysicalAllocation


@dataclass(frozen=True)
class VirtualRange:
    """A reserved range of virtual address space (not yet backed by memory)."""

    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """Return True when ``[address, address + size)`` lies inside the range."""
        return self.start <= address and address + size <= self.end


@dataclass(frozen=True)
class VirtualMapping:
    """A physical handle mapped at a particular virtual address."""

    virtual_address: int
    handle: PhysicalHandle

    @property
    def end(self) -> int:
        return self.virtual_address + self.handle.size


@dataclass
class VmmStats:
    """Counters for VMM driver operations (used by the throughput model)."""

    handles_created: int = 0
    handles_released: int = 0
    ranges_reserved: int = 0
    map_calls: int = 0
    unmap_calls: int = 0

    @property
    def total_ops(self) -> int:
        """Total driver-level VMM operations issued."""
        return (
            self.handles_created
            + self.handles_released
            + self.ranges_reserved
            + self.map_calls
            + self.unmap_calls
        )


class VirtualMemoryManager:
    """Driver-level virtual memory manager bound to one :class:`Device`.

    The manager owns all physical handles it creates; physical memory is
    charged against the device at handle-creation time and returned at
    handle-release time, independent of whether the handle is currently
    mapped (mirroring CUDA VMM semantics).
    """

    def __init__(self, device: Device, granule: int = DEFAULT_GRANULE):
        if granule <= 0:
            raise ValueError(f"granule must be positive, got {granule}")
        self.device = device
        self.granule = int(granule)
        self.stats = VmmStats()
        self._handle_ids = itertools.count(1)
        self._virtual_cursor = 1 << 40  # virtual addresses live far above physical ones
        self._handles: dict[int, PhysicalHandle] = {}
        self._mappings: dict[int, VirtualMapping] = {}  # keyed by virtual address
        self._ranges: list[VirtualRange] = []

    # ------------------------------------------------------------------ #
    # Physical handles
    # ------------------------------------------------------------------ #
    def create_handle(self, size: int | None = None) -> PhysicalHandle:
        """Create a physical granule (``cuMemCreate``).

        ``size`` defaults to the manager's granule and is rounded up to a
        multiple of it, exactly as the CUDA driver requires.
        """
        size = self.granule if size is None else align_up(size, self.granule)
        backing = self.device.malloc(size)  # may raise OutOfMemoryError
        handle = PhysicalHandle(handle_id=next(self._handle_ids), size=size, backing=backing)
        self._handles[handle.handle_id] = handle
        self.stats.handles_created += 1
        return handle

    def release_handle(self, handle: PhysicalHandle) -> None:
        """Release a physical granule (``cuMemRelease``)."""
        if handle.handle_id not in self._handles:
            raise InvalidAddressError(f"unknown physical handle {handle.handle_id}")
        if any(m.handle.handle_id == handle.handle_id for m in self._mappings.values()):
            raise InvalidAddressError(
                f"physical handle {handle.handle_id} is still mapped; unmap it first"
            )
        del self._handles[handle.handle_id]
        self.device.free(handle.backing)
        self.stats.handles_released += 1

    # ------------------------------------------------------------------ #
    # Virtual address space
    # ------------------------------------------------------------------ #
    def reserve_range(self, size: int) -> VirtualRange:
        """Reserve a contiguous virtual address range (``cuMemAddressReserve``).

        Virtual address space is effectively unlimited; reservations never
        fail and never consume physical memory.
        """
        size = align_up(size, self.granule)
        vrange = VirtualRange(start=self._virtual_cursor, size=size)
        # Leave an unmapped guard gap between reservations so bugs that walk
        # off the end of a range are caught by ``contains`` checks.
        self._virtual_cursor += size + self.granule
        self._ranges.append(vrange)
        self.stats.ranges_reserved += 1
        return vrange

    def map(self, virtual_address: int, handle: PhysicalHandle) -> VirtualMapping:
        """Map a physical handle at a virtual address (``cuMemMap``)."""
        if handle.handle_id not in self._handles:
            raise InvalidAddressError(f"unknown physical handle {handle.handle_id}")
        if virtual_address % self.granule:
            raise InvalidAddressError(
                f"virtual address {virtual_address:#x} is not granule-aligned"
            )
        if not any(r.contains(virtual_address, handle.size) for r in self._ranges):
            raise InvalidAddressError(
                f"virtual address {virtual_address:#x} is outside every reserved range"
            )
        if virtual_address in self._mappings:
            raise InvalidAddressError(f"virtual address {virtual_address:#x} is already mapped")
        mapping = VirtualMapping(virtual_address=virtual_address, handle=handle)
        self._mappings[virtual_address] = mapping
        self.stats.map_calls += 1
        return mapping

    def unmap(self, virtual_address: int) -> PhysicalHandle:
        """Unmap the granule at ``virtual_address`` (``cuMemUnmap``).

        Returns the handle that was mapped there so callers can either re-map
        it elsewhere (stitching) or release it.
        """
        mapping = self._mappings.pop(virtual_address, None)
        if mapping is None:
            raise InvalidAddressError(f"virtual address {virtual_address:#x} is not mapped")
        self.stats.unmap_calls += 1
        return mapping.handle

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def mapped_bytes(self) -> int:
        """Total physical bytes currently mapped into virtual space."""
        return sum(m.handle.size for m in self._mappings.values())

    @property
    def physical_bytes(self) -> int:
        """Total physical bytes held by live handles (mapped or not)."""
        return sum(h.size for h in self._handles.values())

    @property
    def live_handles(self) -> int:
        return len(self._handles)

    def release_all(self) -> None:
        """Unmap and release everything (teardown helper for experiments)."""
        self._mappings.clear()
        for handle in list(self._handles.values()):
            del self._handles[handle.handle_id]
            self.device.free(handle.backing)
            self.stats.handles_released += 1
