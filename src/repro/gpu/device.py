"""Simulated GPU memory device.

The device models the physical GPU memory that ``cudaMalloc``/``cudaFree``
(or ``hipMalloc``/``hipFree``) manage.  Because real driver allocations are
served from a dedicated heap and are effectively never fragmented at the sizes
deep-learning allocators request (they ask for large, granule-aligned
segments), the device only enforces *capacity*: an allocation succeeds as long
as the total outstanding bytes fit on the device.

The device also keeps counters for every driver call so that higher layers can
model the latency cost of talking to the driver (native profiling runs at
10-30% of caching-allocator speed in the paper precisely because every tensor
allocation becomes a driver call).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.gpu.errors import DoubleFreeError, InvalidAddressError, OutOfMemoryError

#: Common byte-size constants used throughout the code base.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Alignment of driver-level allocations (CUDA guarantees at least 256 B;
#: allocator-level granules are much larger).
DRIVER_ALIGNMENT = 512


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ((int(value) + alignment - 1) // alignment) * alignment


@dataclass(frozen=True)
class PhysicalAllocation:
    """A live driver-level allocation on the device."""

    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size


@dataclass
class DeviceStats:
    """Counters describing driver-level activity on a device."""

    malloc_calls: int = 0
    free_calls: int = 0
    failed_mallocs: int = 0
    bytes_allocated_total: int = 0
    peak_in_use: int = 0

    def snapshot(self) -> dict:
        """Return the stats as a plain dictionary (useful for reports)."""
        return {
            "malloc_calls": self.malloc_calls,
            "free_calls": self.free_calls,
            "failed_mallocs": self.failed_mallocs,
            "bytes_allocated_total": self.bytes_allocated_total,
            "peak_in_use": self.peak_in_use,
        }


@dataclass
class Device:
    """A simulated GPU memory device.

    Parameters
    ----------
    name:
        Human-readable device name (e.g. ``"A800-80GB"``).
    capacity:
        Total device memory in bytes.
    reserved_overhead:
        Bytes unavailable to the framework (CUDA context, NCCL buffers,
        framework overhead).  Defaults to 0; experiments set this to model the
        usable fraction of each testbed GPU.
    """

    name: str
    capacity: int
    reserved_overhead: int = 0
    stats: DeviceStats = field(default_factory=DeviceStats)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"device capacity must be positive, got {self.capacity}")
        if not 0 <= self.reserved_overhead < self.capacity:
            raise ValueError(
                "reserved_overhead must be within [0, capacity): "
                f"{self.reserved_overhead} vs {self.capacity}"
            )
        self._allocations: dict[int, PhysicalAllocation] = {}
        self._in_use = 0
        # Physical addresses are handed out monotonically.  Real devices reuse
        # addresses, but the simulation never compares physical addresses
        # across allocations, so monotonic assignment keeps the model simple
        # and collision-free.
        self._next_address = itertools.count(DRIVER_ALIGNMENT)

    # ------------------------------------------------------------------ #
    # Capacity accounting
    # ------------------------------------------------------------------ #
    @property
    def usable_capacity(self) -> int:
        """Bytes available to allocators after fixed overheads."""
        return self.capacity - self.reserved_overhead

    @property
    def in_use(self) -> int:
        """Bytes currently held by live driver allocations."""
        return self._in_use

    @property
    def free_bytes(self) -> int:
        """Bytes still available for new driver allocations."""
        return self.usable_capacity - self._in_use

    @property
    def live_allocations(self) -> int:
        """Number of outstanding driver allocations."""
        return len(self._allocations)

    def can_allocate(self, size: int) -> bool:
        """Return True when a ``malloc(size)`` would succeed right now."""
        return size >= 0 and size <= self.free_bytes

    # ------------------------------------------------------------------ #
    # cudaMalloc / cudaFree analogues
    # ------------------------------------------------------------------ #
    def malloc(self, size: int) -> PhysicalAllocation:
        """Allocate ``size`` bytes of device memory.

        Raises :class:`OutOfMemoryError` when the device cannot satisfy the
        request.  Zero-byte allocations are legal and return a zero-sized
        allocation (mirroring ``cudaMalloc(0)`` returning success).
        """
        if size < 0:
            raise ValueError(f"allocation size must be non-negative, got {size}")
        self.stats.malloc_calls += 1
        if size > self.free_bytes:
            self.stats.failed_mallocs += 1
            raise OutOfMemoryError(size, self.usable_capacity, self._in_use)
        address = next(self._next_address) * DRIVER_ALIGNMENT
        allocation = PhysicalAllocation(address=address, size=int(size))
        self._allocations[address] = allocation
        self._in_use += allocation.size
        self.stats.bytes_allocated_total += allocation.size
        self.stats.peak_in_use = max(self.stats.peak_in_use, self._in_use)
        return allocation

    def free(self, allocation: PhysicalAllocation | int) -> None:
        """Free a previously returned allocation (by object or address)."""
        address = allocation.address if isinstance(allocation, PhysicalAllocation) else int(allocation)
        self.stats.free_calls += 1
        live = self._allocations.pop(address, None)
        if live is None:
            if address <= 0:
                raise InvalidAddressError(f"invalid address {address:#x}")
            raise DoubleFreeError(f"address {address:#x} is not a live allocation")
        self._in_use -= live.size

    def free_all(self) -> None:
        """Release every outstanding allocation (used when tearing down runs)."""
        self._allocations.clear()
        self._in_use = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Device(name={self.name!r}, capacity={self.capacity}, "
            f"in_use={self._in_use}, live={len(self._allocations)})"
        )


# ---------------------------------------------------------------------- #
# Testbed presets (capacities from the shared specs in repro.gpu.specs, the
# single source of truth for per-device constants)
# ---------------------------------------------------------------------- #
def device_from_spec(name: str, reserved_overhead: int = 0) -> Device:
    """Build a Device whose capacity comes from :data:`repro.gpu.specs.GPU_SPECS`."""
    from repro.gpu.specs import get_gpu

    spec = get_gpu(name)
    return Device(
        name=spec.name, capacity=spec.memory_gib * GIB, reserved_overhead=reserved_overhead
    )


def a800_80gb(reserved_overhead: int = 4 * GIB) -> Device:
    """NVIDIA A800-80GB as used on the paper's first testbed."""
    return device_from_spec("A800-80GB", reserved_overhead)


def h200_141gb(reserved_overhead: int = 5 * GIB) -> Device:
    """NVIDIA H200-141GB as used for the scalability study."""
    return device_from_spec("H200-141GB", reserved_overhead)


def mi210_64gb(reserved_overhead: int = 4 * GIB) -> Device:
    """AMD MI210-64GB as used on the AMD testbed."""
    return device_from_spec("MI210-64GB", reserved_overhead)
