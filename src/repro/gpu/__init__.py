"""Simulated GPU memory substrate.

The real STAlloc runs on NVIDIA/AMD GPUs and talks to ``cudaMalloc``,
``cudaFree`` and the CUDA virtual-memory-management (VMM) driver API.  This
package provides byte-accurate simulations of those interfaces:

* :class:`~repro.gpu.device.Device` -- a GPU with a fixed memory capacity and
  ``malloc``/``free`` physical allocation (the ``cudaMalloc`` analogue).
* :class:`~repro.gpu.virtual_memory.VirtualMemoryManager` -- the
  ``cuMemCreate`` / ``cuMemAddressReserve`` / ``cuMemMap`` analogue used by the
  expandable-segments and GMLake-style allocators.
* Device presets matching the paper's testbeds (A800-80GB, H200-141GB,
  MI210-64GB).
"""

from repro.gpu.device import (
    Device,
    DeviceStats,
    PhysicalAllocation,
    a800_80gb,
    device_from_spec,
    h200_141gb,
    mi210_64gb,
)
from repro.gpu.specs import GPU_SPECS, GPUSpec, get_gpu
from repro.gpu.errors import (
    DeviceError,
    DoubleFreeError,
    InvalidAddressError,
    OutOfMemoryError,
)
from repro.gpu.virtual_memory import (
    PhysicalHandle,
    VirtualMapping,
    VirtualMemoryManager,
    VirtualRange,
)

__all__ = [
    "Device",
    "DeviceStats",
    "PhysicalAllocation",
    "a800_80gb",
    "device_from_spec",
    "h200_141gb",
    "mi210_64gb",
    "GPUSpec",
    "GPU_SPECS",
    "get_gpu",
    "DeviceError",
    "OutOfMemoryError",
    "DoubleFreeError",
    "InvalidAddressError",
    "PhysicalHandle",
    "VirtualRange",
    "VirtualMapping",
    "VirtualMemoryManager",
]
