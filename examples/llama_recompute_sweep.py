#!/usr/bin/env python3
"""Scenario: Llama2-7B with recomputation across micro-batch sizes.

Recomputation is the classic memory-saving technique, yet the paper shows it
is also the configuration where online allocators fragment the most.  This
example sweeps the micro-batch size (as in Figure 10) and compares every
baseline allocator against STAlloc on a simulated 8x A800 node.

Run with:  python examples/llama_recompute_sweep.py
"""

from repro.simulator.runner import default_allocator_lineup, run_workload_suite
from repro.workloads import ParallelismConfig, get_model, preset_config


def main() -> None:
    model = get_model("llama2-7b")
    parallelism = ParallelismConfig(tensor_parallel=2, pipeline_parallel=4, data_parallel=1)
    lineup = default_allocator_lineup()

    header = f"{'mbs':>4s} | " + " | ".join(f"{name:>9s}" for name in lineup)
    print("Memory efficiency (%) of Llama2-7B + recomputation on 8x A800")
    print(header)
    print("-" * len(header))
    for micro_batch_size in (1, 2, 4, 8):
        config = preset_config(
            model, "R", parallelism=parallelism, micro_batch_size=micro_batch_size, num_microbatches=16
        )
        runs = run_workload_suite(config, lineup, device_name="A800-80GB")
        cells = []
        for name in lineup:
            run = runs[name]
            cell = f"{100 * run.memory_efficiency:8.1f}" + ("!" if not run.success else " ")
            cells.append(cell)
        print(f"{micro_batch_size:>4d} | " + " | ".join(cells))
    print("('!' marks an out-of-memory failure on the 80 GB device)")


if __name__ == "__main__":
    main()
