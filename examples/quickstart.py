#!/usr/bin/env python3
"""Quickstart: plan GPU memory for one training iteration with STAlloc.

The workflow mirrors deploying the real system:

1. describe the training job (model, parallelism, optimizations);
2. profile one iteration's allocation requests (here: generate the trace);
3. synthesize the ahead-of-time allocation plan;
4. run the training iteration through STAlloc's runtime allocator and compare
   its memory efficiency against PyTorch's caching allocator.

Run with:  python examples/quickstart.py
"""

from repro.core.stalloc import STAlloc
from repro.gpu.device import GIB, a800_80gb
from repro.simulator.replay import replay_trace
from repro.simulator.runner import create_allocator
from repro.workloads import ParallelismConfig, TraceGenerator, TrainingConfig, get_model


def main() -> None:
    # 1. Describe the training job: GPT-2 on 8 GPUs with recomputation.
    config = TrainingConfig(
        model=get_model("gpt2-345m"),
        parallelism=ParallelismConfig(tensor_parallel=1, pipeline_parallel=4, data_parallel=2),
        micro_batch_size=16,
        num_microbatches=8,
        recompute=True,
        label="quickstart",
    )
    print(f"Training configuration: {config.describe()}")

    # 2. Profile one iteration (the allocation profiler's view of training).
    trace = TraceGenerator(config, seed=0).generate()
    print(f"Profiled {trace.num_requests} allocation requests "
          f"({trace.distinct_sizes()} distinct sizes > 512 B)")

    # 3. Synthesize the spatio-temporal allocation plan.
    stalloc = STAlloc.from_trace(trace)
    report = stalloc.planning_report()
    print(f"Static allocation plan: {stalloc.static_pool_bytes / GIB:.2f} GiB pool, "
          f"{report['num_homophase_groups']} HomoPhase groups, "
          f"{report['num_fusions']} fusions, planned in {report['synthesis_seconds']:.2f}s")

    # 4. Replay the iteration through STAlloc and through PyTorch's caching
    #    allocator, and compare peak memory efficiency E = M_a / M_r.
    for name, allocator in (
        ("PyTorch caching allocator", create_allocator("torch2.3", a800_80gb())),
        ("STAlloc", stalloc.build_runtime_allocator(a800_80gb())),
    ):
        result = replay_trace(trace, allocator)
        print(
            f"{name:28s} reserved {result.metrics.peak_reserved_gib:6.2f} GiB for "
            f"{result.metrics.peak_allocated_gib:6.2f} GiB of tensors "
            f"-> efficiency {100 * result.memory_efficiency:5.1f}%, "
            f"fragmentation {result.metrics.fragmentation_gib:4.2f} GiB"
        )


if __name__ == "__main__":
    main()
