#!/usr/bin/env python3
"""Scenario: Mixture-of-Experts training and the dynamic allocator.

MoE expert layers route tokens at runtime, so the sizes of expert activation
tensors are unknown when the plan is made.  STAlloc handles them with its
hybrid design: static requests follow the ahead-of-time plan, dynamic requests
reuse idle space of the static pool (Dynamic Reusable Space), and anything
else falls back to a caching allocator.  This example shows where every byte
of a Qwen1.5-MoE iteration ends up, with and without dynamic reuse (the §9.4
breakdown).

Run with:  python examples/moe_dynamic_allocation.py
"""

from repro.core.stalloc import STAlloc, STAllocConfig
from repro.gpu.device import GIB, a800_80gb
from repro.simulator.replay import replay_trace
from repro.workloads import ParallelismConfig, TraceGenerator, get_model, preset_config


def describe(label: str, trace, config: STAllocConfig) -> None:
    stalloc = STAlloc.from_trace(trace, config)
    allocator = stalloc.build_runtime_allocator(a800_80gb())
    result = replay_trace(trace, allocator)
    stats = result.allocator_stats
    print(f"--- {label} ---")
    print(f"  static pool            : {stalloc.static_pool_bytes / GIB:6.2f} GiB")
    print(f"  dynamic served in pool : {stats['dynamic_pool_bytes'] / GIB:6.2f} GiB")
    print(f"  fell back to caching   : {stats['fallback_bytes'] / GIB:6.2f} GiB "
          f"(peak reserved {stats.get('fallback_peak_reserved', 0) / GIB:.2f} GiB)")
    print(f"  peak reserved          : {result.metrics.peak_reserved_gib:6.2f} GiB")
    print(f"  memory efficiency      : {100 * result.memory_efficiency:6.1f}%")


def main() -> None:
    model = get_model("qwen1.5-moe-a2.7b")
    config = preset_config(
        model,
        "R",
        parallelism=ParallelismConfig(
            tensor_parallel=1, pipeline_parallel=4, data_parallel=2, expert_parallel=4
        ),
        micro_batch_size=2,
        num_microbatches=8,
    )
    trace = TraceGenerator(config, seed=0).generate()
    print(f"Qwen1.5-MoE iteration: {trace.num_requests} requests, "
          f"{trace.num_dynamic_requests} dynamic (expert) requests")
    describe("STAlloc (full: static plan + dynamic reuse)", trace, STAllocConfig())
    describe("STAlloc without dynamic reuse", trace, STAllocConfig(enable_dynamic_reuse=False))


if __name__ == "__main__":
    main()
