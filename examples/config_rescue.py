#!/usr/bin/env python3
"""Scenario: rescuing a high-throughput configuration from OOM.

The paper's Table 1 story: the fastest training configuration of Qwen2.5-14B
on 16 GPUs (virtual pipeline, TP=2) OOMs under PyTorch because fragmentation
inflates reserved memory, forcing developers onto slower configurations.
STAlloc's defragmentation makes the original configuration fit, recovering the
throughput gap.  This example evaluates each candidate configuration's
feasibility per allocator and reports the throughput cost of every fallback.

Run with:  python examples/config_rescue.py
"""

from repro.experiments.tables import _table1_configs
from repro.simulator.runner import run_workload_suite
from repro.simulator.throughput import GPU_SPECS, ThroughputModel


def main() -> None:
    throughput = ThroughputModel(GPU_SPECS["H200-141GB"])
    lineup = ["torch2.6", "torch_es", "stalloc"]
    rows = []
    for label, config in _table1_configs(micro_batch_size=2, num_microbatches=8):
        runs = run_workload_suite(config, lineup, device_name="H200-141GB")
        rows.append((label, config, runs))

    best_tflops = max(throughput.tflops(config) for _, config, _ in rows)
    print(f"{'configuration':<24s} {'PyTorch':>8s} {'ES':>8s} {'STAlloc':>8s} {'TFLOPS':>8s} {'slowdown':>9s}")
    for label, config, runs in rows:
        tflops = throughput.tflops(config)
        slowdown = 100.0 * (1.0 - tflops / best_tflops)
        print(
            f"{label:<24s} "
            f"{'OK' if runs['torch2.6'].success else 'OOM':>8s} "
            f"{'OK' if runs['torch_es'].success else 'OOM':>8s} "
            f"{'OK' if runs['stalloc'].success else 'OOM':>8s} "
            f"{tflops:8.1f} {slowdown:8.1f}%"
        )
    print("\nPick the fastest configuration whose allocator column says OK; with STAlloc that is")
    print("the original virtual-pipeline configuration, avoiding the fallback slowdowns.")


if __name__ == "__main__":
    main()
