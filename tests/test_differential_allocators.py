"""Differential allocator tests + replay accounting.

All allocators replay the *same* trace, so the live-bytes curve -- and hence
``peak_allocated`` -- is fully determined by the trace: allocators may only
differ in how much they *reserve* (fragmentation).  These tests pin that down
pairwise across every registered allocator plus the STAlloc variants, and
cover the ``stop_on_oom=False`` bookkeeping of :func:`replay_trace`.
"""

from __future__ import annotations

import pytest

from repro.allocators.registry import available_allocators, create_allocator
from repro.core.events import EventKind, Phase, PhaseKind, TensorCategory, TraceEvent
from repro.gpu.device import Device, GIB, MIB
from repro.simulator.replay import replay_trace
from repro.simulator.runner import all_known_allocators, run_workload_suite
from repro.workloads.trace import Trace, TraceMetadata
from repro.workloads.tracegen import TraceGenerator

BASELINES = available_allocators()


@pytest.fixture(scope="module")
def recompute_trace(tiny_dense_config):
    return TraceGenerator(tiny_dense_config.with_(recompute=True), seed=1).generate()


@pytest.fixture(scope="module")
def comm_heavy_config(tiny_moe_config):
    """The MoE config with a skewed router and full all-to-all transients."""
    return tiny_moe_config.with_(
        moe_imbalance=0.6, moe_comm_factor=1.0, label="test-moe-comm"
    )


@pytest.fixture(scope="module")
def comm_heavy_trace(comm_heavy_config):
    """An EP rank 1 trace dominated by dispatch/combine staging buffers."""
    return TraceGenerator(comm_heavy_config, seed=1, ep_rank=1).generate()


def _trace_for(name: str, request):
    return request.getfixturevalue(name)


TRACE_FIXTURES = ["dense_trace", "moe_trace", "recompute_trace", "comm_heavy_trace"]


@pytest.mark.parametrize("trace_name", TRACE_FIXTURES)
@pytest.mark.parametrize("allocator_name", BASELINES)
class TestReservedDominatesAllocated:
    def test_peaks_are_consistent(self, allocator_name, trace_name, request):
        trace = _trace_for(trace_name, request)
        allocator = create_allocator(allocator_name, Device(name="big", capacity=400 * GIB))
        result = replay_trace(trace, allocator)
        assert result.success
        # peak_allocated is trace-determined...
        assert result.metrics.peak_allocated_bytes == trace.peak_allocated_bytes()
        # ...and reservations can never undercut what is live.
        assert result.metrics.peak_reserved_bytes >= result.metrics.peak_allocated_bytes
        assert 0.0 < result.memory_efficiency <= 1.0


@pytest.mark.parametrize("trace_name", TRACE_FIXTURES)
class TestAllAllocatorsAgree:
    def test_peak_allocated_identical_across_allocators(self, trace_name, request):
        trace = _trace_for(trace_name, request)
        peaks = {}
        for name in BASELINES:
            allocator = create_allocator(name, Device(name="big", capacity=400 * GIB))
            result = replay_trace(trace, allocator)
            assert result.success, f"{name} unexpectedly OOMed"
            peaks[name] = result.metrics.peak_allocated_bytes
        assert len(set(peaks.values())) == 1, f"allocators disagree on peak_allocated: {peaks}"


@pytest.mark.parametrize("config_name", ["tiny_dense_config", "tiny_moe_config"])
class TestSuiteIncludingSTAlloc:
    def test_full_lineup_agrees_on_allocated(self, config_name, request):
        """The runner's full line-up (incl. stalloc variants) agrees on M_a."""
        config = request.getfixturevalue(config_name)
        runs = run_workload_suite(config, all_known_allocators(), device_name="A800-80GB")
        peaks = {name: run.replay.metrics.peak_allocated_bytes for name, run in runs.items()}
        assert len(set(peaks.values())) == 1, f"lineup disagrees on peak_allocated: {peaks}"
        for name, run in runs.items():
            reserved = run.replay.metrics.peak_reserved_bytes
            assert reserved >= peaks[name], f"{name} reserved less than allocated"


# ---------------------------------------------------------------------- #
# Comm-heavy traces: identical OOM verdicts and peak agreement everywhere
# ---------------------------------------------------------------------- #
class TestCommHeavyDifferential:
    """All-to-all transients must not make any allocator diverge.

    The dispatch/combine staging buffers are ordinary trace events, so the
    live-bytes curve stays allocator-independent: every registered allocator
    plus the runner's STAlloc variants must agree on the peak, and on the
    OOM verdict both when the device fits the trace and when it cannot.
    """

    def test_full_lineup_agrees_on_comm_heavy_peak(self, comm_heavy_config):
        runs = run_workload_suite(
            comm_heavy_config, all_known_allocators(), device_name="A800-80GB", ep_rank=1
        )
        peaks = {name: run.replay.metrics.peak_allocated_bytes for name, run in runs.items()}
        assert len(set(peaks.values())) == 1, f"lineup disagrees on peak_allocated: {peaks}"
        comm_peaks = {name: run.comm_peak_bytes for name, run in runs.items()}
        assert len(set(comm_peaks.values())) == 1, comm_peaks
        assert next(iter(comm_peaks.values())) > 0

    def test_identical_oom_verdicts_on_both_sides_of_the_peak(self, comm_heavy_config, request):
        from repro.gpu.errors import OutOfMemoryError
        from repro.simulator.runner import run_workload

        trace = request.getfixturevalue("comm_heavy_trace")
        peak = trace.peak_allocated_bytes()

        def verdict(name: str, capacity_bytes: int) -> bool:
            # STAlloc reserves its static pool during the offline pipeline, so
            # an undersized device can fail at planning time already -- the
            # job would not have started, which is the same OOM verdict.
            try:
                run = run_workload(
                    comm_heavy_config,
                    name,
                    device_name="A800-80GB",
                    device_capacity_gib=capacity_bytes / GIB,
                    seed=1,  # replay the same trace the capacities were sized from
                    ep_rank=1,
                )
            except OutOfMemoryError:
                return False
            return run.success

        # A device that cannot hold the live bytes fails every allocator; a
        # generously oversized one fails none.  (Between the two, reservation
        # strategies legitimately differ -- that is the fragmentation story.)
        verdicts = {
            name: (verdict(name, (peak - 1) // 2), verdict(name, 4 * peak))
            for name in all_known_allocators()
        }
        assert set(verdicts.values()) == {(False, True)}, verdicts


# ---------------------------------------------------------------------- #
# replay_trace(stop_on_oom=False) accounting
# ---------------------------------------------------------------------- #
def _phase(index: int) -> Phase:
    return Phase(index=index, kind=PhaseKind.FORWARD, microbatch=0)


def _mini_trace(events: list[tuple[str, int, int]]) -> Trace:
    """Build a trace from (kind, req_id, size) triples."""
    phase = _phase(0)
    trace_events = [
        TraceEvent(
            kind=EventKind.ALLOC if kind == "alloc" else EventKind.FREE,
            req_id=req_id,
            size=size,
            time=time,
            phase=phase,
            category=TensorCategory.TEMPORARY,
        )
        for time, (kind, req_id, size) in enumerate(events)
    ]
    return Trace(events=trace_events, metadata=TraceMetadata(), phases=[phase])


class TestReplayOomAccounting:
    def test_failed_alloc_and_its_free_are_both_skipped(self):
        trace = _mini_trace(
            [
                ("alloc", 0, 1 * MIB),
                ("alloc", 1, 512 * MIB),  # exceeds the 64 MiB device -> fails
                ("free", 1, 512 * MIB),   # must be skipped, not replayed
                ("alloc", 2, 1 * MIB),
                ("free", 2, 1 * MIB),
                ("free", 0, 1 * MIB),
            ]
        )
        allocator = create_allocator("native", Device(name="tiny", capacity=64 * MIB))
        result = replay_trace(trace, allocator, stop_on_oom=False)
        assert not result.success
        assert result.oom_at_event == 1
        assert result.failed_allocs == 1
        assert result.skipped_frees == 1
        assert result.events_replayed == 4
        assert result.events_replayed + result.events_skipped == trace.num_events

    def test_every_event_is_either_replayed_or_skipped(self, dense_trace):
        allocator = create_allocator("torch2.3", Device(name="tiny", capacity=1 * GIB))
        result = replay_trace(dense_trace, allocator, stop_on_oom=False)
        assert not result.success
        assert result.failed_allocs > 0
        assert result.events_replayed + result.events_skipped == dense_trace.num_events
        # Persistent tensors fail too and are never freed within the trace,
        # so at most every failed alloc has one matching skipped free.
        assert result.skipped_frees <= result.failed_allocs

    def test_repeated_oom_keeps_counting(self):
        events = [("alloc", 0, 4 * MIB)]
        for req_id in range(1, 5):
            events.append(("alloc", req_id, 512 * MIB))
            events.append(("free", req_id, 512 * MIB))
        events.append(("free", 0, 4 * MIB))
        trace = _mini_trace(events)
        allocator = create_allocator("native", Device(name="tiny", capacity=64 * MIB))
        result = replay_trace(trace, allocator, stop_on_oom=False)
        assert result.failed_allocs == 4
        assert result.skipped_frees == 4
        assert result.events_replayed == 2
        assert result.oom_at_event == 1  # first failure position is kept

    def test_stop_on_oom_counts_partial_replay(self):
        trace = _mini_trace(
            [
                ("alloc", 0, 1 * MIB),
                ("alloc", 1, 512 * MIB),
                ("free", 0, 1 * MIB),
            ]
        )
        allocator = create_allocator("native", Device(name="tiny", capacity=64 * MIB))
        result = replay_trace(trace, allocator, stop_on_oom=True)
        assert not result.success
        assert result.events_replayed == 1
        assert result.failed_allocs == 1
        assert result.skipped_frees == 0

    def test_as_dict_reports_skip_counters_on_failure(self):
        trace = _mini_trace([("alloc", 0, 512 * MIB), ("free", 0, 512 * MIB)])
        allocator = create_allocator("native", Device(name="tiny", capacity=64 * MIB))
        result = replay_trace(trace, allocator, stop_on_oom=False)
        data = result.as_dict()
        assert data["failed_allocs"] == 1
        assert data["skipped_frees"] == 1
