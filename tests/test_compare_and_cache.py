"""sweep --compare regression diffs, results serialization fixes, cache prune."""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from repro.cli import main as cli_main
from repro.simulator import runner
from repro.sweep import SweepCache, SweepResult, compare_results
from repro.sweep.cache import _RESULT_VERSION_KEY, RESULT_FORMAT_VERSION
from repro.workloads.tracegen import config_fingerprint


@pytest.fixture(autouse=True)
def _clean_runner_state():
    yield
    runner.set_persistent_cache(None)
    runner.set_default_jobs(1)
    runner.clear_trace_cache()


def _row(**overrides) -> dict:
    row = {
        "point": 0,
        "model": "gpt2-345m",
        "config": "R/mbs=2",
        "allocator": "torch2.3",
        "seed": 0,
        "scale": 0.25,
        "device": "A800-80GB",
        "ranks": "0-3",
        "status": "ok",
        "binding_rank": 3,
        "allocated_gib": 2.0,
        "allocated_mean_gib": 1.5,
        "reserved_gib": 2.5,
        "tflops_per_gpu": 100.0,
        "tokens_per_second": 5000.0,
    }
    row.update(overrides)
    return row


def _result(rows) -> SweepResult:
    return SweepResult(spec_name="test", rows=rows)


# ---------------------------------------------------------------------- #
# compare_results
# ---------------------------------------------------------------------- #
class TestCompare:
    def test_identical_runs_have_no_diff(self):
        report = compare_results(_result([_row()]), _result([_row()]))
        assert report.num_matched == 1
        assert not report.has_regressions
        assert report.exit_code == 0
        assert "no differences" in report.to_text()

    def test_peak_memory_increase_is_a_regression(self):
        report = compare_results(
            _result([_row()]), _result([_row(allocated_gib=2.2)])
        )
        assert report.has_regressions
        assert report.exit_code == 1
        assert "allocated_gib regressed" in report.to_text()

    def test_peak_memory_decrease_is_not_a_regression(self):
        report = compare_results(
            _result([_row()]), _result([_row(allocated_gib=1.5)])
        )
        assert report.changed and not report.has_regressions

    def test_ok_to_oom_is_a_regression(self):
        report = compare_results(
            _result([_row()]), _result([_row(status="OOM")])
        )
        assert report.has_regressions
        assert "status regressed" in report.to_text()
        # The reverse (OOM fixed) is a change, not a regression.
        fixed = compare_results(_result([_row(status="OOM")]), _result([_row()]))
        assert fixed.changed and not fixed.has_regressions

    def test_throughput_drop_is_a_regression(self):
        report = compare_results(
            _result([_row()]), _result([_row(tflops_per_gpu=90.0)])
        )
        assert report.has_regressions

    def test_tolerance_suppresses_small_moves(self):
        report = compare_results(
            _result([_row()]),
            _result([_row(allocated_gib=2.0004)]),
            tolerance_pct=0.1,
        )
        assert not report.changed and not report.has_regressions
        tight = compare_results(
            _result([_row()]), _result([_row(allocated_gib=2.0004)])
        )
        assert tight.has_regressions

    def test_regression_just_past_tolerance_is_still_flagged(self):
        """Regression: a worsening between t% of |old| and t% of max(old, new)
        used to slip through because the changed-check gated the regression
        check with a larger scale."""
        report = compare_results(
            _result([_row(allocated_gib=10.0)]),
            _result([_row(allocated_gib=10.52)]),  # +5.2%: worse than 5% of old
            tolerance_pct=5.0,
        )
        assert report.has_regressions
        assert report.exit_code == 1

    def test_unmatched_baseline_fails_the_gate(self):
        """A baseline whose rows never line up has verified nothing."""
        old = _result([_row(config="some-other-spec")])
        new = _result([_row()])
        report = compare_results(old, new)
        assert report.num_matched == 0
        assert report.baseline_unmatched
        assert report.exit_code == 1
        assert "no baseline point matched" in report.to_text()
        # An empty baseline (nothing to protect) is not an error.
        empty = compare_results(_result([]), new)
        assert empty.exit_code == 0

    def test_binding_rank_shift_reported_but_not_flagged(self):
        report = compare_results(
            _result([_row()]), _result([_row(binding_rank=0)])
        )
        assert report.changed and not report.has_regressions

    def test_added_and_removed_points(self):
        old = _result([_row(), _row(config="Naive/mbs=2")])
        new = _result([_row(), _row(config="V/mbs=2")])
        report = compare_results(old, new)
        assert len(report.added) == 1 and len(report.removed) == 1
        assert not report.has_regressions
        text = report.to_text()
        assert "only in the new run" in text and "only in the old run" in text

    def test_points_match_across_reordered_grids(self):
        old = _result([_row(point=0), _row(point=1, config="Naive/mbs=2")])
        new = _result([_row(point=1), _row(point=0, config="Naive/mbs=2")])
        report = compare_results(old, new)
        assert report.num_matched == 2
        assert not report.changed

    def test_result_roundtrip_through_file(self, tmp_path):
        result = _result([_row()])
        path = tmp_path / "r.json"
        result.write(path)
        loaded = SweepResult.load(path)
        assert loaded.rows == result.rows
        assert not compare_results(loaded, result).changed

    def test_load_rejects_non_result_files(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="not a sweep results file"):
            SweepResult.load(path)


# ---------------------------------------------------------------------- #
# Results serialization bugfixes
# ---------------------------------------------------------------------- #
class TestResultsSerialization:
    def test_write_accepts_uppercase_extensions(self, tmp_path):
        """Regression: .JSON / .CSV used to be rejected."""
        result = _result([_row()])
        json_path = tmp_path / "OUT.JSON"
        csv_path = tmp_path / "OUT.CSV"
        result.write(json_path)
        result.write(csv_path)
        assert json.loads(json_path.read_text(encoding="utf-8"))["spec"] == "test"
        assert "allocator" in csv_path.read_text(encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported output extension"):
            result.write(tmp_path / "out.XLSX")

    def test_to_text_renders_non_finite_floats(self):
        """Regression: inf/NaN used to come out of the float formatter raw."""
        from repro.sweep.results import _fmt

        assert _fmt(float("inf")) == "inf"
        assert _fmt(float("-inf")) == "-inf"
        assert _fmt(float("nan")) == "nan"
        result = _result(
            [_row(tflops_per_gpu=float("inf"), tokens_per_second=float("nan"))]
        )
        text = result.to_text()
        assert "inf" in text and "nan" in text
        header, sep, data = text.splitlines()[1:4]
        assert len(data) <= len(header)  # columns still aligned

    def test_workload_run_serializes_full_precision(self, tiny_dense_config):
        """Regression: as_dict used to round tflops_per_gpu to one decimal."""
        run = runner.run_workload(
            tiny_dense_config, "torch2.3", scale=0.25, with_throughput=True
        )
        data = run.as_dict()
        assert data["tflops_per_gpu"] == run.tflops
        assert data["tflops_per_gpu"] != round(data["tflops_per_gpu"], 1)
        assert data["tokens_per_second"] == run.tokens_per_second
        assert data["rank"] == 0


# ---------------------------------------------------------------------- #
# Cache prune
# ---------------------------------------------------------------------- #
class TestCachePrune:
    def test_prune_removes_stale_version_entries(self, tmp_path, tiny_dense_config):
        cache = SweepCache(tmp_path)
        cache.get_trace(tiny_dense_config, seed=0, scale=0.25)
        key = cache.result_key("fp", {"allocator": "native"})
        cache.store_result(key, {"status": "ok"})
        # Forge entries written by older formats.
        old_trace = cache.traces_dir / "deadbeef.jsonl"
        header = {"metadata": {"tracegen_version": 1}, "module_spans": {}, "phases": []}
        old_trace.write_text(json.dumps(header) + "\n", encoding="utf-8")
        old_result = cache.results_dir / "cafebabe.json"
        old_result.write_text(json.dumps({"status": "ok"}), encoding="utf-8")  # no version key
        old_plan = cache.plans_dir / "0ldplan.json"
        old_plan.write_text(json.dumps({"format_version": 0}), encoding="utf-8")

        report = cache.prune()
        assert report["stale_removed"] == 3
        assert not old_trace.exists() and not old_result.exists() and not old_plan.exists()
        # Current-format entries survive and still load.
        assert cache.load_result(key) == {"status": "ok"}
        fingerprint = config_fingerprint(tiny_dense_config, seed=0, scale=0.25)
        assert cache.trace_path(fingerprint).exists()

    def test_stored_rows_embed_format_version(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.result_key("fp", {"allocator": "native"})
        cache.store_result(key, {"status": "ok"})
        raw = json.loads(cache.result_path(key).read_text(encoding="utf-8"))
        assert raw[_RESULT_VERSION_KEY] == RESULT_FORMAT_VERSION
        # ... but the version key never leaks into served rows.
        assert cache.load_result(key) == {"status": "ok"}

    def test_prune_lru_evicts_oldest_first(self, tmp_path):
        cache = SweepCache(tmp_path)
        keys = []
        for index in range(4):
            key = cache.result_key("fp", {"index": index})
            cache.store_result(key, {"status": "ok", "index": index})
            keys.append(key)
        now = time.time()
        for age, key in zip((400, 300, 200, 100), keys):
            os.utime(cache.result_path(key), (now - age, now - age))
        entry_size = cache.result_path(keys[0]).stat().st_size
        report = cache.prune(max_bytes=2 * entry_size)
        assert report["lru_removed"] == 2
        assert not cache.result_path(keys[0]).exists()
        assert not cache.result_path(keys[1]).exists()
        assert cache.result_path(keys[2]).exists()
        assert cache.result_path(keys[3]).exists()
        assert cache.size_bytes() <= 2 * entry_size

    def test_prune_zero_budget_clears_cache(self, tmp_path, tiny_dense_config):
        cache = SweepCache(tmp_path)
        cache.get_trace(tiny_dense_config, seed=0, scale=0.25)
        report = cache.prune(max_bytes=0)
        assert report["remaining_bytes"] == 0
        assert cache.size_bytes() == 0

    def test_inline_cap_enforced_on_store(self, tmp_path, tiny_dense_config):
        """A capped cache evicts inline: storing past max_bytes prunes back
        under the cap without an explicit prune call."""
        uncapped = SweepCache(tmp_path / "probe")
        uncapped.get_trace(tiny_dense_config, seed=0, scale=0.25)
        one_trace = uncapped.size_bytes()
        cap = int(one_trace * 1.5)
        cache = SweepCache(tmp_path / "capped", max_bytes=cap)
        for seed in range(4):
            cache.get_trace(tiny_dense_config, seed=seed, scale=0.25)
            assert cache.size_bytes() <= cap
        with pytest.raises(ValueError, match="max_bytes"):
            SweepCache(tmp_path / "bad", max_bytes=-1)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_capped_sweep_never_exceeds_max_bytes(self, jobs, tmp_path):
        """Satellite acceptance: a sweep run under a cache cap finishes with
        the cache at or below the cap, serially and across workers."""
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec.from_dict(
            {
                "name": "capped",
                "model": "gpt2-345m",
                "parallelism": {"pipeline_parallel": 2},
                "base": {"num_microbatches": 2},
                "grid": {"micro_batch_size": [1, 2]},
                "allocators": ["torch2.3"],
                "scale": 0.25,
            }
        )
        cache_dir = tmp_path / "cache"
        probe = run_sweep(spec, jobs=jobs, cache_dir=cache_dir)
        assert probe.num_points == 2
        unbounded = SweepCache(cache_dir).size_bytes()
        assert unbounded > 0
        cap = max(1, unbounded // 2)

        capped_dir = tmp_path / "capped"
        result = run_sweep(spec, jobs=jobs, cache_dir=capped_dir, cache_max_bytes=cap)
        assert result.num_points == 2  # eviction never breaks execution
        assert SweepCache(capped_dir).size_bytes() <= cap

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            SweepCache(tmp_path).prune(max_bytes=-1)


# ---------------------------------------------------------------------- #
# CLI integration
# ---------------------------------------------------------------------- #
class TestCompareCli:
    def test_sweep_compare_zero_diff_and_regression_exit_codes(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        baseline = tmp_path / "baseline.json"
        argv = [
            "sweep", "smoke",
            "--jobs", "1",
            "--cache-dir", str(cache_dir),
            "--output", str(baseline),
        ]
        assert cli_main(argv) == 0
        # Second (fully cached) run against the baseline: zero diff, exit 0.
        assert cli_main(argv + ["--compare", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

        # Tamper with the baseline so the current run looks like a regression.
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        for row in payload["rows"]:
            row["allocated_gib"] *= 0.5
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(payload), encoding="utf-8")
        assert cli_main(argv[:-2] + ["--compare", str(tampered)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_compare_with_missing_baseline_is_a_usage_error(self, tmp_path, capsys):
        code = cli_main(
            ["sweep", "smoke", "--no-cache", "--compare", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "cannot load --compare baseline" in capsys.readouterr().err

    def test_dual_file_compare_without_running(self, tmp_path, capsys):
        """sweep --compare old.json new.json diffs two saved files: no spec,
        no execution, exit code from the diff alone."""
        baseline = tmp_path / "old.json"
        _result([_row()]).write_json(baseline)
        identical = tmp_path / "new.json"
        _result([_row()]).write_json(identical)
        assert cli_main(["sweep", "--compare", str(baseline), str(identical)]) == 0
        assert "0 regressed" in capsys.readouterr().out

        regressed = tmp_path / "regressed.json"
        _result([_row(allocated_gib=4.0)]).write_json(regressed)
        assert cli_main(["sweep", "--compare", str(baseline), str(regressed)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # Tolerance rescues a small move (2.0 -> 2.0004 is < 1%).
        slight = tmp_path / "slight.json"
        _result([_row(allocated_gib=2.0004)]).write_json(slight)
        assert cli_main(
            ["sweep", "--compare", str(baseline), str(slight), "--tolerance-pct", "1"]
        ) == 0

    def test_dual_file_compare_usage_errors(self, tmp_path, capsys):
        baseline = tmp_path / "old.json"
        _result([_row()]).write_json(baseline)
        # A spec plus two files is ambiguous: refuse.
        code = cli_main(["sweep", "smoke", "--compare", str(baseline), str(baseline)])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err
        # A missing file is a usage error, not a crash.
        code = cli_main(["sweep", "--compare", str(baseline), str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot compare" in capsys.readouterr().err
        # More than two files is a usage error.
        code = cli_main(
            ["sweep", "--compare", str(baseline), str(baseline), str(baseline)]
        )
        assert code == 2
        assert "one or two" in capsys.readouterr().err

    def test_cache_prune_cli(self, tmp_path, capsys, tiny_dense_config):
        cache = SweepCache(tmp_path / "cache")
        cache.get_trace(tiny_dense_config, seed=0, scale=0.25)
        assert cli_main(
            ["cache", "prune", "--cache-dir", str(tmp_path / "cache"), "--max-bytes", "0"]
        ) == 0
        assert "LRU-evicted" in capsys.readouterr().out
        assert cache.size_bytes() == 0

    def test_cache_prune_rejects_conflicting_limits(self, capsys, tmp_path):
        code = cli_main(
            ["cache", "prune", "--cache-dir", str(tmp_path), "--max-bytes", "1", "--max-gib", "1"]
        )
        assert code == 2
        assert "at most one" in capsys.readouterr().err

    def test_uppercase_output_extension_accepted_by_cli(self, tmp_path, capsys):
        out_path = tmp_path / "RESULTS.JSON"
        assert cli_main(
            ["sweep", "smoke", "--no-cache", "--output", str(out_path), "--max-rows", "0"]
        ) == 0
        capsys.readouterr()
        assert json.loads(out_path.read_text(encoding="utf-8"))["num_points"] > 0


def test_math_isfinite_guard():
    """compare handles rows whose floats are non-finite without crashing."""
    report = compare_results(
        _result([_row(tflops_per_gpu=float("nan"))]),
        _result([_row(tflops_per_gpu=float("nan"))]),
    )
    assert not report.changed
    report = compare_results(
        _result([_row(tflops_per_gpu=float("inf"))]),
        _result([_row(tflops_per_gpu=100.0)]),
    )
    assert report.changed
    assert math.isinf(report.comparisons[0].deltas["tflops_per_gpu"][0])
