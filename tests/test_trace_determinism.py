"""Determinism regression tests for trace generation.

The sweep cache's content addressing is only sound if generating a trace from
the same :class:`TrainingConfig` always yields a byte-identical event stream;
these tests pin that property across model families and training options, and
cover the stability/sensitivity of :func:`config_fingerprint`.
"""

from __future__ import annotations

import pytest

from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceGenerator, config_fingerprint
from repro.workloads.training import TrainingConfig


def _dense(**overrides) -> TrainingConfig:
    defaults = dict(
        model=get_model("gpt2-345m"),
        parallelism=ParallelismConfig(tensor_parallel=1, pipeline_parallel=4, data_parallel=2),
        micro_batch_size=2,
        num_microbatches=2,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def _moe(**overrides) -> TrainingConfig:
    defaults = dict(
        model=get_model("qwen1.5-moe-a2.7b"),
        parallelism=ParallelismConfig(
            tensor_parallel=1, pipeline_parallel=4, data_parallel=2, expert_parallel=4
        ),
        micro_batch_size=1,
        num_microbatches=2,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


CONFIG_CASES: dict[str, TrainingConfig] = {
    "dense": _dense(),
    "dense-recompute": _dense(recompute=True),
    "dense-zero3": _dense(zero_stage=3),
    "dense-vpp": _dense(
        parallelism=ParallelismConfig(
            tensor_parallel=1, pipeline_parallel=4, data_parallel=2, virtual_pipeline_chunks=2
        )
    ),
    "moe": _moe(),
    "moe-recompute": _moe(recompute=True),
}


@pytest.mark.parametrize("case", sorted(CONFIG_CASES))
class TestByteIdenticalRegeneration:
    def test_two_generators_emit_identical_bytes(self, case):
        config = CONFIG_CASES[case]
        first = TraceGenerator(config, seed=3, scale=0.5).generate()
        second = TraceGenerator(config, seed=3, scale=0.5).generate()
        assert first.dumps() == second.dumps()
        assert first.digest() == second.digest()

    def test_reusing_one_generator_is_deterministic(self, case):
        generator = TraceGenerator(CONFIG_CASES[case], seed=7, scale=0.5)
        assert generator.generate().dumps() == generator.generate().dumps()


class TestSerializationRoundTrip:
    @pytest.mark.parametrize("case", ["dense", "moe"])
    def test_save_load_preserves_digest(self, case, tmp_path):
        trace = TraceGenerator(CONFIG_CASES[case], seed=5, scale=0.5).generate()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.digest() == trace.digest()
        assert loaded.num_events == trace.num_events
        assert loaded.metadata == trace.metadata
        assert loaded.module_spans == trace.module_spans

    def test_loads_rejects_empty_input(self):
        with pytest.raises(ValueError):
            Trace.loads("")


class TestSeedSensitivity:
    def test_moe_routing_depends_on_seed(self):
        config = CONFIG_CASES["moe"]
        sizes_a = sorted(
            e.size for e in TraceGenerator(config, seed=0, scale=0.5).generate().events
            if e.dyn and e.is_alloc()
        )
        sizes_b = sorted(
            e.size for e in TraceGenerator(config, seed=1, scale=0.5).generate().events
            if e.dyn and e.is_alloc()
        )
        assert sizes_a != sizes_b

    def test_dense_event_stream_ignores_seed_but_metadata_keeps_it(self):
        config = CONFIG_CASES["dense"]
        a = TraceGenerator(config, seed=0, scale=0.5).generate()
        b = TraceGenerator(config, seed=1, scale=0.5).generate()
        assert [e.size for e in a.events] == [e.size for e in b.events]
        assert a.metadata.seed != b.metadata.seed
        assert a.digest() != b.digest()  # seed is part of the content address


class TestConfigFingerprint:
    def test_fingerprint_is_stable_for_equal_configs(self):
        a = config_fingerprint(_dense(), seed=2, scale=0.5)
        b = config_fingerprint(_dense(), seed=2, scale=0.5)
        assert a == b

    @pytest.mark.parametrize(
        "variant",
        [
            {"micro_batch_size": 4},
            {"recompute": True},
            {"zero_stage": 1},
            {"num_microbatches": 4},
            {"label": "other"},
        ],
    )
    def test_fingerprint_changes_with_config(self, variant):
        base = config_fingerprint(_dense(), seed=0, scale=0.5)
        assert config_fingerprint(_dense(**variant), seed=0, scale=0.5) != base

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": 1},
            {"scale": 0.25},
            {"rank": 1},
            {"async_free_skew": 0},
            {"size_jitter": (1.0,)},
        ],
    )
    def test_fingerprint_changes_with_generator_knobs(self, kwargs):
        base = config_fingerprint(_dense())
        assert config_fingerprint(_dense(), **kwargs) != base

    def test_fingerprint_matches_generation_inputs_not_outputs(self):
        """Dense streams ignore the seed, but the fingerprint must not: cache
        keys follow the generation inputs (conservative over-segmentation)."""
        assert config_fingerprint(_dense(), seed=0) != config_fingerprint(_dense(), seed=1)
