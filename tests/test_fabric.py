"""Properties of the hierarchical network fabric (TIMELINE_VERSION=2).

Four families of guarantees:

* **Degeneracy** -- a single-node or equal-tier topology with
  ``comm_overlap_factor=0`` and zero per-phase allocator overhead reproduces
  the TIMELINE_VERSION=1 durations *exactly* (the values hardcoded below are
  the version-1 golden fixture entries), and the multi-node equal-tier
  topology collapses onto the flat formula bit-for-bit.
* **Monotonicity** -- iteration time is monotone non-increasing in
  ``comm_overlap_factor`` and in ``intra_node_gbytes_per_sec``, while
  ``comm_seconds`` is invariant under overlap (hiding communication must not
  erase it from the accounting).
* **Per-phase overhead** -- on a bubble-free schedule the injected per-phase
  driver costs degenerate to the old additive term; on pipelined schedules
  two allocators with different per-event overheads produce different
  ``iteration_seconds`` on the same config (the acceptance criterion: the
  allocator sits inside the critical path now).
* **Differential** -- the compiled dense fast path and the general event loop
  agree on all four per-rank second totals, not just ``iteration_seconds``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.gpu.specs import GPU_SPECS, GPUSpec, NodeTopology
from repro.search.bounds import throughput_upper_bound
from repro.search.cluster import ClusterSpec
from repro.timeline.simulator import TimelineSimulator, simulate_timeline
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig

GPU = GPU_SPECS["A800-80GB"]

#: The same 2-node tiered fabric the ``fabric-smoke`` sweep preset prices:
#: 4 ranks per node, NVLink-class intra tier, IB-class inter tier.
TIERED = dataclasses.replace(
    GPU,
    gpus_per_node=4,
    intra_node_gbytes_per_sec=160.0,
    inter_node_gbytes_per_sec=25.0,
)

#: TIMELINE_VERSION=1 golden iteration/comm durations (the recorded fixture
#: values before the fabric landed), keyed by the golden-case name.  The
#: degenerate fabric must reproduce them to float precision -- not "close".
V1_DURATIONS = {
    "gpt-tiny": (0.00013408462011834318, 0.0),
    "gpt-tiny-recompute-vpp": (0.00014898291124260354, 0.0),
    "moe-tiny-comm-free": (0.000976787198781569, 0.0),
    "moe-tiny-comm": (0.0011455219187815689, 0.00011620352),
}


def _dense_config(**changes) -> TrainingConfig:
    config = TrainingConfig(
        model=get_model("gpt-tiny"),
        parallelism=ParallelismConfig(pipeline_parallel=2, data_parallel=2),
        micro_batch_size=2,
        num_microbatches=2,
    )
    return config.with_(**changes) if changes else config


def _moe_config(**changes) -> TrainingConfig:
    config = TrainingConfig(
        model=get_model("moe-tiny"),
        parallelism=ParallelismConfig(
            pipeline_parallel=2, data_parallel=4, expert_parallel=4
        ),
        micro_batch_size=1,
        num_microbatches=2,
        moe_imbalance=0.6,
    )
    return config.with_(**changes) if changes else config


def _v1_cases() -> dict[str, dict]:
    dense = _dense_config()
    return {
        "gpt-tiny": {"config": dense, "seed": 0},
        "gpt-tiny-recompute-vpp": {
            "config": dense.with_(
                recompute=True,
                parallelism=ParallelismConfig(
                    pipeline_parallel=2, data_parallel=2, virtual_pipeline_chunks=2
                ),
            ),
            "seed": 1,
        },
        "moe-tiny-comm-free": {"config": _moe_config(), "seed": 0},
        "moe-tiny-comm": {"config": _moe_config(moe_comm_factor=1.0), "seed": 0},
    }


# ---------------------------------------------------------------------- #
# NodeTopology
# ---------------------------------------------------------------------- #
class TestNodeTopology:
    def test_single_node_degenerate(self):
        topo = NodeTopology(pipeline_parallel=2, expert_parallel=4, gpus_per_node=0)
        assert topo.num_nodes == 1
        assert topo.node_of(1, 3) == 0
        assert topo.intra_fraction(0, 0) == 1.0
        assert not topo.ep_group_spans_nodes(0)

    def test_two_node_layout_spans_ep_groups(self):
        # Expert-major linearisation: rank index = ep * pp + stage.  With
        # pp=2, ep=4 and 4 slots per node, ep 0-1 land on node 0 and ep 2-3
        # on node 1 for every stage -- EP groups straddle the node boundary.
        topo = NodeTopology(pipeline_parallel=2, expert_parallel=4, gpus_per_node=4)
        assert topo.num_nodes == 2
        assert [topo.node_of(0, ep) for ep in range(4)] == [0, 0, 1, 1]
        assert [topo.node_of(1, ep) for ep in range(4)] == [0, 0, 1, 1]
        assert topo.ep_group_spans_nodes(0)
        assert topo.ep_group_spans_nodes(1)
        # Each rank shares its node with exactly half of its EP peers.
        assert topo.intra_fraction(0, 0) == 0.5
        assert topo.intra_fraction(1, 3) == 0.5

    def test_whole_group_on_one_node_stays_intra(self):
        topo = NodeTopology(pipeline_parallel=1, expert_parallel=4, gpus_per_node=8)
        assert topo.num_nodes == 1
        assert not topo.ep_group_spans_nodes(0)
        assert topo.intra_fraction(0, 2) == 1.0

    def test_num_nodes_rounds_up(self):
        topo = NodeTopology(pipeline_parallel=3, expert_parallel=2, gpus_per_node=4)
        assert topo.num_ranks == 6
        assert topo.num_nodes == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeTopology(pipeline_parallel=0, expert_parallel=1)


# ---------------------------------------------------------------------- #
# GPUSpec tier accessors
# ---------------------------------------------------------------------- #
class TestGPUSpecTiers:
    def test_stock_specs_are_flat(self):
        for spec in GPU_SPECS.values():
            assert not spec.is_tiered
            assert spec.intra_tier_gbytes_per_sec == spec.a2a_gbytes_per_sec
            assert spec.inter_tier_gbytes_per_sec == spec.a2a_gbytes_per_sec
            assert spec.fastest_tier_gbytes_per_sec == spec.a2a_gbytes_per_sec

    def test_tiered_spec_accessors(self):
        assert TIERED.is_tiered
        assert TIERED.intra_tier_gbytes_per_sec == 160.0
        assert TIERED.inter_tier_gbytes_per_sec == 25.0
        assert TIERED.fastest_tier_gbytes_per_sec == 160.0

    def test_equal_tiers_are_not_tiered(self):
        equal = dataclasses.replace(
            GPU,
            gpus_per_node=4,
            intra_node_gbytes_per_sec=50.0,
            inter_node_gbytes_per_sec=50.0,
        )
        assert not equal.is_tiered

    def test_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(GPU, intra_node_gbytes_per_sec=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(GPU, gpus_per_node=-1)


# ---------------------------------------------------------------------- #
# Degeneracy: version-1 reproduction to float precision
# ---------------------------------------------------------------------- #
class TestV1Reproduction:
    @pytest.mark.parametrize("name", sorted(V1_DURATIONS))
    def test_flat_default_reproduces_v1_exactly(self, name):
        case = _v1_cases()[name]
        result = TimelineSimulator(case["config"], seed=case["seed"]).run()
        iteration, comm = V1_DURATIONS[name]
        assert result.iteration_seconds == iteration
        assert result.comm_seconds == comm

    @pytest.mark.parametrize("name", sorted(V1_DURATIONS))
    def test_equal_tier_multinode_reproduces_v1_exactly(self, name):
        # Multi-node but every byte moves at the same rate: the hierarchical
        # mix is pointless and the simulator must take the flat (bit-exact)
        # path, even though EP groups span nodes.
        case = _v1_cases()[name]
        equal = dataclasses.replace(
            GPU,
            gpus_per_node=4,
            intra_node_gbytes_per_sec=GPU.a2a_gbytes_per_sec,
            inter_node_gbytes_per_sec=GPU.a2a_gbytes_per_sec,
        )
        result = TimelineSimulator(case["config"], gpu=equal, seed=case["seed"]).run()
        iteration, comm = V1_DURATIONS[name]
        assert result.iteration_seconds == iteration
        assert result.comm_seconds == comm

    def test_tiered_two_node_strictly_changes_comm(self):
        config = _moe_config(moe_comm_factor=1.0)
        flat = TimelineSimulator(config, gpu=GPU, seed=0).run()
        tiered = TimelineSimulator(config, gpu=TIERED, seed=0).run()
        assert tiered.comm_seconds != flat.comm_seconds
        # This fabric's inter tier is slower than the flat rate and the EP
        # groups span nodes, so communication strictly slows down.
        assert tiered.comm_seconds > flat.comm_seconds
        assert tiered.iteration_seconds > flat.iteration_seconds

    def test_tiered_comm_free_is_unaffected(self):
        # Without collectives there is nothing to price on any tier.
        config = _moe_config()
        flat = TimelineSimulator(config, gpu=GPU, seed=0).run()
        tiered = TimelineSimulator(config, gpu=TIERED, seed=0).run()
        assert tiered.iteration_seconds == flat.iteration_seconds
        assert tiered.comm_seconds == flat.comm_seconds == 0.0


# ---------------------------------------------------------------------- #
# Monotonicity
# ---------------------------------------------------------------------- #
class TestMonotonicity:
    def test_iteration_monotone_in_overlap(self):
        config = _moe_config(moe_comm_factor=1.0)
        previous = float("inf")
        for overlap in (0.0, 0.25, 0.5, 0.75, 1.0):
            result = TimelineSimulator(
                config.with_(comm_overlap_factor=overlap), gpu=TIERED, seed=0
            ).run()
            assert result.iteration_seconds <= previous
            previous = result.iteration_seconds

    def test_overlap_zero_is_bit_exact_v1(self):
        config = _moe_config(moe_comm_factor=1.0)
        base = TimelineSimulator(config, gpu=GPU, seed=0).run()
        explicit = TimelineSimulator(
            config.with_(comm_overlap_factor=0.0), gpu=GPU, seed=0
        ).run()
        assert explicit.iteration_seconds == base.iteration_seconds
        assert explicit.digest() == base.digest()

    def test_overlap_does_not_change_comm_seconds(self):
        # Overlap hides communication under compute; the collective still
        # happens and its full duration must stay on the books.
        config = _moe_config(moe_comm_factor=1.0)
        base = TimelineSimulator(config, gpu=TIERED, seed=0).run()
        for overlap in (0.25, 0.5, 1.0):
            result = TimelineSimulator(
                config.with_(comm_overlap_factor=overlap), gpu=TIERED, seed=0
            ).run()
            assert result.comm_seconds == base.comm_seconds

    def test_full_overlap_still_pays_unhidden_remainder(self):
        # overlap=1 hides at most the expert duration of each layer; the
        # iteration can shrink to the comm-free time but never below it.
        config = _moe_config(moe_comm_factor=1.0, comm_overlap_factor=1.0)
        comm_free = TimelineSimulator(_moe_config(), gpu=TIERED, seed=0).run()
        result = TimelineSimulator(config, gpu=TIERED, seed=0).run()
        assert result.iteration_seconds >= comm_free.iteration_seconds

    def test_iteration_monotone_in_intra_bandwidth(self):
        config = _moe_config(moe_comm_factor=1.0)
        previous = float("inf")
        for intra in (25.0, 50.0, 100.0, 200.0, 400.0):
            gpu = dataclasses.replace(
                GPU,
                gpus_per_node=4,
                intra_node_gbytes_per_sec=intra,
                inter_node_gbytes_per_sec=25.0,
            )
            result = TimelineSimulator(config, gpu=gpu, seed=0).run()
            assert result.iteration_seconds <= previous
            previous = result.iteration_seconds


# ---------------------------------------------------------------------- #
# Per-phase allocator overhead
# ---------------------------------------------------------------------- #
class TestPerPhaseOverhead:
    def test_bubble_free_schedule_degenerates_to_additive(self):
        # pp=1, no virtual chunks: the schedule has no bubbles, so spreading
        # the overhead across phases must sum back to the old additive term
        # exactly.
        config = TrainingConfig(
            model=get_model("gpt-tiny"),
            parallelism=ParallelismConfig(data_parallel=2),
            micro_batch_size=2,
            num_microbatches=8,
        )
        overhead = 0.0123
        base = TimelineSimulator(config, gpu=GPU, seed=0).run()
        injected = TimelineSimulator(
            config, gpu=GPU, seed=0, allocator_overhead_seconds=overhead
        ).run()
        assert injected.iteration_seconds == pytest.approx(
            base.iteration_seconds + overhead, abs=1e-15
        )
        assert injected.allocator_overhead_seconds == overhead

    def test_zero_overhead_is_bit_exact(self):
        config = _dense_config()
        base = TimelineSimulator(config, gpu=GPU, seed=0).run()
        explicit = TimelineSimulator(
            config, gpu=GPU, seed=0, allocator_overhead_seconds=0.0
        ).run()
        assert explicit.digest() == base.digest()

    def test_pipelined_schedule_amplifies_overhead(self):
        # With pipeline stages the per-phase costs ride through the
        # dependency structure: the iteration grows by *more* than the raw
        # additive term (stalls downstream of slower phases stretch too).
        config = _dense_config()
        overhead = 0.001
        base = TimelineSimulator(config, gpu=GPU, seed=0).run()
        injected = TimelineSimulator(
            config, gpu=GPU, seed=0, allocator_overhead_seconds=overhead
        ).run()
        assert injected.iteration_seconds > base.iteration_seconds + overhead

    def test_different_overheads_move_iteration(self):
        config = _dense_config()
        small = TimelineSimulator(
            config, gpu=GPU, seed=0, allocator_overhead_seconds=0.001
        ).run()
        large = TimelineSimulator(
            config, gpu=GPU, seed=0, allocator_overhead_seconds=0.002
        ).run()
        assert small.iteration_seconds < large.iteration_seconds

    def test_memo_keys_on_overhead(self):
        config = _dense_config()
        a = simulate_timeline(config, gpu=GPU, allocator_overhead_seconds=0.001)
        b = simulate_timeline(config, gpu=GPU, allocator_overhead_seconds=0.002)
        assert a.iteration_seconds != b.iteration_seconds

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            TimelineSimulator(
                _dense_config(), gpu=GPU, seed=0, allocator_overhead_seconds=-1.0
            )

    def test_allocator_choice_moves_iteration_end_to_end(self):
        # The acceptance criterion: two allocators with different per-event
        # overheads produce different iteration_seconds on the same config,
        # through the ordinary run_job path.
        from repro.simulator.runner import run_job

        config = _dense_config()
        runs = {
            name: run_job(
                config, name, with_throughput=True, timing="timeline", scale=0.5
            )
            for name in ("torch2.0", "stalloc")
        }
        iterations = {
            name: job.timeline.iteration_seconds for name, job in runs.items()
        }
        overheads = {
            name: job.timeline.allocator_overhead_seconds
            for name, job in runs.items()
        }
        assert overheads["torch2.0"] != overheads["stalloc"]
        assert iterations["torch2.0"] != iterations["stalloc"]
        # The estimate comes straight from the injected simulation -- the
        # overhead must not be added a second time downstream.
        for name, job in runs.items():
            assert job.throughput.iteration_seconds == iterations[name]
            assert job.throughput.allocator_overhead_seconds == 0.0


# ---------------------------------------------------------------------- #
# Differential: compiled dense plan vs general event loop
# ---------------------------------------------------------------------- #
class TestDenseDifferential:
    @pytest.mark.parametrize(
        "config",
        [
            _dense_config(),
            _dense_config(
                recompute=True,
                parallelism=ParallelismConfig(
                    pipeline_parallel=2, data_parallel=2, virtual_pipeline_chunks=2
                ),
            ),
            TrainingConfig(
                model=get_model("gpt-tiny"),
                parallelism=ParallelismConfig(data_parallel=2),
                micro_batch_size=2,
                num_microbatches=4,
            ),
        ],
        ids=["pp2", "pp2-vpp2-recompute", "pp1"],
    )
    def test_fast_path_matches_general_loop(self, config):
        fast = TimelineSimulator(config, gpu=GPU, seed=0).run()
        general = TimelineSimulator(config, gpu=GPU, seed=0).run(force_general=True)
        assert fast.iteration_seconds == general.iteration_seconds
        for fast_rank, general_rank in zip(fast.ranks, general.ranks):
            assert fast_rank.rank == general_rank.rank
            # All four per-rank totals, not just the iteration: the dense
            # fast path claims comm_seconds=0.0 and the general loop must
            # agree event-by-event.
            assert fast_rank.compute_seconds == general_rank.compute_seconds
            assert fast_rank.comm_seconds == general_rank.comm_seconds
            assert fast_rank.stall_seconds == general_rank.stall_seconds
            assert fast_rank.finish_seconds == general_rank.finish_seconds

    def test_fast_path_matches_general_loop_with_overhead(self):
        config = _dense_config()
        fast = TimelineSimulator(
            config, gpu=GPU, seed=0, allocator_overhead_seconds=0.003
        ).run()
        general = TimelineSimulator(
            config, gpu=GPU, seed=0, allocator_overhead_seconds=0.003
        ).run(force_general=True)
        assert fast.iteration_seconds == general.iteration_seconds
        for fast_rank, general_rank in zip(fast.ranks, general.ranks):
            assert fast_rank.compute_seconds == general_rank.compute_seconds
            assert fast_rank.comm_seconds == general_rank.comm_seconds
            assert fast_rank.stall_seconds == general_rank.stall_seconds
            assert fast_rank.finish_seconds == general_rank.finish_seconds


# ---------------------------------------------------------------------- #
# Bounds stay admissible on tiered fabrics
# ---------------------------------------------------------------------- #
class TestBoundAdmissibility:
    @pytest.mark.parametrize("overlap", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("gpu", [GPU, TIERED], ids=["flat", "tiered"])
    def test_upper_bound_dominates_timeline_throughput(self, gpu, overlap):
        config = _moe_config(moe_comm_factor=1.0, comm_overlap_factor=overlap)
        result = TimelineSimulator(config, gpu=gpu, seed=0).run()
        measured = config.tokens_per_iteration / result.iteration_seconds
        bound = throughput_upper_bound(config, gpu, timing="timeline")
        assert bound >= measured

    def test_timeline_bound_tighter_than_analytical_for_comm_jobs(self):
        config = _moe_config(moe_comm_factor=1.0)
        loose = throughput_upper_bound(config, TIERED, timing="analytical")
        tight = throughput_upper_bound(config, TIERED, timing="timeline")
        assert tight < loose

    def test_bound_prices_fastest_tier(self):
        # A faster intra tier raises the bound even while the slow inter tier
        # dominates the measured time -- that is what keeps it admissible.
        config = _moe_config(moe_comm_factor=1.0)
        slow = dataclasses.replace(
            GPU, gpus_per_node=4,
            intra_node_gbytes_per_sec=50.0, inter_node_gbytes_per_sec=25.0,
        )
        fast = dataclasses.replace(
            GPU, gpus_per_node=4,
            intra_node_gbytes_per_sec=400.0, inter_node_gbytes_per_sec=25.0,
        )
        assert throughput_upper_bound(
            config, fast, timing="timeline"
        ) >= throughput_upper_bound(config, slow, timing="timeline")


# ---------------------------------------------------------------------- #
# ClusterSpec node form + fabric plumbing
# ---------------------------------------------------------------------- #
class TestClusterFabric:
    def test_parse_node_form(self):
        cluster = ClusterSpec.parse("2x8xA800-80GB@40")
        assert cluster.num_nodes == 2
        assert cluster.num_devices == 16
        assert cluster.gpus_per_node == 8
        assert cluster.device_capacity_gib == 40.0
        assert cluster.label == "2x8xA800-80GB@40"
        assert cluster.fabric == {"gpus_per_node": 8}

    def test_parse_flat_form_unchanged(self):
        cluster = ClusterSpec.parse("8xA800-80GB")
        assert cluster.num_nodes == 1
        assert cluster.num_devices == 8
        assert cluster.gpus_per_node == 0
        assert cluster.fabric == {}
        assert cluster.fabric_gpu == cluster.gpu

    def test_malformed_capacity_gets_documented_message(self):
        with pytest.raises(ValueError, match="cannot parse cluster"):
            ClusterSpec.parse("8xA800-80GB@1.2.3")

    def test_devices_must_divide_into_nodes(self):
        with pytest.raises(ValueError, match="divide evenly"):
            ClusterSpec(device_name="A800-80GB", num_devices=9, num_nodes=2)

    def test_dict_form_with_bandwidths_roundtrips(self):
        cluster = ClusterSpec.from_dict(
            {
                "devices": "2x4xA800-80GB",
                "intra_node_gbytes_per_sec": 160,
                "inter_node_gbytes_per_sec": 25,
            }
        )
        assert cluster.fabric == {
            "gpus_per_node": 4,
            "intra_node_gbytes_per_sec": 160,
            "inter_node_gbytes_per_sec": 25,
        }
        assert cluster.fabric_gpu.is_tiered
        assert ClusterSpec.from_dict(cluster.to_dict()) == cluster

    def test_search_candidates_carry_cluster_fabric(self):
        from repro.search.space import SearchSpec

        spec = SearchSpec(
            name="fabric-probe",
            model="moe-tiny",
            cluster=ClusterSpec.from_dict(
                {
                    "devices": "2x4xA800-80GB",
                    "intra_node_gbytes_per_sec": 160,
                    "inter_node_gbytes_per_sec": 25,
                }
            ),
            global_batch=8,
            allocators=["torch2.3"],
        )
        points = spec.enumerate_candidates()
        assert points
        for point in points:
            assert dict(point.fabric) == spec.cluster.fabric


# ---------------------------------------------------------------------- #
# Sweep fabric axis
# ---------------------------------------------------------------------- #
class TestSweepFabricAxis:
    def test_fabric_smoke_preset_expands(self):
        from repro.sweep.spec import load_spec

        spec = load_spec("fabric-smoke")
        points = spec.expand()
        assert len(points) == 4
        labels = {point.fabric_label for point in points}
        assert "fabric=flat" in labels
        assert any(label.startswith("fabric=gpn4") for label in labels)
        flat = [point for point in points if not point.fabric]
        tiered = [point for point in points if point.fabric]
        assert len(flat) == len(tiered) == 2
        for point in tiered:
            assert dict(point.fabric) == {
                "gpus_per_node": 4,
                "intra_node_gbytes_per_sec": 160,
                "inter_node_gbytes_per_sec": 25,
            }
        # The fabric is part of the cache identity and the row label, but
        # never part of the config label (it does not shape traces).
        for point in points:
            assert point.cache_payload()["fabric"] == dict(point.fabric)
            assert "fabric" not in point.config.label
            assert point.fabric_label in point.row_label

    def test_unknown_fabric_field_rejected(self):
        from repro.sweep.spec import SweepSpec

        with pytest.raises(ValueError, match="fabric"):
            SweepSpec(
                name="bad",
                allocators=["torch2.3"],
                model="moe-tiny",
                grid={"fabric": [{"nvlink": 300}]},
            )

    def test_overlap_axis_gets_short_label(self):
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            name="ovl",
            allocators=["torch2.3"],
            model="moe-tiny",
            parallelism={"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
            base={"num_microbatches": 2, "micro_batch_size": 1},
            grid={"comm_overlap_factor": [0.0, 0.5]},
        )
        labels = [point.config.label for point in spec.expand()]
        assert labels == ["ovl=0.0", "ovl=0.5"]

    def test_fabric_sweep_moves_comm_seconds(self):
        # End-to-end: the engine threads the fabric into run_job, so tiered
        # rows must report more comm time and overlap rows less iteration.
        from repro.sweep.engine import run_sweep
        from repro.sweep.spec import load_spec

        spec = load_spec("fabric-smoke")
        spec.scale = 0.5
        result = run_sweep(spec)
        rows = {
            (row["config"], row["allocator"]): row for row in result.rows
        }
        assert len(rows) == 4

        def pick(fabric: str, overlap: float) -> dict:
            for (config, _), row in rows.items():
                if fabric in config and f"ovl={overlap}" in config:
                    return row
            raise AssertionError(f"no row for {fabric} ovl={overlap}")

        flat = pick("fabric=flat", 0.0)
        tiered = pick("fabric=gpn4", 0.0)
        assert tiered["comm_seconds"] > flat["comm_seconds"]
        assert tiered["iteration_seconds"] > flat["iteration_seconds"]
        overlapped = pick("fabric=gpn4", 0.5)
        assert overlapped["iteration_seconds"] < tiered["iteration_seconds"]
        assert overlapped["comm_seconds"] == tiered["comm_seconds"]


# ---------------------------------------------------------------------- #
# Accounting precision (the bugfix sweep)
# ---------------------------------------------------------------------- #
class TestAccountingPrecision:
    def test_replay_as_dict_keeps_full_precision(self):
        from repro.simulator.replay import ReplayResult
        from repro.simulator.metrics import MemoryMetrics

        overhead = 5.4321e-5  # sub-100us: the old round(4) flattened it to 0.0001
        result = ReplayResult(
            allocator_name="x",
            metrics=MemoryMetrics(peak_allocated_bytes=0, peak_reserved_bytes=0),
            overhead_seconds=overhead,
        )
        assert result.as_dict()["overhead_seconds"] == overhead

    def test_fmt_shows_small_floats(self):
        from repro.sweep.results import _fmt

        assert _fmt(5.4321e-5) == "5.432e-05"
        assert _fmt(-5.4321e-5) == "-5.432e-05"
        assert _fmt(0.0) == "0.000"
        assert _fmt(1.2345) == "1.234"


# ---------------------------------------------------------------------- #
# Export tier annotation
# ---------------------------------------------------------------------- #
class TestExportTierAnnotation:
    def _trace(self, gpu: GPUSpec) -> dict:
        from repro.timeline.export import chrome_trace_dict

        config = _moe_config(moe_comm_factor=1.0)
        result = TimelineSimulator(config, gpu=gpu, seed=0).run()
        return chrome_trace_dict(result)

    def test_flat_fabric_marks_comm_intra(self):
        trace = self._trace(GPU)
        assert trace["otherData"]["gpus_per_node"] == 0
        comm = [
            event
            for event in trace["traceEvents"]
            if event.get("name") in ("a2a_dispatch", "a2a_combine")
        ]
        assert comm
        assert all(event["args"]["tier"] == "intra" for event in comm)

    def test_spanning_fabric_marks_comm_mixed(self):
        trace = self._trace(TIERED)
        assert trace["otherData"]["gpus_per_node"] == 4
        comm = [
            event
            for event in trace["traceEvents"]
            if event.get("name") in ("a2a_dispatch", "a2a_combine")
        ]
        assert comm
        assert all(event["args"]["tier"] == "mixed" for event in comm)

    def test_compute_events_not_annotated(self):
        trace = self._trace(TIERED)
        for event in trace["traceEvents"]:
            if event.get("name") in ("forward", "backward"):
                assert "tier" not in event["args"]
