"""Seeded property/fuzz suite for generation workloads.

Generation traces are the adversarial input for a static memory planner: the
KV cache is re-allocated larger at every decode step, so allocation sizes are
a function of *sequence position* rather than a fixed per-phase inventory.
This suite locks down the invariants that make that dynamism analyzable,
across ~200 randomly drawn configurations (fixed-seed RNG, so failures
reproduce):

* **KV lifetime shape** -- per (layer, micro-batch, chunk) unit the cache
  only grows (strictly increasing alloc sizes until the ``max_new_tokens``
  cap), and the total live KV bytes sampled at phase boundaries rise to a
  single peak and fall back to exactly zero (every cache is released when
  its sequence completes);
* **workload-kind equivalences** -- ``decode_steps=0`` generation produces
  the inference event stream byte for byte, and an inference trace allocates
  exactly the training trace's INIT+forward allocations minus gradient and
  optimizer state;
* **monotonicity** -- peak memory is strictly increasing in ``decode_steps``
  and, below the cap, in ``max_new_tokens``;
* **bound admissibility** -- the search planner's KV-aware
  ``memory_lower_bound`` never exceeds a real generation trace's peak, so
  pruning on it can only kill configurations that genuinely cannot fit;
* **allocator differential** -- native and STAlloc reach the same OOM
  verdict on generation traces at both generous and starved capacities.

The full fuzz sweeps are marked ``slow`` (run with ``-m slow``); an
unmarked prefix of the same draws keeps the tier-1 suite fast.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.events import PhaseKind, TensorCategory
from repro.gpu.device import GIB
from repro.search import memory_lower_bound, search_points
from repro.search.bounds import kv_cache_bytes_floor
from repro.simulator.runner import run_workload
from repro.sweep.spec import load_spec
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig

_LAYERS = {"gpt-tiny": 4, "moe-tiny": 8}


def _config(
    model: str = "gpt-tiny",
    *,
    kind: str = "generation",
    pipeline: int = 2,
    chunks: int = 1,
    expert: int = 1,
    mbs: int = 2,
    m: int = 2,
    decode_steps: int = 4,
    max_new_tokens: int = 0,
    imbalance: float = 0.0,
    comm_factor: float = 0.0,
) -> TrainingConfig:
    return TrainingConfig(
        model=get_model(model),
        parallelism=ParallelismConfig(
            pipeline_parallel=pipeline,
            data_parallel=4 if model == "moe-tiny" else 2,
            expert_parallel=expert,
            virtual_pipeline_chunks=chunks,
        ),
        micro_batch_size=mbs,
        num_microbatches=m,
        workload_kind=kind,
        decode_steps=decode_steps if kind == "generation" else 0,
        max_new_tokens=max_new_tokens if kind == "generation" else 0,
        moe_imbalance=imbalance,
        moe_comm_factor=comm_factor,
    )


def _draw_configs(count: int, *, rng_seed: int) -> list[tuple]:
    """Reproducible (model, pp, vpp, ep, mbs, m, steps, cap, seed) draws."""
    rng = random.Random(rng_seed)
    draws = []
    for _ in range(count):
        model = rng.choice(["gpt-tiny", "moe-tiny"])
        layers = _LAYERS[model]
        pipeline = rng.choice([p for p in (1, 2, 4) if layers % p == 0])
        per_rank = layers // pipeline
        chunks = rng.choice(
            [c for c in (1, 2) if per_rank % c == 0 and (c == 1 or pipeline > 1)]
        )
        expert = rng.choice([1, 2, 4]) if model == "moe-tiny" else 1
        draws.append(
            (
                model,
                pipeline,
                chunks,
                expert,
                rng.choice([1, 2]),             # micro_batch_size
                rng.choice([1, 2, 4]),          # num_microbatches
                rng.randrange(0, 9),            # decode_steps
                rng.choice([0, rng.randrange(1, 13)]),  # max_new_tokens cap
                rng.randrange(10_000),          # trace seed
            )
        )
    return draws


def _case_config(case: tuple, *, kind: str = "generation") -> tuple[TrainingConfig, int]:
    model, pipeline, chunks, expert, mbs, m, steps, cap, seed = case
    config = _config(
        model,
        kind=kind,
        pipeline=pipeline,
        chunks=chunks,
        expert=expert,
        mbs=mbs,
        m=m,
        decode_steps=steps,
        max_new_tokens=cap,
        imbalance=0.6 if model == "moe-tiny" else 0.0,
        comm_factor=1.0 if (model == "moe-tiny" and seed % 2) else 0.0,
    )
    return config, seed


#: Every fuzz test takes its fast prefix from the same 200 draws the slow
#: sweep runs in full, so `-m slow` extends coverage instead of forking it.
FULL_CASES = _draw_configs(200, rng_seed=2026)
FAST_CASES = FULL_CASES[:16]
SLOW_CASES = FULL_CASES[16:]


def _event_keys(trace) -> list[tuple]:
    """Time/req_id-free view of the event stream (stable under renumbering)."""
    return [
        (
            event.kind.value, event.size, event.tag, event.category.value,
            event.module, event.dyn, event.phase.index, event.phase.kind.value,
            event.phase.microbatch, event.phase.chunk,
        )
        for event in trace.events
    ]


def _kv_live_at_phase_ends(trace) -> list[int]:
    """Live KV-cache bytes sampled at every phase boundary."""
    series = []
    live = 0
    current = None
    for event in trace.events:
        if current is not None and event.phase.index != current:
            series.append(live)
        current = event.phase.index
        if event.category is TensorCategory.KV_CACHE:
            live += event.size if event.is_alloc() else -event.size
    series.append(live)
    return series


def _alloc_multiset(trace, *, exclude: tuple = ()) -> Counter:
    """(tag, size, category) multiset of INIT+forward-phase allocations."""
    return Counter(
        (event.tag, event.size, event.category.value)
        for event in trace.events
        if event.is_alloc()
        and event.phase.kind in (PhaseKind.INIT, PhaseKind.FORWARD)
        and event.category not in exclude
    )


# --------------------------------------------------------------------- #
# KV-cache lifetime shape
# --------------------------------------------------------------------- #
def _check_kv_lifetime(case: tuple) -> None:
    config, seed = _case_config(case)
    trace = TraceGenerator(config, seed=seed).generate()
    if config.decode_steps == 0:
        assert trace.kv_peak_bytes() == 0
        assert not any(
            event.category is TensorCategory.KV_CACHE for event in trace.events
        )
        return
    # Per unit, the cache only grows: alloc sizes strictly increase until the
    # max_new_tokens cap stops the re-allocations.
    allocs: dict[tuple, list[int]] = {}
    for event in trace.events:
        if event.is_alloc() and event.category is TensorCategory.KV_CACHE:
            key = (event.tag, event.phase.microbatch, event.phase.chunk)
            allocs.setdefault(key, []).append(event.size)
    assert allocs, case
    for key, sizes in allocs.items():
        assert sizes == sorted(set(sizes)), (case, key, sizes)
    # Total live KV rises to one peak and falls back to exactly zero.
    series = _kv_live_at_phase_ends(trace)
    top = series.index(max(series))
    assert series[: top + 1] == sorted(series[: top + 1]), (case, series)
    assert series[top:] == sorted(series[top:], reverse=True), (case, series)
    assert series[-1] == 0, (case, series)
    assert trace.kv_peak_bytes() >= max(series)
    # The planner's KV floor prices a guaranteed-live subset of that peak.
    assert kv_cache_bytes_floor(config) <= trace.kv_peak_bytes(), case


@pytest.mark.parametrize("case", FAST_CASES)
def test_kv_lifetime_shape(case):
    _check_kv_lifetime(case)


@pytest.mark.slow
@pytest.mark.parametrize("case", SLOW_CASES)
def test_kv_lifetime_shape_full_fuzz(case):
    _check_kv_lifetime(case)


# --------------------------------------------------------------------- #
# Workload-kind equivalences
# --------------------------------------------------------------------- #
def _check_prefill_only_is_inference(case: tuple) -> None:
    model, pipeline, chunks, expert, mbs, m, _, _, seed = case
    prefill_only = (model, pipeline, chunks, expert, mbs, m, 0, 0, seed)
    generation, seed = _case_config(prefill_only)
    inference, _ = _case_config(prefill_only, kind="inference")
    gen_trace = TraceGenerator(generation, seed=seed).generate()
    inf_trace = TraceGenerator(inference, seed=seed).generate()
    assert _event_keys(gen_trace) == _event_keys(inf_trace), case
    assert gen_trace.metadata.workload_kind == "generation"
    assert inf_trace.metadata.workload_kind == "inference"


@pytest.mark.parametrize("case", FAST_CASES)
def test_prefill_only_generation_is_the_inference_trace(case):
    """decode_steps=0 generation emits the inference stream byte for byte."""
    _check_prefill_only_is_inference(case)


@pytest.mark.slow
@pytest.mark.parametrize("case", SLOW_CASES)
def test_prefill_only_generation_is_the_inference_trace_full_fuzz(case):
    _check_prefill_only_is_inference(case)


def _check_inference_is_training_minus_state(case: tuple) -> None:
    config, seed = _case_config(case, kind="inference")
    training = config.with_(workload_kind="training", decode_steps=0, max_new_tokens=0)
    inf_trace = TraceGenerator(config, seed=seed).generate()
    train_trace = TraceGenerator(training, seed=seed).generate()
    assert _alloc_multiset(inf_trace) == _alloc_multiset(
        train_trace,
        exclude=(TensorCategory.GRADIENT, TensorCategory.OPTIMIZER_STATE),
    ), case
    assert inf_trace.peak_allocated_bytes() < train_trace.peak_allocated_bytes()


@pytest.mark.parametrize("case", FAST_CASES)
def test_inference_allocates_training_forward_minus_state(case):
    """An inference trace's INIT+forward allocations are exactly the training
    trace's, minus gradients and optimizer state (sizes are deterministic per
    micro-batch, so the multisets match element for element)."""
    _check_inference_is_training_minus_state(case)


@pytest.mark.slow
@pytest.mark.parametrize("case", SLOW_CASES)
def test_inference_allocates_training_forward_minus_state_full_fuzz(case):
    _check_inference_is_training_minus_state(case)


# --------------------------------------------------------------------- #
# Peak-memory monotonicity in the decode knobs
# --------------------------------------------------------------------- #
def test_peak_strictly_increasing_in_decode_steps():
    """KV peak grows strictly with every decode step; the overall peak never
    shrinks, and once the cache outgrows the prefill activations (the
    KV-bound regime) it grows strictly too."""
    peaks = []
    kv_peaks = []
    for steps in (0, 1, 2, 4, 8):
        trace = TraceGenerator(_config(decode_steps=steps), seed=3).generate()
        peaks.append(trace.peak_allocated_bytes())
        kv_peaks.append(trace.kv_peak_bytes())
    assert peaks == sorted(peaks), peaks
    assert kv_peaks == sorted(set(kv_peaks)), kv_peaks
    assert kv_peaks[0] == 0 and kv_peaks[-1] > 0
    bound_peaks = [
        TraceGenerator(_config(decode_steps=steps), seed=3)
        .generate()
        .peak_allocated_bytes()
        for steps in (1536, 1792, 2048)
    ]
    assert bound_peaks == sorted(set(bound_peaks)), bound_peaks
    assert bound_peaks[0] > peaks[-1]


def test_peak_strictly_increasing_in_max_new_tokens_below_the_cap():
    peaks = []
    kv_peaks = []
    for cap in (512, 1024, 1536, 2048):
        trace = TraceGenerator(
            _config(decode_steps=2048, max_new_tokens=cap), seed=3
        ).generate()
        peaks.append(trace.peak_allocated_bytes())
        kv_peaks.append(trace.kv_peak_bytes())
    assert kv_peaks == sorted(set(kv_peaks)), kv_peaks
    assert peaks == sorted(peaks), peaks
    assert peaks[-1] > peaks[0]
    # A cap equal to decode_steps is the uncapped trace.
    uncapped = TraceGenerator(
        _config(decode_steps=2048, max_new_tokens=0), seed=3
    ).generate()
    assert peaks[-1] == uncapped.peak_allocated_bytes()
    assert kv_peaks[-1] == uncapped.kv_peak_bytes()


# --------------------------------------------------------------------- #
# Search-bound admissibility on generation workloads
# --------------------------------------------------------------------- #
def _check_memory_bound_admissible(case: tuple) -> None:
    config, seed = _case_config(case)
    pipeline = config.parallelism.pipeline_parallel
    expert = config.parallelism.expert_parallel
    for rank in {0, pipeline - 1}:
        for ep_rank in {0, expert - 1}:
            bound = memory_lower_bound(config, rank=rank, ep_rank=ep_rank)
            trace = TraceGenerator(
                config, seed=seed, rank=rank, ep_rank=ep_rank
            ).generate()
            assert bound <= trace.peak_allocated_bytes(), (
                f"bound {bound} exceeds real peak {trace.peak_allocated_bytes()} "
                f"for {config.label or config.describe()} rank ({rank}, {ep_rank})"
            )


@pytest.mark.parametrize("case", FAST_CASES)
def test_memory_lower_bound_admissible_on_generation(case):
    """The KV-aware memory floor never exceeds a real generation trace peak."""
    _check_memory_bound_admissible(case)


@pytest.mark.slow
@pytest.mark.parametrize("case", SLOW_CASES)
def test_memory_lower_bound_admissible_on_generation_full_fuzz(case):
    _check_memory_bound_admissible(case)


def test_search_matches_exhaustive_on_generation_grid():
    """The planner returns the exhaustive argmin on the gen-smoke grid."""
    points = load_spec("gen-smoke").expand()
    searched = search_points(points, name="gen-smoke", cache_dir=None)
    oracle = search_points(points, name="gen-smoke", cache_dir=None, exhaustive=True)
    assert searched.best is not None and oracle.best is not None
    assert (searched.best["config"], searched.best["allocator"]) == (
        oracle.best["config"],
        oracle.best["allocator"],
    )


# --------------------------------------------------------------------- #
# Allocator differential: static planning survives dynamic allocation
# --------------------------------------------------------------------- #
def _check_allocator_verdicts_agree(case: tuple) -> None:
    config, seed = _case_config(case)
    trace = TraceGenerator(config, seed=seed).generate()
    peak_gib = trace.peak_allocated_bytes() / GIB
    for capacity_gib, expect_fit in ((4.0 * peak_gib + 0.05, True),
                                     (0.4 * peak_gib, False)):
        verdicts = {
            name: run_workload(
                config, name, device_capacity_gib=capacity_gib,
                seed=seed, trace=trace,
            ).replay.success
            for name in ("native", "stalloc")
        }
        assert verdicts["native"] is expect_fit, (case, capacity_gib, verdicts)
        assert verdicts["stalloc"] is expect_fit, (case, capacity_gib, verdicts)


@pytest.mark.parametrize("case", FAST_CASES[:6])
def test_native_and_stalloc_agree_on_generation_oom_verdicts(case):
    """Both allocators fit a generous device and OOM a starved one: STAlloc's
    static plan must not change the feasibility verdict on traces whose
    allocation sizes are dynamic in sequence position."""
    _check_allocator_verdicts_agree(case)


@pytest.mark.slow
@pytest.mark.parametrize("case", SLOW_CASES[:40])
def test_native_and_stalloc_agree_on_generation_oom_verdicts_full_fuzz(case):
    _check_allocator_verdicts_agree(case)
