"""Tests for the parallel sweep engine, its spec format and persistent cache."""

from __future__ import annotations

import csv
import json
import time

import pytest

from repro.cli import main as cli_main
from repro.core.stalloc import STAllocConfig
from repro.simulator import runner
from repro.sweep import (
    SweepCache,
    SweepSpec,
    available_presets,
    load_spec,
    run_sweep,
)
from repro.sweep.spec import SWEEP_PRESETS
from repro.workloads.tracegen import TraceGenerator, config_fingerprint


@pytest.fixture(autouse=True)
def _clean_runner_state():
    """Keep the runner's process-wide cache settings isolated per test."""
    yield
    runner.set_persistent_cache(None)
    runner.set_default_jobs(1)
    runner.clear_trace_cache()


def _tiny_spec(**overrides) -> SweepSpec:
    data = {
        "name": "tiny",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"num_microbatches": 2},
        "grid": {"micro_batch_size": [1, 2]},
        "allocators": ["torch2.3", "stalloc"],
        "scale": 0.25,
    }
    data.update(overrides)
    return SweepSpec.from_dict(data)


# ---------------------------------------------------------------------- #
# Spec parsing and expansion
# ---------------------------------------------------------------------- #
class TestSweepSpec:
    @pytest.mark.parametrize("preset", sorted(SWEEP_PRESETS))
    def test_presets_expand_to_declared_size(self, preset):
        spec = load_spec(preset)
        points = spec.expand()
        assert len(points) == spec.num_points > 0
        assert [p.index for p in points] == list(range(len(points)))

    def test_quick_grid_preset_has_at_least_24_points(self):
        assert load_spec("quick-grid").num_points >= 24

    def test_grid_values_reach_the_config(self):
        spec = _tiny_spec(grid={"micro_batch_size": [1, 2], "recompute": [False, True]})
        points = spec.expand()
        assert len(points) == 2 * 2 * 2
        combos = {(p.config.micro_batch_size, p.config.recompute, p.allocator) for p in points}
        assert (2, True, "stalloc") in combos and (1, False, "torch2.3") in combos

    def test_parallelism_and_model_axes(self):
        spec = _tiny_spec(
            grid={"pipeline_parallel": [2, 4], "model": ["gpt2-345m", "llama2-7b"]},
        )
        points = spec.expand()
        assert {p.config.parallelism.pipeline_parallel for p in points} == {2, 4}
        assert {p.config.model.name for p in points} == {"gpt2-345m", "llama2-7b"}
        # Swept parallelism degrees must be visible in the row label.
        assert {p.config.label for p in points} == {"pp=2", "pp=4"}

    def test_preset_axis_builds_preset_configs(self):
        spec = _tiny_spec(grid={"preset": ["Naive", "R"], "micro_batch_size": [1]})
        points = spec.expand()
        recompute = {p.config.label: p.config.recompute for p in points}
        assert recompute["R/mbs=1"] is True
        assert recompute["Naive/mbs=1"] is False

    def test_stalloc_grid_only_applies_to_stalloc(self):
        spec = _tiny_spec(stalloc_grid={"enable_fusion": [True, False]})
        points = spec.expand()
        # 2 configs x (torch2.3 + 2 stalloc variants) = 6 points
        assert len(points) == 6
        torch_points = [p for p in points if p.allocator == "torch2.3"]
        assert all(p.stalloc_overrides == () for p in torch_points)
        stalloc_labels = {p.allocator_label for p in points if p.allocator == "stalloc"}
        assert stalloc_labels == {
            "stalloc[enable_fusion=True]",
            "stalloc[enable_fusion=False]",
        }

    def test_seed_and_scale_axes(self):
        spec = _tiny_spec(grid={"micro_batch_size": [1], "seed": [0, 1], "scale": [0.25, 0.5]})
        points = spec.expand()
        assert {(p.seed, p.scale) for p in points} == {(0, 0.25), (0, 0.5), (1, 0.25), (1, 0.5)}

    def test_unknown_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown grid axis"):
            _tiny_spec(grid={"bogus_axis": [1]})

    def test_unknown_stalloc_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown stalloc_grid axis"):
            _tiny_spec(stalloc_grid={"bogus": [True]})

    def test_empty_allocators_rejected(self):
        with pytest.raises(ValueError, match="at least one allocator"):
            _tiny_spec(allocators=[])

    def test_unknown_allocator_rejected_at_parse_time(self):
        with pytest.raises(ValueError, match="unknown allocator 'torch9.9'"):
            _tiny_spec(allocators=["torch2.3", "torch9.9"])

    def test_unknown_model_rejected_at_parse_time(self):
        with pytest.raises(ValueError, match="unknown model 'gpt5'"):
            _tiny_spec(model="gpt5")
        with pytest.raises(ValueError, match="unknown model 'gpt5'"):
            _tiny_spec(grid={"model": ["gpt2-345m", "gpt5"]})

    def test_unknown_preset_value_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            _tiny_spec(grid={"preset": ["NotAPreset"]})

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec fields"):
            SweepSpec.from_dict({"name": "x", "allocators": ["native"], "wat": 1})

    def test_spec_file_roundtrip(self, tmp_path):
        spec = _tiny_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        loaded = load_spec(path)
        assert loaded.to_dict() == spec.to_dict()

    def test_load_spec_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown sweep preset"):
            load_spec("no-such-preset")

    def test_available_presets_lists_smoke(self):
        assert "smoke" in available_presets()
        assert "quick-grid" in available_presets()


# ---------------------------------------------------------------------- #
# Cache layers
# ---------------------------------------------------------------------- #
class TestSweepCache:
    def test_trace_cache_generates_then_hits(self, tmp_path, tiny_dense_config):
        cache = SweepCache(tmp_path)
        first = cache.get_trace(tiny_dense_config, seed=0, scale=0.25)
        assert cache.stats.trace_misses == 1
        fingerprint = config_fingerprint(tiny_dense_config, seed=0, scale=0.25)
        assert cache.trace_path(fingerprint).exists()
        second = cache.get_trace(tiny_dense_config, seed=0, scale=0.25)
        assert cache.stats.trace_hits == 1
        assert second.digest() == first.digest()

    def test_corrupt_trace_entry_is_regenerated(self, tmp_path, tiny_dense_config):
        cache = SweepCache(tmp_path)
        cache.get_trace(tiny_dense_config, seed=0, scale=0.25)
        fingerprint = config_fingerprint(tiny_dense_config, seed=0, scale=0.25)
        cache.trace_path(fingerprint).write_text("not json\n", encoding="utf-8")
        trace = cache.get_trace(tiny_dense_config, seed=0, scale=0.25)
        assert cache.stats.trace_misses == 2
        assert trace.num_events > 0

    def test_plan_cache_round_trips_stalloc(self, tmp_path, tiny_dense_config):
        cache = SweepCache(tmp_path)
        trace = TraceGenerator(tiny_dense_config, seed=0, scale=0.25).generate()
        first = cache.get_stalloc(trace, STAllocConfig())
        assert cache.stats.plan_misses == 1
        second = cache.get_stalloc(trace, STAllocConfig())
        assert cache.stats.plan_hits == 1
        assert second.plan.pool_size == first.plan.pool_size
        assert second.planning_report() == first.planning_report()
        second.plan.static_plan.validate()

    def test_plan_cache_distinguishes_knobs(self, tmp_path, tiny_dense_config):
        cache = SweepCache(tmp_path)
        trace = TraceGenerator(tiny_dense_config, seed=0, scale=0.25).generate()
        cache.get_stalloc(trace, STAllocConfig())
        cache.get_stalloc(trace, STAllocConfig(enable_gap_insertion=False))
        assert cache.stats.plan_misses == 2

    def test_result_cache_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.result_key("fingerprint", {"allocator": "native"})
        assert cache.load_result(key) is None
        cache.store_result(key, {"status": "ok", "value": 1.5})
        assert cache.load_result(key) == {"status": "ok", "value": 1.5}


# ---------------------------------------------------------------------- #
# Engine execution
# ---------------------------------------------------------------------- #
def _comparable(rows: list[dict]) -> list[dict]:
    """Strip per-run timing/caching fields so rows compare by measurement."""
    return [
        {k: v for k, v in row.items() if k not in ("elapsed_seconds", "cached")} for row in rows
    ]


class TestSweepEngine:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_runs_and_rows_are_complete(self, jobs, tmp_path):
        result = run_sweep(_tiny_spec(), jobs=jobs, cache_dir=tmp_path / "cache")
        assert result.num_points == 4
        assert all(row["status"] == "ok" for row in result.rows)
        assert [row["point"] for row in result.rows] == [0, 1, 2, 3]
        stalloc_rows = [row for row in result.rows if row["allocator"] == "stalloc"]
        assert all("static_pool_gib" in row for row in stalloc_rows)

    def test_parallel_equals_serial(self, tmp_path):
        serial = run_sweep(_tiny_spec(), jobs=1)
        parallel = run_sweep(_tiny_spec(), jobs=4)
        assert _comparable(serial.rows) == _comparable(parallel.rows)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_second_run_is_fully_cached_and_identical(self, jobs, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_sweep(_tiny_spec(), jobs=jobs, cache_dir=cache_dir)
        warm = run_sweep(_tiny_spec(), jobs=jobs, cache_dir=cache_dir)
        assert cold.num_cached == 0
        assert warm.num_cached == warm.num_points == cold.num_points
        assert _comparable(warm.rows) == _comparable(cold.rows)

    def test_reuse_results_false_recomputes_but_reuses_traces_and_plans(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep(_tiny_spec(), jobs=1, cache_dir=cache_dir)
        runner.clear_trace_cache()  # drop the in-memory memo; disk must serve traces
        fresh = run_sweep(_tiny_spec(), jobs=1, cache_dir=cache_dir, reuse_results=False)
        assert fresh.num_cached == 0
        assert fresh.cache_stats["trace_hits"] > 0  # traces were reused from disk
        assert fresh.cache_stats["plan_hits"] > 0  # stalloc plans were reused from disk

    def test_sweep_without_cache_dir(self):
        result = run_sweep(_tiny_spec(), jobs=1)
        assert result.cache_dir is None
        assert result.num_cached == 0

    def test_throughput_columns_in_default_rows(self, tmp_path):
        """Default rows carry full-precision throughput-model estimates."""
        cache_dir = tmp_path / "cache"
        result = run_sweep(_tiny_spec(), jobs=1, cache_dir=cache_dir)
        for row in result.rows:
            assert row["tflops_per_gpu"] > 0
            assert row["tokens_per_second"] > 0
        # Full precision on purpose: rounding is display-only (results._fmt).
        assert any(row["tflops_per_gpu"] != round(row["tflops_per_gpu"], 1) for row in result.rows)
        again = run_sweep(_tiny_spec(), jobs=1, cache_dir=cache_dir)
        assert again.num_cached == again.num_points
        assert all("tokens_per_second" in row for row in again.rows)

    def test_parallel_cold_sweep_aggregates_worker_cache_stats(self, tmp_path):
        result = run_sweep(_tiny_spec(), jobs=2, cache_dir=tmp_path / "cache")
        assert result.cache_stats["trace_misses"] + result.cache_stats["trace_hits"] > 0
        assert result.cache_stats["plan_misses"] > 0  # stalloc plans were synthesized

    def test_cached_rows_are_reindexed_for_the_current_grid(self, tmp_path):
        """A sweep whose grid orders points differently must not inherit the
        original sweep's point indices from the result cache."""
        cache_dir = tmp_path / "cache"
        forward = _tiny_spec(grid={"micro_batch_size": [1, 2]}, allocators=["torch2.3"])
        reversed_ = _tiny_spec(grid={"micro_batch_size": [2, 1]}, allocators=["torch2.3"])
        run_sweep(forward, jobs=1, cache_dir=cache_dir)
        warm = run_sweep(reversed_, jobs=1, cache_dir=cache_dir)
        assert warm.num_cached == warm.num_points
        assert [row["point"] for row in warm.rows] == [0, 1]
        assert warm.rows[0]["config"] == "mbs=2"
        assert warm.rows[1]["config"] == "mbs=1"

    def test_configs_differing_only_in_seq_length_get_distinct_traces(self):
        """The in-memory trace memo must key on the full config fingerprint."""
        spec_short = _tiny_spec(
            name="short", base={"num_microbatches": 2, "seq_length": 512},
            grid={"micro_batch_size": [1]}, allocators=["torch2.3"],
        )
        spec_long = _tiny_spec(
            name="long", base={"num_microbatches": 2, "seq_length": 2048},
            grid={"micro_batch_size": [1]}, allocators=["torch2.3"],
        )
        short_row = run_sweep(spec_short, jobs=1).rows[0]
        long_row = run_sweep(spec_long, jobs=1).rows[0]
        assert long_row["allocated_gib"] > short_row["allocated_gib"]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_sweep(_tiny_spec(), jobs=0)


class TestSweepResultOutputs:
    def test_json_and_csv_outputs(self, tmp_path):
        result = run_sweep(_tiny_spec(), jobs=1, cache_dir=tmp_path / "cache")
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        result.write(json_path)
        result.write(csv_path)
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["spec"] == "tiny"
        assert len(payload["rows"]) == result.num_points
        with csv_path.open(encoding="utf-8", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == result.num_points
        assert rows[0]["allocator"] == result.rows[0]["allocator"]

    def test_unknown_extension_rejected(self, tmp_path):
        result = run_sweep(_tiny_spec(), jobs=1)
        with pytest.raises(ValueError, match="unsupported output extension"):
            result.write(tmp_path / "out.xlsx")

    def test_to_text_mentions_spec_and_truncates(self):
        result = run_sweep(_tiny_spec(), jobs=1)
        text = result.to_text(max_rows=2)
        assert "sweep tiny" in text
        assert "more rows" in text


# ---------------------------------------------------------------------- #
# Acceptance: CLI end-to-end with >= 24 points, jobs=4, 5x cached speedup
# ---------------------------------------------------------------------- #
class TestSweepCli:
    def test_quick_grid_cli_cold_then_cached_5x_faster(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        json_path = tmp_path / "results.json"
        csv_path = tmp_path / "results.csv"
        argv = [
            "sweep",
            "quick-grid",
            "--jobs",
            "4",
            "--cache-dir",
            str(cache_dir),
            "--output",
            str(json_path),
            "--output",
            str(csv_path),
        ]

        started = time.perf_counter()
        assert cli_main(argv) == 0
        cold_seconds = time.perf_counter() - started

        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["num_points"] >= 24
        assert payload["num_cached"] == 0
        assert all(row["status"] == "ok" for row in payload["rows"])
        with csv_path.open(encoding="utf-8", newline="") as handle:
            assert len(list(csv.DictReader(handle))) >= 24

        started = time.perf_counter()
        assert cli_main(argv) == 0
        warm_seconds = time.perf_counter() - started

        warm_payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert warm_payload["num_cached"] == warm_payload["num_points"]
        assert _comparable(warm_payload["rows"]) == _comparable(payload["rows"])
        assert warm_seconds * 5 <= cold_seconds, (
            f"cached rerun not >=5x faster: cold={cold_seconds:.3f}s warm={warm_seconds:.3f}s"
        )
        capsys.readouterr()  # swallow the printed tables

    def test_cli_list_presets(self, capsys):
        assert cli_main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "quick-grid" in out and "smoke" in out

    def test_cli_requires_spec(self, capsys):
        assert cli_main(["sweep"]) == 2

    def test_cli_rejects_bad_inputs_cleanly(self, capsys, tmp_path):
        assert cli_main(["sweep", "no-such-preset", "--no-cache"]) == 2
        assert cli_main(["sweep", "smoke", "--no-cache", "--jobs", "0"]) == 2
        assert cli_main(["sweep", "smoke", "--no-cache", "--output", "x.xlsx"]) == 2
        assert cli_main(["run", "fig8a", "--quick", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "unknown sweep preset" in err
        assert "--jobs must be >= 1" in err
        assert "unsupported --output extension" in err

    def test_cli_no_cache_flag(self, tmp_path, capsys):
        out_path = tmp_path / "r.json"
        assert (
            cli_main(
                ["sweep", "smoke", "--no-cache", "--output", str(out_path), "--max-rows", "0"]
            )
            == 0
        )
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["cache_dir"] is None
        capsys.readouterr()


# ---------------------------------------------------------------------- #
# Retrofit: existing runner/experiments route through the same machinery
# ---------------------------------------------------------------------- #
class TestRunnerIntegration:
    def test_suite_parallel_matches_serial(self, tiny_dense_config, tmp_path):
        runner.set_persistent_cache(str(tmp_path / "cache"))
        serial = runner.run_workload_suite(
            tiny_dense_config, ["torch2.0", "torch2.3", "stalloc"], jobs=1
        )
        parallel = runner.run_workload_suite(
            tiny_dense_config, ["torch2.0", "torch2.3", "stalloc"], jobs=3
        )
        for name, run in serial.items():
            assert parallel[name].replay.as_dict() == run.replay.as_dict()

    def test_generate_trace_uses_persistent_cache(self, tiny_dense_config, tmp_path):
        runner.set_persistent_cache(str(tmp_path / "cache"))
        runner.clear_trace_cache()
        first = runner.generate_trace(tiny_dense_config, scale=0.25)
        fingerprint = config_fingerprint(tiny_dense_config, seed=0, scale=0.25)
        assert (tmp_path / "cache" / "traces" / f"{fingerprint}.jsonl").exists()
        runner.clear_trace_cache()  # drop the in-memory memo; disk must serve it
        second = runner.generate_trace(tiny_dense_config, scale=0.25)
        assert second.digest() == first.digest()

    def test_configure_execution_installs_cache_and_jobs(self, tmp_path):
        from repro.experiments.common import configure_execution, execution_settings

        configure_execution(jobs=2, cache_dir=str(tmp_path / "cache"))
        try:
            assert execution_settings() == {"jobs": 2, "cache_dir": str(tmp_path / "cache")}
            assert runner.persistent_cache_dir() == str(tmp_path / "cache")
        finally:
            configure_execution()
        assert execution_settings() == {"jobs": 1, "cache_dir": None}
        assert runner.persistent_cache_dir() is None
