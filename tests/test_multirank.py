"""Multi-rank job-level simulation: schedules, equivalence classes, run_job,
and the job-level sweep rows."""

from __future__ import annotations

import pytest

from repro.core.events import PhaseKind
from repro.simulator import runner
from repro.simulator.runner import JobRun, resolve_job_ranks, run_job, run_workload
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.engine import point_result_key
from repro.sweep.cache import SweepCache
from repro.workloads.memory_model import MemoryModel
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.schedule import one_f_one_b, peak_in_flight_microbatches
from repro.workloads.tracegen import TraceGenerator, config_fingerprint
from repro.workloads.training import TrainingConfig, preset_config


@pytest.fixture(autouse=True)
def _clean_runner_state():
    yield
    runner.set_persistent_cache(None)
    runner.set_default_jobs(1)
    runner.clear_trace_cache()


def _pp4_config(preset: str = "Naive", *, num_microbatches: int = 4) -> TrainingConfig:
    return preset_config(
        get_model("gpt2-345m"),
        preset,
        parallelism=ParallelismConfig(pipeline_parallel=4, data_parallel=2),
        micro_batch_size=2,
        num_microbatches=num_microbatches,
    )


def _events_signature(config, rank, *, seed=0, scale=0.25):
    trace = TraceGenerator(config, seed=seed, scale=scale, rank=rank).generate()
    return tuple((e.kind, e.req_id, e.size, e.tag) for e in trace.events)


# ---------------------------------------------------------------------- #
# Rank-aware schedules
# ---------------------------------------------------------------------- #
class TestRankSchedules:
    def test_every_rank_runs_every_microbatch(self):
        for rank in range(4):
            phases = one_f_one_b(4, 8, rank)
            forwards = [p.microbatch for p in phases if p.kind is PhaseKind.FORWARD]
            backwards = [p.microbatch for p in phases if p.kind is PhaseKind.BACKWARD]
            assert sorted(forwards) == list(range(8))
            assert sorted(backwards) == list(range(8))

    def test_warmup_shrinks_with_rank(self):
        def warmup(rank):
            phases = one_f_one_b(4, 8, rank)
            count = 0
            for phase in phases:
                if phase.kind is not PhaseKind.FORWARD:
                    break
                count += 1
            return count

        assert [warmup(rank) for rank in range(4)] == [4, 3, 2, 1]

    def test_last_stage_alternates_immediately(self):
        phases = one_f_one_b(4, 8, 3)
        assert phases[0].kind is PhaseKind.FORWARD
        assert phases[1].kind is PhaseKind.BACKWARD

    def test_peak_in_flight_by_rank(self):
        par = ParallelismConfig(pipeline_parallel=4)
        assert [peak_in_flight_microbatches(par, 16, r) for r in range(4)] == [4, 3, 2, 1]

    def test_rank_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            one_f_one_b(4, 8, 4)
        with pytest.raises(ValueError, match="rank"):
            one_f_one_b(4, 8, -1)


# ---------------------------------------------------------------------- #
# Rank equivalence classes
# ---------------------------------------------------------------------- #
class TestRankEquivalence:
    def test_classes_partition_all_ranks(self):
        par = ParallelismConfig(pipeline_parallel=8)
        classes = par.rank_equivalence_classes(2)
        flattened = sorted(rank for cls in classes for rank in cls)
        assert flattened == list(range(8))

    def test_few_microbatches_collapse_middle_stages(self):
        par = ParallelismConfig(pipeline_parallel=8)
        assert par.rank_equivalence_classes(2) == [(0,), (1, 2, 3, 4, 5, 6), (7,)]
        # With m >= p every stage holds a different number of in-flight
        # micro-batches, so every rank is its own class.
        assert par.rank_equivalence_classes(8) == [(r,) for r in range(8)]

    def test_class_members_generate_identical_event_streams(self):
        par = ParallelismConfig(pipeline_parallel=8)
        config = preset_config(
            get_model("gpt2-345m"), "Naive", parallelism=par,
            micro_batch_size=1, num_microbatches=2,
        )
        for cls in par.rank_equivalence_classes(2):
            signatures = {_events_signature(config, rank) for rank in cls}
            assert len(signatures) == 1, f"class {cls} not memory-equivalent"

    def test_distinct_classes_generate_distinct_streams(self):
        config = _pp4_config(num_microbatches=2)
        par = config.parallelism
        representatives = [cls[0] for cls in par.rank_equivalence_classes(2)]
        signatures = [_events_signature(config, rank) for rank in representatives]
        assert len(set(signatures)) == len(signatures)


# ---------------------------------------------------------------------- #
# Rank-aware memory model / fingerprints (the cache-collision bugfix)
# ---------------------------------------------------------------------- #
class TestRankPlumbing:
    def test_fingerprint_distinguishes_ranks(self):
        config = _pp4_config()
        prints = {config_fingerprint(config, seed=0, scale=0.25, rank=r) for r in range(4)}
        assert len(prints) == 4

    def test_trace_metadata_records_rank_and_version(self):
        config = _pp4_config()
        trace = TraceGenerator(config, scale=0.25, rank=2).generate()
        assert trace.metadata.rank == 2
        assert trace.metadata.tracegen_version >= 2

    def test_last_stage_holds_lm_head_and_logits(self):
        config = _pp4_config()
        last = MemoryModel(config, rank=3)
        tags = {spec.tag for spec in last.persistent_tensors()}
        assert "lm_head.weight" in tags and "lm_head.grad" in tags
        assert "embedding.weight" not in tags
        first = MemoryModel(config, rank=0)
        first_tags = {spec.tag for spec in first.persistent_tensors()}
        assert "embedding.weight" in first_tags and "lm_head.weight" not in first_tags
        assert last.logits_activation().size > last.pipeline_recv_buffer().size

    def test_cache_serves_per_rank_traces_separately(self, tmp_path):
        """Regression: a trace cached for rank 0 must not satisfy rank 3."""
        config = _pp4_config()
        cache = SweepCache(tmp_path)
        trace0 = cache.get_trace(config, seed=0, scale=0.25, rank=0)
        trace3 = cache.get_trace(config, seed=0, scale=0.25, rank=3)
        assert cache.stats.trace_misses == 2  # no collision: both generated
        assert trace0.digest() != trace3.digest()
        for rank in (0, 3):
            path = cache.trace_path(config_fingerprint(config, seed=0, scale=0.25, rank=rank))
            assert path.exists()

    def test_run_workload_plumbs_rank(self, tmp_path):
        """Regression: run_workload simulated rank 0 no matter the rank asked."""
        config = _pp4_config("R")
        runner.set_persistent_cache(str(tmp_path))
        rank0 = run_workload(config, "torch2.3", scale=0.25, rank=0)
        rank3 = run_workload(config, "torch2.3", scale=0.25, rank=3)
        assert rank0.rank == 0 and rank3.rank == 3
        assert (
            rank0.replay.metrics.peak_allocated_gib
            != rank3.replay.metrics.peak_allocated_gib
        )


# ---------------------------------------------------------------------- #
# Job-level aggregation invariants
# ---------------------------------------------------------------------- #
class TestRunJob:
    def test_resolve_job_ranks(self):
        config = _pp4_config(num_microbatches=2)
        assert resolve_job_ranks(config, None) == [(0,)]
        assert resolve_job_ranks(config, "all") == [(0,), (1, 2), (3,)]
        assert resolve_job_ranks(config, [0, 2]) == [(0,), (2,)]
        with pytest.raises(ValueError, match="out of range"):
            resolve_job_ranks(config, [4])
        with pytest.raises(ValueError, match="not be empty"):
            resolve_job_ranks(config, [])
        with pytest.raises(ValueError, match="'all'"):
            resolve_job_ranks(config, "some")

    def test_job_peak_is_max_over_ranks(self):
        config = _pp4_config()
        job = run_job(config, "torch2.3", ranks="all", scale=0.25)
        per_rank = {
            rank: run_workload(config, "torch2.3", scale=0.25, rank=rank)
            for rank in range(4)
        }
        peaks = [r.replay.metrics.peak_allocated_gib for r in per_rank.values()]
        assert job.peak_allocated_gib == pytest.approx(max(peaks))
        assert job.mean_peak_allocated_gib == pytest.approx(sum(peaks) / len(peaks))
        assert job.binding_rank == max(per_rank, key=lambda r: per_rank[r].replay.metrics.peak_allocated_gib)

    def test_dedup_matches_exhaustive_ranks(self):
        """Deduplicated execution must report exactly what exhaustive would."""
        config = _pp4_config(num_microbatches=2)  # ranks 1 and 2 collapse
        job = run_job(config, "torch2.3", ranks="all", scale=0.25)
        assert job.num_ranks == 4
        assert len(job.class_runs) == 3  # fewer replays than ranks
        exhaustive = [
            run_workload(config, "torch2.3", scale=0.25, rank=rank) for rank in range(4)
        ]
        peaks = [r.replay.metrics.peak_allocated_gib for r in exhaustive]
        assert job.peak_allocated_gib == pytest.approx(max(peaks))
        assert job.mean_peak_allocated_gib == pytest.approx(sum(peaks) / 4)
        expanded = job.runs_by_rank()
        assert sorted(expanded) == [0, 1, 2, 3]
        for rank, run in expanded.items():
            assert run.replay.metrics.peak_allocated_gib == pytest.approx(peaks[rank])

    def test_binding_rank_differs_from_rank0_under_recompute(self):
        """Acceptance: with recomputation the last stage's logits bind the job."""
        job = run_job(_pp4_config("R"), "torch2.3", ranks="all", scale=0.25)
        assert job.binding_rank != 0

    def test_job_success_requires_every_rank(self):
        config = _pp4_config("R")
        # Probe with the fragmentation-free native allocator, then size the
        # device between rank 0's peak and the binding rank's peak: rank 0
        # alone fits, the whole job must not.
        probe = run_job(config, "native", ranks="all", scale=0.25)
        rank0_peak = probe.runs_by_rank()[0].replay.metrics.peak_allocated_gib
        assert rank0_peak < probe.peak_allocated_gib
        capacity = (rank0_peak + probe.peak_allocated_gib) / 2
        job = run_job(
            config, "native", ranks="all", scale=0.25, device_capacity_gib=capacity
        )
        rank0 = run_job(
            config, "native", ranks=[0], scale=0.25, device_capacity_gib=capacity
        )
        assert rank0.success
        assert not job.success
        assert job.oom_ranks and all(rank != 0 for rank in job.oom_ranks)

    def test_parallel_rank_fanout_matches_serial(self, tmp_path):
        runner.set_persistent_cache(str(tmp_path / "cache"))
        config = _pp4_config()
        serial = run_job(config, "torch2.3", ranks="all", scale=0.25, jobs=1)
        parallel = run_job(config, "torch2.3", ranks="all", scale=0.25, jobs=4)
        assert serial.peak_allocated_gib == pytest.approx(parallel.peak_allocated_gib)
        assert serial.binding_rank == parallel.binding_rank
        for left, right in zip(serial.class_runs, parallel.class_runs):
            assert left.replay.as_dict() == right.replay.as_dict()

    def test_throughput_estimates_attached(self):
        job = run_job(_pp4_config(), "torch2.3", ranks="all", scale=0.25)
        assert job.tflops > 0
        assert job.tokens_per_second > 0
        data = job.as_dict()
        assert data["tflops_per_gpu"] == job.tflops  # full precision
        assert data["binding_rank"] == job.binding_rank
        assert data["num_ranks"] == 4


# ---------------------------------------------------------------------- #
# Job-level sweeps
# ---------------------------------------------------------------------- #
def _multirank_spec(**overrides) -> SweepSpec:
    data = {
        "name": "jobs",
        "model": "gpt2-345m",
        "parallelism": {"pipeline_parallel": 4, "data_parallel": 2},
        "base": {"num_microbatches": 2},
        "grid": {"preset": ["Naive", "R"], "micro_batch_size": [2]},
        "allocators": ["torch2.3"],
        "ranks": "all",
        "scale": 0.25,
    }
    data.update(overrides)
    return SweepSpec.from_dict(data)


class TestMultiRankSweep:
    def test_spec_validates_ranks(self):
        with pytest.raises(ValueError, match="ranks"):
            _multirank_spec(ranks="some")
        with pytest.raises(ValueError, match="ranks"):
            _multirank_spec(ranks=[])
        with pytest.raises(ValueError, match="ranks"):
            _multirank_spec(ranks=[-1])
        with pytest.raises(ValueError, match="out of range"):
            _multirank_spec(ranks=[7]).expand()
        assert _multirank_spec(ranks=[0, 3]).expand()[0].ranks == (0, 3)
        assert _multirank_spec(ranks=None).expand()[0].ranks == (0,)

    def test_job_level_rows(self, tmp_path):
        result = run_sweep(_multirank_spec(), jobs=1, cache_dir=tmp_path / "cache")
        assert result.num_points == 2
        by_config = {row["config"]: row for row in result.rows}
        for row in result.rows:
            assert row["ranks"] == "0-3"
            assert row["num_ranks"] == 4
            assert row["unique_ranks"] == 3  # m=2 collapses the middle stages
            assert row["tflops_per_gpu"] > 0
            assert row["allocated_gib"] >= row["allocated_mean_gib"]
        # The binding rank is reported and moves off rank 0 under recompute.
        assert by_config["R/mbs=2"]["binding_rank"] != 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_warm_rerun_identical(self, jobs, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_sweep(_multirank_spec(), jobs=jobs, cache_dir=cache_dir)
        warm = run_sweep(_multirank_spec(), jobs=jobs, cache_dir=cache_dir)
        assert warm.num_cached == warm.num_points == cold.num_points
        strip = lambda rows: [  # noqa: E731
            {k: v for k, v in row.items() if k not in ("elapsed_seconds", "cached")}
            for row in rows
        ]
        assert strip(warm.rows) == strip(cold.rows)

    def test_rank_selection_is_part_of_result_cache_key(self, tmp_path):
        """Regression: a rank-0 row must not satisfy a job-level sweep."""
        cache_dir = tmp_path / "cache"
        cache = SweepCache(cache_dir)
        single = _multirank_spec(ranks=None).expand()[0]
        full = _multirank_spec(ranks="all").expand()[0]
        assert point_result_key(cache, single) != point_result_key(cache, full)
        run_sweep(_multirank_spec(ranks=None), jobs=1, cache_dir=cache_dir)
        job_level = run_sweep(_multirank_spec(ranks="all"), jobs=1, cache_dir=cache_dir)
        assert job_level.num_cached == 0

    def test_parallel_matches_serial(self, tmp_path):
        # Two allocators share each config, so the cache-less parallel path
        # pre-warms and ships the per-rank traces to the workers.
        spec_kwargs = {"allocators": ["torch2.0", "torch2.3"]}
        serial = run_sweep(_multirank_spec(**spec_kwargs), jobs=1)
        parallel = run_sweep(_multirank_spec(**spec_kwargs), jobs=4)
        strip = lambda rows: [  # noqa: E731
            {k: v for k, v in row.items() if k not in ("elapsed_seconds", "cached")}
            for row in rows
        ]
        assert strip(serial.rows) == strip(parallel.rows)
