"""Golden timeline regression fixtures.

``tests/fixtures/golden_timelines.json`` pins the content digest (plus a few
readable statistics) of small canonical *timing* simulations at fixed seeds,
the timing twin of ``golden_traces.json``: any change to the discrete-event
simulator's event stream -- durations, dependency structure, collective
semantics -- flips a digest and fails these tests with a diff of what moved.

When a change is intentional, bump ``TIMELINE_VERSION`` and regenerate::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_timelines.py

then commit the updated ``golden_timelines.json`` together with the simulator
change.  The fixture file records the simulator version it was built with, so
a version bump without regenerated fixtures fails loudly too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.timeline import TIMELINE_VERSION, TimelineSimulator
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.training import TrainingConfig

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_timelines.json"

REGEN_HINT = (
    "If this change to the timeline event stream is intentional: bump "
    "TIMELINE_VERSION in src/repro/timeline/simulator.py, regenerate the fixtures "
    "with `REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest "
    "tests/test_golden_timelines.py`, and commit "
    "tests/fixtures/golden_timelines.json with the simulator change."
)


def _case_configs() -> dict[str, dict]:
    """Canonical fixture cases: tiny models, full scale, pinned seeds."""
    gpt_tiny = get_model("gpt-tiny")
    moe_tiny = get_model("moe-tiny")
    dense = TrainingConfig(
        model=gpt_tiny,
        parallelism=ParallelismConfig(pipeline_parallel=2, data_parallel=2),
        micro_batch_size=2,
        num_microbatches=2,
    )
    moe = TrainingConfig(
        model=moe_tiny,
        parallelism=ParallelismConfig(
            pipeline_parallel=2, data_parallel=4, expert_parallel=4
        ),
        micro_batch_size=1,
        num_microbatches=2,
        moe_imbalance=0.6,
    )
    return {
        "gpt-tiny": {"config": dense, "seed": 0},
        "gpt-tiny-recompute-vpp": {
            "config": dense.with_(
                recompute=True,
                parallelism=ParallelismConfig(
                    pipeline_parallel=2, data_parallel=2, virtual_pipeline_chunks=2
                ),
            ),
            "seed": 1,
        },
        # Skewed router, collectives with zero duration: stragglers come from
        # hot-expert compute alone (the comm-free timing baseline).
        "moe-tiny-comm-free": {"config": moe, "seed": 0},
        # Skewed router plus routed-load collective costs: the full model.
        "moe-tiny-comm": {"config": moe.with_(moe_comm_factor=1.0), "seed": 0},
        # Generation workloads: forward-only prefill plus autoregressive
        # decode events priced by KV-cache reads.  These pin the decode
        # dependency chain and the HBM-bound per-step durations.
        "gpt-tiny-generation": {
            "config": dense.with_(workload_kind="generation", decode_steps=8),
            "seed": 0,
        },
        "moe-tiny-generation-comm": {
            "config": moe.with_(
                moe_comm_factor=1.0, workload_kind="generation", decode_steps=4
            ),
            "seed": 0,
        },
    }


def _generate_entry(case: dict) -> dict:
    result = TimelineSimulator(case["config"], seed=case["seed"]).run()
    return {
        "digest": result.digest(),
        "timeline_version": TIMELINE_VERSION,
        "num_events": result.num_events,
        "iteration_seconds": result.iteration_seconds,
        "comm_seconds": result.comm_seconds,
        "decode_seconds": result.decode_seconds,
        "bubble_fraction": result.bubble_fraction,
        "binding_rank": list(result.binding_rank),
    }


def _load_fixtures() -> dict:
    if not FIXTURE_PATH.exists():
        pytest.fail(
            f"golden fixture file {FIXTURE_PATH} is missing. Generate it with "
            "`REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest "
            "tests/test_golden_timelines.py` and commit it."
        )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def test_regenerate_fixtures_when_requested():
    """With REGEN_GOLDEN=1, rewrite the fixture file (and always pass)."""
    if not os.environ.get("REGEN_GOLDEN"):
        pytest.skip("set REGEN_GOLDEN=1 to rewrite tests/fixtures/golden_timelines.json")
    entries = {name: _generate_entry(case) for name, case in _case_configs().items()}
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_fixture_version_matches_simulator():
    """TIMELINE_VERSION moved but the fixtures were not regenerated."""
    fixtures = _load_fixtures()
    stale = {
        name: entry["timeline_version"]
        for name, entry in fixtures.items()
        if entry["timeline_version"] != TIMELINE_VERSION
    }
    if stale:
        pytest.fail(
            f"TIMELINE_VERSION is {TIMELINE_VERSION} but these fixtures were "
            f"recorded at other versions: {stale}. {REGEN_HINT}"
        )


def test_fixture_cases_in_sync_with_code():
    fixtures = _load_fixtures()
    assert sorted(fixtures) == sorted(_case_configs()), (
        "fixture file and _case_configs() disagree on the case list. " + REGEN_HINT
    )


@pytest.mark.parametrize("name", sorted(_case_configs()))
def test_golden_digest(name):
    fixtures = _load_fixtures()
    case = _case_configs()[name]
    expected = fixtures[name]
    actual = _generate_entry(case)
    if actual == expected:
        return
    diff = "\n".join(
        f"  {key}: recorded {expected.get(key)!r} -> generated {actual.get(key)!r}"
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    )
    pytest.fail(
        f"golden timeline {name!r} drifted from its recorded fixture "
        f"({case['config'].describe()}, seed={case['seed']}):\n{diff}\n{REGEN_HINT}"
    )


def test_generation_fixtures_actually_pay_for_decode():
    """Generation fixtures must charge decode time (the autoregressive tail
    the cases exist to pin) and training fixtures must charge none."""
    fixtures = _load_fixtures()
    assert fixtures["gpt-tiny-generation"]["decode_seconds"] > 0.0
    assert fixtures["moe-tiny-generation-comm"]["decode_seconds"] > 0.0
    assert fixtures["gpt-tiny"]["decode_seconds"] == 0.0
    assert fixtures["moe-tiny-comm"]["decode_seconds"] == 0.0


def test_comm_fixture_actually_pays_for_communication():
    """The comm case must be strictly slower than its comm-free twin, and the
    comm-free twin must record zero collective time -- otherwise the fixtures
    no longer pin the property they exist for."""
    fixtures = _load_fixtures()
    comm_free = fixtures["moe-tiny-comm-free"]
    comm = fixtures["moe-tiny-comm"]
    assert comm_free["comm_seconds"] == 0.0
    assert comm["comm_seconds"] > 0.0
    assert comm["iteration_seconds"] > comm_free["iteration_seconds"]
