"""Expert-parallel rank asymmetry: router properties, differential tests
against the symmetric baseline, cache-key identity, and heterogeneous
per-rank device budgets."""

from __future__ import annotations

import itertools

import pytest

from repro.simulator import runner
from repro.simulator.runner import (
    resolve_job_ranks,
    run_job,
    run_workload,
)
from repro.sweep import SweepCache, SweepSpec, load_spec, run_sweep
from repro.sweep.engine import _ranks_label, point_result_key
from repro.workloads.moe import ExpertRouter, balanced_split
from repro.workloads.models import get_model
from repro.workloads.parallelism import (
    ParallelismConfig,
    normalize_rank,
    rank_label,
)
from repro.workloads.tracegen import TraceGenerator, config_fingerprint
from repro.workloads.training import TrainingConfig


@pytest.fixture(autouse=True)
def _clean_runner_state():
    yield
    runner.set_persistent_cache(None)
    runner.set_default_jobs(1)
    runner.clear_trace_cache()


def _moe_config(
    *,
    imbalance: float = 0.6,
    pipeline: int = 2,
    expert: int = 4,
    num_microbatches: int = 2,
) -> TrainingConfig:
    return TrainingConfig(
        model=get_model("moe-tiny"),
        parallelism=ParallelismConfig(
            pipeline_parallel=pipeline, data_parallel=4, expert_parallel=expert
        ),
        micro_batch_size=1,
        num_microbatches=num_microbatches,
        moe_imbalance=imbalance,
    )


def _routers(num_experts, local, top_k, *, seed, imbalance):
    """One router per EP rank, sharing the job-global seed."""
    return [
        ExpertRouter(
            num_experts=num_experts,
            num_local_experts=local,
            top_k=top_k,
            seed=seed,
            imbalance=imbalance,
            ep_rank=ep_rank,
        )
        for ep_rank in range(num_experts // local)
    ]


# ---------------------------------------------------------------------- #
# ExpertRouter property tests
# ---------------------------------------------------------------------- #
class TestRouterProperties:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("imbalance", [0.0, 0.3, 1.0])
    @pytest.mark.parametrize(
        "num_experts,local,top_k,tokens",
        [(8, 2, 2, 1024), (16, 4, 4, 513), (60, 15, 4, 777), (4, 1, 1, 1)],
    )
    def test_token_conservation_across_ep_ranks(
        self, seed, imbalance, num_experts, local, top_k, tokens
    ):
        """Sum of per-EP-rank loads == num_tokens * top_k: the gating decision
        is global, each rank only observes its slice."""
        routers = _routers(num_experts, local, top_k, seed=seed, imbalance=imbalance)
        total = sum(sum(router.route(tokens)) for router in routers)
        assert total == tokens * top_k

    @pytest.mark.parametrize("imbalance", [0.0, 0.5])
    def test_determinism_under_fixed_seed(self, imbalance):
        def sequence():
            router = ExpertRouter(
                num_experts=8, num_local_experts=2, top_k=2,
                seed=13, imbalance=imbalance, ep_rank=1,
            )
            return [router.route(500, layer=layer, microbatch=mb)
                    for layer, mb in itertools.product(range(3), range(4))]

        assert sequence() == sequence()

    def test_different_ep_ranks_slice_one_global_draw(self):
        reference = ExpertRouter(
            num_experts=8, num_local_experts=2, top_k=2, seed=3, imbalance=0.8
        )
        global_draw = reference.route_global(1024)
        for ep_rank, router in enumerate(_routers(8, 2, 2, seed=3, imbalance=0.8)):
            assert router.route(1024) == global_draw[ep_rank * 2 : (ep_rank + 1) * 2]

    @pytest.mark.parametrize("tokens", [4, 64, 512])
    def test_uniform_split_when_imbalance_zero(self, tokens):
        """imbalance == 0 with a divisible total gives every expert -- and
        therefore every EP rank -- exactly the same load, for any seed."""
        for seed in (0, 1, 99):
            routers = _routers(8, 2, 2, seed=seed, imbalance=0.0)
            for router in routers:
                assert router.route(tokens) == [tokens * 2 // 8] * 2

    def test_balanced_split_properties(self):
        for total, bins in [(0, 3), (7, 3), (8, 8), (1000, 7), (5, 8)]:
            split = balanced_split(total, bins)
            assert sum(split) == total
            assert max(split) - min(split) <= 1
        with pytest.raises(ValueError, match="bins"):
            balanced_split(4, 0)

    def test_zero_tokens_and_validation(self):
        router = ExpertRouter(num_experts=8, num_local_experts=2, top_k=2, ep_rank=3)
        assert router.route(0) == [0, 0]
        with pytest.raises(ValueError, match="ep_rank"):
            ExpertRouter(num_experts=8, num_local_experts=2, top_k=2, ep_rank=4)
        with pytest.raises(ValueError, match="ep_rank"):
            ExpertRouter(num_experts=8, num_local_experts=2, top_k=2, ep_rank=-1)

    def test_imbalance_skews_ep_ranks_apart(self):
        """With a skewed router, EP ranks receive measurably different loads."""
        routers = _routers(8, 2, 2, seed=7, imbalance=0.9)
        loads = [sum(router.route(4096)) for router in routers]
        assert len(set(loads)) > 1


# ---------------------------------------------------------------------- #
# Execution-keyed gating draws (the call-order regression)
# ---------------------------------------------------------------------- #
class TestExecutionKeyedDraws:
    """The gating decision of one (layer, microbatch) execution must not
    depend on the order a rank's schedule visits executions.

    The router used to draw from one sequential RNG stream, so two ranks
    walking their 1F1B schedules in different orders (warm-up depth varies by
    pipeline stage) would hand the *same* layer execution *different* global
    draws -- breaking token conservation and giving the dispatch/combine
    transients inconsistent sizes across the EP group.
    """

    EXECUTIONS = [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]

    def _draws(self, order):
        router = ExpertRouter(
            num_experts=8, num_local_experts=8, top_k=2, seed=11, imbalance=0.7
        )
        return {
            (layer, mb): router.route(512, layer=layer, microbatch=mb)
            for layer, mb in order
        }

    def test_draws_are_call_order_independent(self):
        forward_order = self._draws(self.EXECUTIONS)
        reversed_order = self._draws(list(reversed(self.EXECUTIONS)))
        assert forward_order == reversed_order

    def test_repeated_queries_memoised_within_one_iteration(self):
        """Asking for one execution twice (forward + recomputed backward, or
        dispatch + combine sizing) returns the identical counts."""
        router = ExpertRouter(
            num_experts=8, num_local_experts=2, top_k=2, seed=5, imbalance=0.7, ep_rank=1
        )
        first = router.route(512, layer=3, microbatch=1)
        assert router.route(512, layer=3, microbatch=1) == first
        assert router.route_global(512, layer=3, microbatch=1)[2:4] == first

    def test_distinct_executions_get_distinct_draws(self):
        router = ExpertRouter(
            num_experts=8, num_local_experts=8, top_k=2, seed=11, imbalance=0.7
        )
        draws = {
            (layer, mb): tuple(router.route(512, layer=layer, microbatch=mb))
            for layer, mb in self.EXECUTIONS
        }
        assert len(set(draws.values())) > 1

    def test_rejects_negative_execution_keys(self):
        router = ExpertRouter(num_experts=8, num_local_experts=2, top_k=2, imbalance=0.5)
        with pytest.raises(ValueError, match="layer and microbatch"):
            router.route(512, layer=-1)
        with pytest.raises(ValueError, match="layer and microbatch"):
            router.route(512, microbatch=-2)

    def test_trace_dispatch_sizes_consistent_across_pipeline_schedules(self):
        """Cache-collision regression at the trace level: the two pipeline
        stages execute their micro-batches in different 1F1B orders, yet the
        EP group of *each* stage must agree on every execution's dispatch
        sizes (slices of one global draw, summing to the routed load)."""
        config = _moe_config(imbalance=0.8, pipeline=2, expert=4).with_(
            moe_comm_factor=1.0
        )
        per_token = config.model.hidden_size * 2
        routed = config.micro_batch_size * config.model.seq_length * config.model.moe_top_k
        for pp_rank in range(2):
            recv_sizes = []
            for ep_rank in range(4):
                trace = TraceGenerator(
                    config, seed=2, rank=pp_rank, ep_rank=ep_rank
                ).generate()
                recv_sizes.append(
                    {
                        (e.phase.microbatch, e.module): e.size
                        for e in trace.events
                        if e.is_alloc() and e.tag == "a2a_dispatch_recv"
                    }
                )
            executions = set().union(*(set(sizes) for sizes in recv_sizes))
            assert executions
            for execution in executions:
                total = sum(sizes.get(execution, 0) for sizes in recv_sizes)
                assert total == routed * per_token, (pp_rank, execution)


# ---------------------------------------------------------------------- #
# Rank coordinate helpers
# ---------------------------------------------------------------------- #
class TestRankCoords:
    def test_normalize_rank(self):
        assert normalize_rank(3) == (3, 0)
        assert normalize_rank((2, 1)) == (2, 1)
        assert normalize_rank([2, 1]) == (2, 1)
        for bad in (True, (1,), (1, 2, 3), "2.1", (1.5, 0)):
            with pytest.raises(ValueError):
                normalize_rank(bad)

    def test_rank_label(self):
        assert rank_label(3) == "3"
        assert rank_label((2, 1)) == "2.1"

    def test_ranks_label_rendering(self):
        assert _ranks_label((0, 1, 2, 3)) == "0-3"
        assert _ranks_label(((0, 0), (0, 1), (1, 0), (1, 1))) == "0-1xep0-1"
        assert _ranks_label(((0, 0), (1, 1))) == "0.0,1.1"


# ---------------------------------------------------------------------- #
# Equivalence classes over the (pp, ep) grid
# ---------------------------------------------------------------------- #
class TestExpertEquivalenceClasses:
    @pytest.mark.parametrize("pipeline,expert,m", [(2, 4, 2), (4, 2, 8), (3, 3, 1)])
    def test_classes_partition_full_grid_exactly_once(self, pipeline, expert, m):
        par = ParallelismConfig(
            pipeline_parallel=pipeline, data_parallel=expert, expert_parallel=expert
        )
        classes = par.rank_equivalence_classes(m, expert_asymmetry=True)
        flattened = [coord for cls in classes for coord in cls]
        grid = [(pp, ep) for pp in range(pipeline) for ep in range(expert)]
        assert sorted(flattened) == grid  # every coordinate exactly once
        assert len(flattened) == len(set(flattened))

    def test_without_asymmetry_classes_stay_pipeline_ints(self):
        par = ParallelismConfig(pipeline_parallel=4, expert_parallel=4)
        classes = par.rank_equivalence_classes(2)
        assert all(isinstance(rank, int) for cls in classes for rank in cls)
        assert sorted(rank for cls in classes for rank in cls) == list(range(4))

    def test_ep_ranks_never_share_a_class_under_asymmetry(self):
        par = ParallelismConfig(pipeline_parallel=2, expert_parallel=4)
        for cls in par.rank_equivalence_classes(4, expert_asymmetry=True):
            eps = [ep for _, ep in cls]
            assert len(eps) == len(set(eps))

    def test_memory_key_validates_ep_rank(self):
        par = ParallelismConfig(pipeline_parallel=2, expert_parallel=2)
        with pytest.raises(ValueError, match="ep_rank"):
            par.rank_memory_key(0, 4, ep_rank=2, expert_asymmetry=True)

    def test_class_members_generate_identical_event_streams(self):
        """Soundness: coordinates sharing a class emit byte-identical traces,
        coordinates in different classes do not (with a skewed router)."""
        config = _moe_config(imbalance=0.7, pipeline=2, expert=2, num_microbatches=2)

        def signature(coord):
            pp, ep = coord
            trace = TraceGenerator(config, seed=0, rank=pp, ep_rank=ep).generate()
            return tuple((e.kind, e.req_id, e.size, e.tag) for e in trace.events)

        classes = config.parallelism.rank_equivalence_classes(
            config.num_microbatches, expert_asymmetry=True
        )
        representatives = {}
        for cls in classes:
            signatures = {signature(coord) for coord in cls}
            assert len(signatures) == 1, f"class {cls} not memory-equivalent"
            representatives[cls[0]] = signatures.pop()
        assert len(set(representatives.values())) == len(representatives)


# ---------------------------------------------------------------------- #
# Differential: imbalance == 0 vs the symmetric (EP-collapsed) baseline
# ---------------------------------------------------------------------- #
class TestDifferentialAgainstBaseline:
    def test_imbalance_zero_ep_ranks_match_baseline_peaks(self):
        """Every explicitly-simulated EP coordinate of an imbalance-0 job
        reports exactly the peak of the collapsed (ep_rank 0) baseline."""
        config = _moe_config(imbalance=0.0)
        assert not config.expert_asymmetry
        baseline = {
            pp: run_workload(config, "torch2.3", rank=pp).replay.metrics.peak_allocated_gib
            for pp in range(2)
        }
        for pp in range(2):
            for ep in range(4):
                explicit = run_workload(config, "torch2.3", rank=pp, ep_rank=ep)
                assert explicit.replay.metrics.peak_allocated_gib == baseline[pp], (
                    f"coordinate ({pp}, {ep}) diverged from the EP-collapsed baseline"
                )

    def test_imbalance_zero_job_collapses_to_pipeline_classes(self):
        config = _moe_config(imbalance=0.0)
        job = run_job(config, "torch2.3", ranks="all")
        assert job.num_ranks == 2  # pipeline ranks only: EP peers collapsed
        assert all(isinstance(rank, int) for rank in job.ranks)

    def test_resolve_job_ranks_expands_coordinates(self):
        config = _moe_config(imbalance=0.6)
        classes = resolve_job_ranks(config, "all")
        flattened = sorted(coord for cls in classes for coord in cls)
        assert flattened == [(pp, ep) for pp in range(2) for ep in range(4)]
        # An int entry selects every EP coordinate of that stage.
        stage0 = resolve_job_ranks(config, [0])
        assert sorted(c for cls in stage0 for c in cls) == [(0, ep) for ep in range(4)]
        # An explicit pair selects one coordinate.
        assert resolve_job_ranks(config, [(1, 2)]) == [((1, 2),)]
        with pytest.raises(ValueError, match="ep_rank"):
            resolve_job_ranks(config, [(0, 4)])

    def test_dedup_matches_exhaustive_coordinates(self):
        """Job aggregates over deduplicated classes equal an exhaustive
        per-coordinate simulation."""
        config = _moe_config(imbalance=0.6)
        job = run_job(config, "torch2.3", ranks="all")
        peaks = {}
        for pp in range(2):
            for ep in range(4):
                run = run_workload(config, "torch2.3", rank=pp, ep_rank=ep)
                peaks[(pp, ep)] = run.replay.metrics.peak_allocated_gib
        assert job.peak_allocated_gib == pytest.approx(max(peaks.values()))
        assert job.mean_peak_allocated_gib == pytest.approx(
            sum(peaks.values()) / len(peaks)
        )
        assert job.binding_rank == max(peaks, key=peaks.get)


# ---------------------------------------------------------------------- #
# Acceptance: EP=4 asymmetric job + cache-key identity
# ---------------------------------------------------------------------- #
class TestAcceptance:
    def test_ep4_job_reports_distinct_per_rank_peaks_and_binding_rank(self):
        job = run_job(_moe_config(imbalance=0.6), "torch2.3", ranks="all")
        data = job.as_dict()
        per_rank = data["per_rank_peak_allocated_gib"]
        assert set(per_rank) == {f"{pp}.{ep}" for pp in range(2) for ep in range(4)}
        assert len(set(per_rank.values())) > 1, "EP ranks reported identical peaks"
        assert data["binding_rank"] == max(per_rank, key=per_rank.get)

    def test_fingerprint_distinguishes_ep_ranks(self):
        config = _moe_config()
        prints = {
            config_fingerprint(config, seed=0, rank=pp, ep_rank=ep)
            for pp in range(2)
            for ep in range(4)
        }
        assert len(prints) == 8

    def test_trace_cache_never_collides_across_ep_ranks(self, tmp_path):
        """Regression: a trace cached for (0, 0) must not satisfy (0, 1)."""
        config = _moe_config(imbalance=0.6)
        cache = SweepCache(tmp_path)
        traces = {
            ep: cache.get_trace(config, rank=0, ep_rank=ep) for ep in range(4)
        }
        assert cache.stats.trace_misses == 4 and cache.stats.trace_hits == 0
        digests = {trace.digest() for trace in traces.values()}
        assert len(digests) == 4
        for ep, trace in traces.items():
            assert trace.metadata.ep_rank == ep
            path = cache.trace_path(config_fingerprint(config, rank=0, ep_rank=ep))
            assert path.exists()
        # Second pass: all hits, byte-identical content.
        for ep in range(4):
            assert cache.get_trace(config, rank=0, ep_rank=ep).digest() == traces[ep].digest()
        assert cache.stats.trace_hits == 4

    def test_plan_cache_keys_differ_across_ep_ranks(self, tmp_path):
        """STAlloc plans hash the trace bytes, which embed the EP coordinate."""
        config = _moe_config(imbalance=0.6)
        cache = SweepCache(tmp_path)
        from repro.core.stalloc import STAllocConfig

        keys = set()
        for ep in range(2):
            trace = cache.get_trace(config, rank=0, ep_rank=ep)
            keys.add(cache.plan_key(trace, STAllocConfig()))
        assert len(keys) == 2

    def test_result_cache_key_includes_ep_identity(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec_data = {
            "name": "ep",
            "model": "moe-tiny",
            "parallelism": {"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
            "base": {"num_microbatches": 2},
            "grid": {"moe_imbalance": [0.6]},
            "allocators": ["torch2.3"],
            "ranks": "all",
        }
        full = SweepSpec.from_dict(spec_data).expand()[0]
        single = SweepSpec.from_dict(dict(spec_data, ranks=[[0, 0]])).expand()[0]
        stage = SweepSpec.from_dict(dict(spec_data, ranks=[0])).expand()[0]
        keys = {point_result_key(cache, p) for p in (full, single, stage)}
        assert len(keys) == 3

    def test_workload_run_records_ep_rank(self):
        run = run_workload(_moe_config(imbalance=0.6), "torch2.3", rank=(1, 2))
        assert run.rank == 1 and run.ep_rank == 2
        assert run.as_dict()["ep_rank"] == 2


# ---------------------------------------------------------------------- #
# Heterogeneous per-rank device budgets
# ---------------------------------------------------------------------- #
class TestHeterogeneousBudgets:
    def test_binding_rank_differs_from_peak_rank(self):
        """A smaller budget on a lighter rank makes it bind the job even
        though another rank holds the absolute peak."""
        config = _moe_config(imbalance=0.6)
        probe = run_job(config, "native", ranks="all")
        peak_rank = probe.binding_rank
        per_rank = probe.runs_by_rank()
        # Pick the lightest rank and give it a budget tight enough that its
        # utilization exceeds the peak rank's.
        light_rank = min(
            per_rank, key=lambda r: per_rank[r].replay.metrics.peak_allocated_gib
        )
        light_peak = per_rank[light_rank].replay.metrics.peak_allocated_gib
        budgets = {rank_label(light_rank): light_peak * 1.01}
        job = run_job(
            config, "native", ranks="all", device_memory_by_rank=budgets
        )
        assert job.heterogeneous_budgets
        assert job.binding_rank == light_rank != peak_rank
        assert job.peak_allocated_gib == pytest.approx(probe.peak_allocated_gib)
        assert job.binding_utilization == pytest.approx(1 / 1.01, rel=1e-3)

    def test_budget_splits_equivalence_classes(self):
        """A stage-level budget on one member of a collapsed class forces the
        class apart so each rank replays against its own device."""
        config = _moe_config(imbalance=0.0, pipeline=4, num_microbatches=2)
        # m=2 collapses the middle stages 1 and 2 into one class.
        assert resolve_job_ranks(config, "all") == [(0,), (1, 2), (3,)]
        job = run_job(
            config, "native", ranks="all", device_memory_by_rank={"1": 40.0}
        )
        assert (1,) in job.rank_classes and (2,) in job.rank_classes
        capacities = dict(zip(job.rank_classes, job.class_capacities))
        assert capacities[(1,)] == 40.0
        assert capacities[(2,)] == 80  # the A800 default

    def test_tight_budget_ooms_only_that_rank(self):
        config = _moe_config(imbalance=0.6)
        probe = run_job(config, "native", ranks="all")
        target = probe.binding_rank
        tight = probe.peak_allocated_gib * 0.5
        job = run_job(
            config,
            "native",
            ranks="all",
            device_memory_by_rank={rank_label(target): tight},
        )
        assert not job.success
        assert target in job.oom_ranks
        assert job.as_dict()["oom_ranks"] == [rank_label(target)]

    def test_exact_coordinate_budget_overrides_stage_budget(self):
        config = _moe_config(imbalance=0.6)
        job = run_job(
            config,
            "native",
            ranks="all",
            device_memory_by_rank={"0": 60.0, "0.2": 30.0},
        )
        capacities = {
            rank: capacity
            for cls, capacity in zip(job.rank_classes, job.class_capacities)
            for rank in cls
        }
        assert capacities[(0, 2)] == 30.0
        assert capacities[(0, 1)] == 60.0
        assert capacities[(1, 0)] == 80

    def test_invalid_budgets_rejected(self):
        config = _moe_config()
        with pytest.raises(ValueError, match="positive GiB value"):
            run_job(config, "native", ranks="all", device_memory_by_rank={"0": 0})
        with pytest.raises(ValueError, match="out of range"):
            run_job(config, "native", ranks="all", device_memory_by_rank={"9": 40})
        with pytest.raises(ValueError, match="ep_rank"):
            run_job(config, "native", ranks="all", device_memory_by_rank={"0.9": 40})
        with pytest.raises(ValueError, match="not a rank"):
            run_job(config, "native", ranks="all", device_memory_by_rank={"a.b": 40})

    def test_coordinate_budget_applies_to_symmetric_job(self):
        """Regression: a '0.1' budget on an imbalance-0 (EP-collapsed) job
        must still address coordinate (0, 1) -- the classes expand to the
        coordinate grid so the budget splits them instead of vanishing."""
        config = _moe_config(imbalance=0.0)
        probe = run_job(config, "native", ranks="all")
        tight = probe.runs_by_rank()[0].replay.metrics.peak_allocated_gib * 0.5
        job = run_job(
            config, "native", ranks="all", device_memory_by_rank={"0.1": tight}
        )
        assert job.num_ranks == 8  # coordinates materialised
        assert not job.success
        assert job.oom_ranks == [(0, 1)]
        capacities = {
            rank: capacity
            for cls, capacity in zip(job.rank_classes, job.class_capacities)
            for rank in cls
        }
        assert capacities[(0, 1)] == tight
        assert capacities[(0, 0)] == 80
        # On a dense/EP=1 job the same key is a hard error, not a no-op.
        with pytest.raises(ValueError, match="ep_rank"):
            run_job(
                _moe_config(expert=1, imbalance=0.0),
                "native",
                ranks="all",
                device_memory_by_rank={"0.1": 40},
            )

    def test_out_of_range_ep_rejected_even_when_symmetric(self):
        """Regression: a typo'd ep in a ranks list must fail regardless of
        whether the router is currently skewed."""
        for imbalance in (0.0, 0.6):
            config = _moe_config(imbalance=imbalance)
            with pytest.raises(ValueError, match="ep_rank"):
                resolve_job_ranks(config, [(0, 99)])
            spec = SweepSpec.from_dict(
                {
                    "name": "bad-ep",
                    "model": "moe-tiny",
                    "parallelism": {
                        "pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4,
                    },
                    "base": {"num_microbatches": 2, "moe_imbalance": imbalance},
                    "allocators": ["torch2.3"],
                    "ranks": [[0, 99]],
                }
            )
            with pytest.raises(ValueError, match="ep_rank"):
                spec.expand()


# ---------------------------------------------------------------------- #
# EP-aware sweeps
# ---------------------------------------------------------------------- #
class TestExpertSweeps:
    def _spec(self, **overrides) -> SweepSpec:
        data = {
            "name": "ep-test",
            "model": "moe-tiny",
            "parallelism": {"pipeline_parallel": 2, "data_parallel": 4, "expert_parallel": 4},
            "base": {"num_microbatches": 2, "micro_batch_size": 1},
            "grid": {"moe_imbalance": [0.0, 0.6]},
            "allocators": ["torch2.3"],
            "ranks": "all",
        }
        data.update(overrides)
        return SweepSpec.from_dict(data)

    def test_rows_report_coordinate_grid_and_binding(self, tmp_path):
        result = run_sweep(self._spec(), jobs=1, cache_dir=tmp_path / "cache")
        by_config = {row["config"]: row for row in result.rows}
        balanced = by_config["imb=0.0"]
        skewed = by_config["imb=0.6"]
        assert balanced["ranks"] == "0-1"  # collapsed: pipeline ranks only
        assert balanced["num_ranks"] == 2
        assert skewed["ranks"] == "0-1xep0-3"
        assert skewed["num_ranks"] == 8
        assert skewed["unique_ranks"] == 8
        assert "." in str(skewed["binding_rank"])

    def test_spec_validates_coordinate_ranks_and_budgets(self):
        assert self._spec(ranks=[[0, 1], 1]).expand()
        with pytest.raises(ValueError, match="ranks"):
            self._spec(ranks=[[0, 1, 2]])
        with pytest.raises(ValueError, match="ep_rank"):
            self._spec(ranks=[[0, 7]]).expand()
        with pytest.raises(ValueError, match="device_memory_by_rank"):
            self._spec(device_memory_by_rank={"x": 40})
        with pytest.raises(ValueError, match="device_memory_by_rank"):
            self._spec(device_memory_by_rank={"0": -1})
        spec = self._spec(device_memory_by_rank={"0.1": 40, 1: 96})
        assert spec.to_dict()["device_memory_by_rank"] == {"0.1": 40, 1: 96}
        point = spec.expand()[0]
        assert point.device_memory_by_rank == (("0.1", 40.0), ("1", 96.0))

    def test_budgets_are_part_of_result_cache_key(self, tmp_path):
        cache = SweepCache(tmp_path)
        plain = self._spec().expand()[0]
        budgeted = self._spec(device_memory_by_rank={"0": 40}).expand()[0]
        assert point_result_key(cache, plain) != point_result_key(cache, budgeted)

    def test_warm_rerun_identical_with_coordinates(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_sweep(self._spec(), jobs=1, cache_dir=cache_dir)
        warm = run_sweep(self._spec(), jobs=1, cache_dir=cache_dir)
        assert warm.num_cached == warm.num_points == cold.num_points
        strip = lambda rows: [  # noqa: E731
            {k: v for k, v in row.items() if k not in ("elapsed_seconds", "cached")}
            for row in rows
        ]
        assert strip(warm.rows) == strip(cold.rows)

    def test_parallel_matches_serial(self, tmp_path):
        spec = self._spec(allocators=["torch2.0", "torch2.3"])
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=4)
        strip = lambda rows: [  # noqa: E731
            {k: v for k, v in row.items() if k not in ("elapsed_seconds", "cached")}
            for row in rows
        ]
        assert strip(serial.rows) == strip(parallel.rows)

    def test_ep_smoke_preset_loads_and_runs(self, tmp_path):
        spec = load_spec("ep-smoke")
        assert spec.ranks == "all"
        result = run_sweep(spec, jobs=1, cache_dir=tmp_path / "cache")
        assert result.num_points == 4
        skewed_rows = [row for row in result.rows if row["config"] == "imb=0.6"]
        assert skewed_rows and all(row["num_ranks"] == 8 for row in skewed_rows)
        assert all(row["status"] == "ok" for row in result.rows)
