"""Auto-parallelism search planner tests.

Covers the cluster/spec layer (parsing, validation, enumeration legality),
the admissibility of both pruning bounds (property-checked against real
traces and measured throughput), the planner's acceptance contract (same
best config as the exhaustive sweep while evaluating at most half the
grid), result serialization, the CLI subcommand, and regression tests for
the binding-rank / compare-gate bugfix sweep that rode along.
"""

from __future__ import annotations

import json

import pytest

from repro.gpu.device import GIB
from repro.search import (
    ClusterSpec,
    SearchResult,
    SearchSpec,
    load_search_spec,
    memory_lower_bound,
    run_search,
    search_points,
    throughput_upper_bound,
)
from repro.search.planner import _rank_rows
from repro.simulator.runner import (
    JobRun,
    WorkloadRun,
    _budget_utilization,
    _split_classes_by_capacity,
    resolve_job_ranks,
    run_job,
    run_workload,
    validate_capacity_gib,
)
from repro.sweep.compare import _is_regression, _values_differ, compare_results
from repro.sweep.results import SweepResult
from repro.sweep.spec import load_spec
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig, normalize_rank
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig

SEARCH_PRESETS = ("gpt-tiny", "moe-tiny", "search-smoke")


# --------------------------------------------------------------------- #
# ClusterSpec
# --------------------------------------------------------------------- #
def test_cluster_parse():
    cluster = ClusterSpec.parse("8xA800-80GB@40")
    assert cluster.num_devices == 8
    assert cluster.device_name == "A800-80GB"
    assert cluster.device_capacity_gib == 40.0
    bare = ClusterSpec.parse("4xA800-80GB")
    assert bare.num_devices == 4
    assert bare.device_capacity_gib is None
    assert bare.capacity_gib == bare.gpu.memory_gib


@pytest.mark.parametrize(
    "text",
    ["", "A800-80GB", "x A800", "0xA800-80GB", "8xNOT-A-GPU", "8xA800-80GB@0", "8xA800-80GB@-1"],
)
def test_cluster_parse_rejects(text):
    with pytest.raises(ValueError):
        ClusterSpec.parse(text)


def test_cluster_from_dict_roundtrip():
    cluster = ClusterSpec.from_dict(
        {"devices": "4xA800-80GB@40", "device_memory_by_rank": {"0": 30, "1.0": 20}}
    )
    assert dict(cluster.budget_map()) == {"0": 30.0, "1.0": 20.0}
    again = ClusterSpec.from_dict(cluster.to_dict())
    assert again == cluster
    # A ClusterSpec passes through unchanged.
    assert ClusterSpec.from_dict(cluster) is cluster


# --------------------------------------------------------------------- #
# SearchSpec validation + enumeration
# --------------------------------------------------------------------- #
def _spec(**overrides) -> SearchSpec:
    data = dict(
        name="t",
        model="gpt-tiny",
        cluster="8xA800-80GB",
        global_batch=16,
        allocators=["torch2.3"],
    )
    data.update(overrides)
    return SearchSpec(**data)


@pytest.mark.parametrize(
    "overrides",
    [
        {"model": "no-such-model"},
        {"allocators": []},
        {"allocators": ["no-such-allocator"]},
        {"global_batch": 0},
        {"global_batch": True},
        {"timing": "psychic"},
        {"micro_batch_sizes": []},
        {"base": {"no_such_field": 1}},
        {"base": {"micro_batch_size": 2}},  # search-owned axis
        {"stalloc_grid": {"no_such_knob": [1]}},
        {"stalloc_grid": {"pool_headroom": []}},
        {"cluster": "8xNOT-A-GPU"},
    ],
)
def test_spec_validation_errors(overrides):
    with pytest.raises(ValueError):
        _spec(**overrides)


def test_spec_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown search spec fields"):
        SearchSpec.from_dict({"name": "t", "model": "gpt-tiny", "cluster": "8xA800-80GB",
                              "global_batch": 8, "allocators": ["torch2.3"], "bogus": 1})


def test_enumeration_respects_divisibility():
    spec = _spec()
    model = get_model("gpt-tiny")
    points = spec.enumerate_candidates()
    assert points, "the auto grid on 8 devices must be non-empty"
    assert [p.index for p in points] == list(range(len(points)))
    for point in points:
        par = point.config.parallelism
        assert model.num_attention_heads % par.tensor_parallel == 0
        assert model.num_layers % par.pipeline_parallel == 0
        # Every device is used, exactly once.
        assert par.tensor_parallel * par.pipeline_parallel * par.data_parallel == 8
        # Dense model: expert parallelism never enters the space.
        assert par.expert_parallel == 1
        # The global batch is preserved exactly across every layout.
        assert (
            point.config.micro_batch_size
            * par.data_parallel
            * point.config.num_microbatches
            == spec.global_batch
        )


def test_moe_enumeration_constraints():
    spec = _spec(model="moe-tiny", global_batch=8, micro_batch_sizes=[1])
    model = get_model("moe-tiny")
    eps = set()
    for point in spec.enumerate_candidates():
        par = point.config.parallelism
        if par.expert_parallel > 1:
            assert model.num_experts % par.expert_parallel == 0
            assert par.data_parallel % par.expert_parallel == 0
        eps.add(par.expert_parallel)
    assert len(eps) > 1, "auto EP must explore more than one expert-parallel degree"


def test_budget_map_restricted_per_candidate():
    spec = _spec(
        cluster={"devices": "8xA800-80GB", "device_memory_by_rank": {"1": 40}},
    )
    for point in spec.enumerate_candidates():
        budgets = dict(point.device_memory_by_rank)
        if point.config.parallelism.pipeline_parallel > 1:
            assert budgets == {"1": 40.0}
        else:
            # Stage 1 does not exist under pp=1: the entry is dropped.
            assert budgets == {}


# --------------------------------------------------------------------- #
# Bound admissibility (pruning soundness)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("preset", ["job-smoke", "ep-smoke"])
def test_memory_lower_bound_is_admissible(preset):
    """The memory bound never exceeds a real trace's peak: pruning on it
    can only kill configurations that genuinely cannot fit."""
    seen = set()
    for point in load_spec(preset).expand():
        key = (point.config.label, point.seed, point.scale)
        if key in seen:
            continue
        seen.add(key)
        for cls in resolve_job_ranks(point.config, point.ranks):
            pp, ep = normalize_rank(cls[0])
            bound = memory_lower_bound(
                point.config, rank=pp, ep_rank=ep, scale=point.scale
            )
            trace = TraceGenerator(
                point.config, seed=point.seed, scale=point.scale, rank=pp, ep_rank=ep
            ).generate()
            assert bound <= trace.peak_allocated_bytes(), (
                f"{preset}: bound {bound} exceeds real peak "
                f"{trace.peak_allocated_bytes()} for {point.config.label} rank ({pp},{ep})"
            )


def test_throughput_upper_bound_is_admissible(search_smoke_pair):
    """No measured throughput ever beats the bound used to prune."""
    _, exhaustive = search_smoke_pair
    for row in exhaustive.rows:
        if row["status"] != "ok":
            continue
        config = _config_for_row(row)
        bound = throughput_upper_bound(config, row["device"])
        assert row["tokens_per_second"] <= bound * (1.0 + 1e-9), (
            f"measured {row['tokens_per_second']} beats bound {bound} "
            f"for {row['config']}"
        )


def _config_for_row(row: dict) -> TrainingConfig:
    """Rebuild the TrainingConfig a result row was priced with."""
    bits = dict(
        tp=1, pp=1, dp=1, ep=1, vpp=1, mbs=1,
    )
    recompute = False
    for bit in row["config"].split("/"):
        if bit == "R":
            recompute = True
        elif "=" in bit:
            key, value = bit.split("=")
            bits[key] = int(value)
    parallelism = ParallelismConfig(
        tensor_parallel=bits["tp"],
        pipeline_parallel=bits["pp"],
        data_parallel=bits["dp"],
        expert_parallel=bits["ep"],
        virtual_pipeline_chunks=bits["vpp"],
    )
    spec = load_search_spec(row["model"] if row["model"] in SEARCH_PRESETS else "gpt-tiny")
    sequences = bits["mbs"] * bits["dp"]
    return TrainingConfig(
        model=get_model(row["model"]),
        parallelism=parallelism,
        micro_batch_size=bits["mbs"],
        num_microbatches=spec.global_batch // sequences,
        recompute=recompute,
        zero_stage=bits.get("zero", 0),
    )


# --------------------------------------------------------------------- #
# Acceptance contract: search vs the exhaustive oracle
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def preset_pairs():
    """(search, exhaustive) SearchResults per preset, computed once."""
    pairs = {}
    for preset in SEARCH_PRESETS:
        spec = load_search_spec(preset)
        pairs[preset] = (
            run_search(spec, cache_dir=None),
            run_search(spec, cache_dir=None, exhaustive=True),
        )
    return pairs


@pytest.fixture(scope="module")
def search_smoke_pair(preset_pairs):
    return preset_pairs["search-smoke"]


@pytest.mark.parametrize("preset", SEARCH_PRESETS)
def test_search_matches_exhaustive_best(preset_pairs, preset):
    searched, exhaustive = preset_pairs[preset]
    assert exhaustive.evaluated == exhaustive.candidates_total
    assert searched.candidates_total == exhaustive.candidates_total
    best, oracle = searched.best, exhaustive.best
    assert best is not None and oracle is not None
    assert (best["config"], best["allocator"]) == (oracle["config"], oracle["allocator"])
    assert best["tokens_per_second"] == pytest.approx(oracle["tokens_per_second"])


@pytest.mark.parametrize("preset", SEARCH_PRESETS)
def test_search_evaluates_at_most_half_the_grid(preset_pairs, preset):
    searched, _ = preset_pairs[preset]
    assert searched.evaluated <= searched.candidates_total / 2, (
        f"{preset}: evaluated {searched.evaluated} of {searched.candidates_total}"
    )
    # Prune accounting is complete: every candidate is either pruned or priced.
    assert (
        searched.pruned_by_memory + searched.pruned_by_bound + searched.evaluated
        == searched.candidates_total
    )
    assert len(searched.pruned) == searched.pruned_by_memory + searched.pruned_by_bound
    assert searched.evaluated == len(searched.rows)


def test_both_prune_kinds_fire_across_presets(preset_pairs):
    assert any(pair[0].pruned_by_memory > 0 for pair in preset_pairs.values())
    assert any(pair[0].pruned_by_bound > 0 for pair in preset_pairs.values())


@pytest.mark.parametrize("preset", SEARCH_PRESETS)
def test_memory_pruned_candidates_never_fit(preset_pairs, preset):
    """Pruning soundness end-to-end: every configuration the memory bound
    killed really OOMs when the exhaustive oracle prices it."""
    searched, exhaustive = preset_pairs[preset]
    pruned_configs = {
        record["config"] for record in searched.pruned if record["reason"] == "memory_bound"
    }
    exhaustive_by_config: dict[str, list[dict]] = {}
    for row in exhaustive.rows:
        exhaustive_by_config.setdefault(row["config"], []).append(row)
    for config in pruned_configs:
        rows = exhaustive_by_config[config]
        assert rows and all(row["status"] != "ok" for row in rows), (
            f"{preset}: memory-pruned {config} fit when evaluated exhaustively"
        )


@pytest.mark.parametrize("preset", ["job-smoke", "ep-smoke"])
def test_search_points_matches_sweep_argmin(preset):
    """On an existing sweep grid the planner returns the sweep's own best."""
    points = load_spec(preset).expand()
    searched = search_points(points, name=preset, cache_dir=None)
    oracle = search_points(points, name=preset, cache_dir=None, exhaustive=True)
    assert searched.best is not None
    assert (searched.best["config"], searched.best["allocator"]) == (
        oracle.best["config"],
        oracle.best["allocator"],
    )


# --------------------------------------------------------------------- #
# Ranking + serialization
# --------------------------------------------------------------------- #
def test_rank_rows_orders_and_stamps():
    rows = [
        {"status": "oom", "config": "c", "allocator": "a"},
        {"status": "ok", "config": "b", "allocator": "a",
         "tokens_per_second": 100.0, "allocated_gib": 2.0},
        {"status": "ok", "config": "a", "allocator": "a",
         "tokens_per_second": 200.0, "allocated_gib": 5.0},
        {"status": "ok", "config": "d", "allocator": "a",
         "tokens_per_second": 100.0, "allocated_gib": 1.0},
    ]
    ranked = _rank_rows(rows)
    assert [row["config"] for row in ranked] == ["a", "d", "b", "c"]
    assert [row["search_rank"] for row in ranked] == [1, 2, 3, 4]


def test_search_result_roundtrip(tmp_path, search_smoke_pair):
    searched, _ = search_smoke_pair
    doc = searched.as_dict()
    again = SearchResult.from_dict(doc)
    assert again.as_dict() == doc

    path = tmp_path / "search.json"
    searched.write(path)
    loaded = SearchResult.load(path)
    assert loaded.rows == searched.rows
    assert loaded.pruned_by_memory == searched.pruned_by_memory

    # The compare gate consumes the same file as a plain sweep result.
    as_sweep = SweepResult.load(path)
    assert as_sweep.rows == searched.rows
    report = compare_results(as_sweep, searched.as_sweep_result())
    assert report.exit_code == 0

    csv_path = tmp_path / "search.csv"
    searched.write(csv_path)
    assert csv_path.read_text(encoding="utf-8").count("\n") == len(searched.rows) + 1

    with pytest.raises(ValueError, match="unsupported output format"):
        searched.write(tmp_path / "search.txt")


def test_search_rank_regression_gates(search_smoke_pair):
    """A candidate slipping in the ranking is a compare-gate regression."""
    searched, _ = search_smoke_pair
    worse = SearchResult.from_dict(searched.as_dict())
    worse.rows = [dict(row) for row in searched.rows]
    worse.rows[0] = dict(worse.rows[0], search_rank=worse.rows[0]["search_rank"] + 1)
    report = compare_results(searched.as_sweep_result(), worse.as_sweep_result())
    assert report.exit_code == 1
    assert any("search_rank" in reason for c in report.regressions for reason in c.regressions)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_search(tmp_path, capsys):
    from repro.cli import main

    assert main(["search", "--list"]) == 0
    assert "search-smoke" in capsys.readouterr().out

    assert main(["search"]) == 2  # spec required
    assert main(["search", "no-such-preset"]) == 2
    assert main(["search", "search-smoke", "--output", str(tmp_path / "x.txt")]) == 2
    assert main(["search", "--compare", "a.json", "b.json", "c.json"]) == 2
    assert main(["search", "search-smoke", "--compare", "a.json", "b.json"]) == 2
    capsys.readouterr()

    out = tmp_path / "search.json"
    assert main(["search", "search-smoke", "--no-cache", "--output", str(out)]) == 0
    text = capsys.readouterr().out
    assert "== search search-smoke:" in text
    assert "best:" in text
    # Rerun against the file just written: identical results, gate passes.
    assert main(["search", "search-smoke", "--no-cache", "--compare", str(out)]) == 0
    assert "0 regressed" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Bugfix regressions: binding rank, compare gate, capacity split
# --------------------------------------------------------------------- #
def test_budget_utilization_distinguishes_zero_from_unbudgeted():
    assert _budget_utilization(1.0, None) == 0.0
    assert _budget_utilization(1.0, 0) == float("inf")
    assert _budget_utilization(30.0, 40.0) == pytest.approx(0.75)


def _fake_run(peak_gib: float) -> WorkloadRun:
    from repro.simulator.metrics import MemoryMetrics
    from repro.simulator.replay import ReplayResult

    config = TrainingConfig(model=get_model("gpt-tiny"), parallelism=ParallelismConfig())
    replay = ReplayResult(
        allocator_name="torch2.3",
        metrics=MemoryMetrics(
            peak_allocated_bytes=int(peak_gib * GIB),
            peak_reserved_bytes=int(peak_gib * GIB),
        ),
        success=True,
    )
    return WorkloadRun(
        config=config, allocator_name="torch2.3", replay=replay,
        device_name="A800-80GB", rank=0,
    )


def test_binding_rank_honors_zero_budget():
    """A zero-budget class is maximally binding, not invisible (the old
    truthiness check made ``binding_utilization`` return None for it and
    ``binding_class_index`` fall back to the raw-peak rank)."""
    job = JobRun(
        config=TrainingConfig(
            model=get_model("gpt-tiny"),
            parallelism=ParallelismConfig(pipeline_parallel=2),
        ),
        allocator_name="torch2.3",
        device_name="A800-80GB",
        rank_classes=[(0,), (1,)],
        class_runs=[_fake_run(50.0), _fake_run(1.0)],
        class_capacities=[80.0, 0.0],
    )
    assert job.binding_class_index == 1
    assert job.binding_rank == 1
    assert job.binding_utilization == float("inf")


@pytest.mark.parametrize("bad", [0, -1, "forty", True])
def test_run_job_validates_budgets(bad):
    config = TrainingConfig(model=get_model("gpt-tiny"), parallelism=ParallelismConfig())
    with pytest.raises(ValueError, match="positive GiB value"):
        run_job(config, "torch2.3", device_capacity_gib=bad)
    with pytest.raises(ValueError, match="positive GiB value"):
        run_job(config, "torch2.3", device_memory_by_rank={"0": bad})
    with pytest.raises(ValueError, match="positive GiB value"):
        validate_capacity_gib(bad)


def test_is_regression_excludes_booleans():
    """Mirrors _values_differ: a boolean metric value must never be diffed
    as 0/1 arithmetic (the old check let ``True -> False`` regress ``mfu``)."""
    assert _is_regression("mfu", True, False, 0.0) is False
    assert _is_regression("mfu", 0.5, False, 0.0) is False
    assert _is_regression("mfu", 0.5, 0.4, 0.0) is True
    assert _is_regression("tokens_per_second", 100.0, 90.0, 0.0) is True
    assert _is_regression("search_rank", 1, 2, 0.0) is True
    # Sanity: _values_differ keeps treating bools as plain (in)equality.
    assert _values_differ(True, False, 0.0) is True
    assert _values_differ(True, True, 0.0) is False


def test_split_classes_by_capacity_int_ranks():
    """Int-ranked classes with a partial budget map used to hit a TypeError
    (the sort key compared a rank against the empty tuple); the fixed key
    orders budgeted groups first (ascending) with unbudgeted groups trailing."""
    refined = _split_classes_by_capacity([(0, 1, 2)], {"1": 40.0}, None)
    assert refined == [((1,), 40.0), ((0, 2), None)]

    refined = _split_classes_by_capacity([(0, 1, 2)], {"0": 40.0, "1": 20.0}, None)
    assert refined == [((1,), 20.0), ((0,), 40.0), ((2,), None)]

    # Tuple-ranked classes follow the same ordering contract.
    refined = _split_classes_by_capacity(
        [((0, 0), (0, 1))], {"0.1": 30.0}, None
    )
    assert refined == [(((0, 1),), 30.0), (((0, 0),), None)]


def test_setup_oom_is_an_oom_result():
    """STAlloc's static-pool reservation exceeding the device budget is an
    OOM *measurement* (failed before any event replayed), not a crash."""
    config = TrainingConfig(model=get_model("gpt-tiny"), parallelism=ParallelismConfig())
    run = run_workload(config, "stalloc", device_capacity_gib=0.01)
    assert run.success is False
    assert run.replay.oom_at_event == -1
    assert run.replay.oom_request_bytes > 0
    assert run.replay.events_replayed == 0
    # ...and the planner surfaces it as an ordinary OOM row, not an exception.
    job = run_job(config, "stalloc", device_capacity_gib=0.01, with_throughput=False)
    assert job.success is False
