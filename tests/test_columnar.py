"""Seeded fuzz/property suite for the columnar trace core.

The columnar refactor's contract is *observational equivalence*: the
structure-of-arrays storage (:mod:`repro.core.columns`) plus its lazy object
views must be indistinguishable from the old list-of-objects implementation
everywhere it is consumed.  This suite locks that down across ~200 randomly
drawn configurations in four layers:

* **analytics equivalence** -- every vectorized statistic on
  :class:`TraceColumns` matches a hand-rolled reference loop over the
  materialized ``TraceEvent`` objects;
* **view round-trips** -- columns -> events -> columns is lossless, and the
  canonical serialization (and therefore the digest) is identical whichever
  side a trace was constructed from;
* **replay equivalence** -- the native allocator's vectorized
  ``batch_replay`` leaves allocator and device in exactly the state of the
  event-by-event loop (results, stats, live allocations, addresses, driver
  counter), and refuses pathological traces the loop handles differently;
* **timeline equivalence** -- the record-buffer emission of the timeline
  simulator agrees with its lazy event/column views, its accounted totals,
  and reruns bit-identically (digest-stable).

Configurations are drawn from fixed-seed RNGs, so failures reproduce.
"""

from __future__ import annotations

import random
from collections import Counter

import numpy as np
import pytest

from repro.allocators.native import NativeAllocator
from repro.core.columns import ALLOC, FREE, KINDS, TraceColumns
from repro.core.events import EventKind, Phase, PhaseKind, TensorCategory, TraceEvent
from repro.gpu.device import GIB, Device
from repro.simulator.replay import replay_trace
from repro.timeline.simulator import (
    KIND_NAMES,
    TimelineSimulator,
    clear_timeline_memo,
    simulate_timeline,
)
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig

GPT_TINY = get_model("gpt-tiny")
MOE_TINY = get_model("moe-tiny")


def _draw_config(rng: random.Random) -> tuple[TrainingConfig, int, int]:
    """One random (config, seed, ep_rank) triple covering dense and MoE."""
    moe = rng.random() < 0.5
    pipeline = rng.choice([1, 2, 4])
    expert = rng.choice([1, 2, 4, 8]) if moe else 1
    config = TrainingConfig(
        model=MOE_TINY if moe else GPT_TINY,
        parallelism=ParallelismConfig(
            pipeline_parallel=pipeline,
            data_parallel=rng.choice([1, 2, 4]),
            expert_parallel=expert,
        ),
        micro_batch_size=rng.choice([1, 2]),
        num_microbatches=rng.choice([1, 2, 4]),
        recompute=rng.random() < 0.3,
        moe_imbalance=rng.choice([0.0, rng.random()]),
        moe_comm_factor=rng.choice([0.0, 0.5, 1.0]) if moe else 0.0,
    )
    ep_rank = rng.randrange(expert) if moe else 0
    return config, rng.randrange(10_000), ep_rank


def _generate(config: TrainingConfig, seed: int, ep_rank: int) -> Trace:
    return TraceGenerator(config, seed=seed, ep_rank=ep_rank).generate()


# ---------------------------------------------------------------------- #
# Analytics: vectorized columns vs a reference loop over the objects
# ---------------------------------------------------------------------- #
def _reference_analytics(events: list[TraceEvent]) -> dict:
    """The old object-walking implementations, kept as the oracle."""
    live = 0
    peak = 0
    comm_live = 0
    comm_peak = 0
    total = 0
    static = dynamic = 0
    categories: dict[str, int] = {}
    sizes: list[int] = []
    for event in events:
        if event.kind is EventKind.ALLOC:
            live += event.size
            peak = max(peak, live)
            total += event.size
            sizes.append(event.size)
            if event.dyn:
                dynamic += event.size
            else:
                static += event.size
            categories[event.category.value] = (
                categories.get(event.category.value, 0) + event.size
            )
            if event.category is TensorCategory.COMM_BUFFER:
                comm_live += event.size
                comm_peak = max(comm_peak, comm_live)
        else:
            live -= event.size
            if event.category is TensorCategory.COMM_BUFFER:
                comm_live -= event.size
    return {
        "peak": peak,
        "comm_peak": comm_peak,
        "total": total,
        "num_requests": len(sizes),
        "num_dynamic": sum(1 for e in events if e.kind is EventKind.ALLOC and e.dyn),
        "static_dynamic": (static, dynamic),
        "category_bytes": categories,
        "sizes": sizes,
        "histogram": Counter(sizes),
        "distinct_gt_512": len({s for s in sizes if s > 512}),
        "end_time": events[-1].time + 1 if events else 0,
    }


@pytest.mark.parametrize("draw", range(60))
def test_columnar_analytics_match_reference_loop(draw):
    config, seed, ep_rank = _draw_config(random.Random(1000 + draw))
    trace = _generate(config, seed, ep_rank)
    reference = _reference_analytics(trace.events)

    assert trace.peak_allocated_bytes() == reference["peak"]
    assert trace.comm_peak_bytes() == reference["comm_peak"]
    assert trace.total_allocated_bytes() == reference["total"]
    assert trace.num_requests == reference["num_requests"]
    assert trace.num_dynamic_requests == reference["num_dynamic"]
    assert trace.static_dynamic_split() == reference["static_dynamic"]
    assert trace.category_bytes() == reference["category_bytes"]
    assert trace.allocation_sizes() == reference["sizes"]
    assert trace.size_histogram() == reference["histogram"]
    assert trace.distinct_sizes() == reference["distinct_gt_512"]
    assert trace.end_time() == reference["end_time"]
    # The live-bytes curve itself matches the running sum.
    running, curve = 0, trace.columns.live_bytes().tolist()
    for event, value in zip(trace.events, curve):
        running += event.size if event.kind is EventKind.ALLOC else -event.size
        assert running == value


@pytest.mark.parametrize("draw", range(40))
def test_view_round_trips_and_digest_stability(draw):
    config, seed, ep_rank = _draw_config(random.Random(2000 + draw))
    trace = _generate(config, seed, ep_rank)

    # columns -> events -> columns is lossless.
    events = trace.events
    rebuilt = TraceColumns.from_events(events)
    for name in ("kind", "req_id", "size", "time", "phase_index", "dyn", "category"):
        assert np.array_equal(getattr(rebuilt, name), getattr(trace.columns, name)), name
    # Interned tables may permute; the decoded strings must not.
    assert [rebuilt.modules[i] for i in rebuilt.module_index.tolist()] == [
        trace.columns.modules[i] for i in trace.columns.module_index.tolist()
    ]
    assert [rebuilt.tags[i] for i in rebuilt.tag_index.tolist()] == [
        trace.columns.tags[i] for i in trace.columns.tag_index.tolist()
    ]

    # An events-constructed twin serializes byte-identically.
    twin = Trace(
        events=events,
        metadata=trace.metadata,
        phases=trace.phases,
        module_spans=trace.module_spans,
    )
    assert twin.digest() == trace.digest()

    # Serialization round-trips through the streaming parser.
    loaded = Trace.loads(trace.dumps())
    assert loaded.digest() == trace.digest()
    assert loaded.events == events
    assert loaded.peak_allocated_bytes() == trace.peak_allocated_bytes()
    assert loaded.to_requests() == trace.to_requests()


# ---------------------------------------------------------------------- #
# Replay: vectorized batch replay vs the event-by-event loop
# ---------------------------------------------------------------------- #
def _force_slow(allocator: NativeAllocator) -> NativeAllocator:
    """Disable the fast path so ``replay_trace`` walks every event."""
    allocator.batch_replay = lambda trace, stop_on_oom=True: None
    return allocator


def _allocator_state(allocator: NativeAllocator) -> dict:
    device = allocator.device
    return {
        "stats": allocator.stats.snapshot(),
        "live_sizes": dict(allocator._live_sizes),
        "placements": {
            req_id: (allocation.address, allocation.size)
            for req_id, allocation in allocator._allocations.items()
        },
        "device_allocations": {
            address: allocation.size
            for address, allocation in device._allocations.items()
        },
        "device_in_use": device.in_use,
        "device_stats": (
            device.stats.malloc_calls,
            device.stats.free_calls,
            device.stats.bytes_allocated_total,
            device.stats.peak_in_use,
        ),
        "next_address": next(device._next_address),
        "overhead": allocator.overhead_seconds(),
    }


@pytest.mark.parametrize("draw", range(40))
def test_batch_replay_matches_event_loop(draw):
    config, seed, ep_rank = _draw_config(random.Random(3000 + draw))
    trace = _generate(config, seed, ep_rank)

    fast = NativeAllocator(Device(name="fast", capacity=512 * GIB))
    slow = _force_slow(NativeAllocator(Device(name="slow", capacity=512 * GIB)))
    fast_result = replay_trace(trace, fast)
    slow_result = replay_trace(trace, slow)

    assert fast_result.success and slow_result.success
    assert fast_result.events_replayed == trace.num_events
    assert fast_result.as_dict() == slow_result.as_dict()
    assert _allocator_state(fast) == _allocator_state(slow)


def test_batch_replay_declines_oom_traces():
    config, seed, ep_rank = _draw_config(random.Random(99))
    trace = _generate(config, seed, ep_rank)
    capacity = max(trace.peak_allocated_bytes() - 1, 1)
    fast = NativeAllocator(Device(name="fast", capacity=capacity))
    slow = _force_slow(NativeAllocator(Device(name="slow", capacity=capacity)))
    fast_result = replay_trace(trace, fast)
    slow_result = replay_trace(trace, slow)
    assert not fast_result.success
    assert fast_result.as_dict() == slow_result.as_dict()


def test_batch_replay_requires_fresh_allocator():
    config, seed, ep_rank = _draw_config(random.Random(7))
    trace = _generate(config, seed, ep_rank)
    allocator = NativeAllocator(Device(name="used", capacity=512 * GIB))
    allocator.allocate(10**9, 1024)
    assert allocator.batch_replay(trace) is None


def _phase() -> Phase:
    return Phase(index=0, kind=PhaseKind.FORWARD, microbatch=0)


def _event(kind: EventKind, req_id: int, size: int, time: int) -> TraceEvent:
    return TraceEvent(kind=kind, req_id=req_id, size=size, time=time, phase=_phase())


@pytest.mark.parametrize(
    "events",
    [
        # Request id allocated twice.
        [
            _event(EventKind.ALLOC, 1, 256, 0),
            _event(EventKind.FREE, 1, 256, 1),
            _event(EventKind.ALLOC, 1, 256, 2),
            _event(EventKind.ALLOC, 1, 512, 3),
        ],
        # Free without a matching allocation.
        [_event(EventKind.ALLOC, 1, 256, 0), _event(EventKind.FREE, 2, 256, 1)],
        # Free before its allocation.
        [_event(EventKind.FREE, 1, 256, 0), _event(EventKind.ALLOC, 1, 256, 1)],
        # Size mismatch between alloc and free.
        [_event(EventKind.ALLOC, 1, 256, 0), _event(EventKind.FREE, 1, 128, 1)],
    ],
    ids=["reused-id", "unmatched-free", "free-first", "size-mismatch"],
)
def test_batch_replay_declines_pathological_pairing(events):
    trace = Trace(events=events, phases=[_phase()])
    assert not trace.columns.pairing().ok
    allocator = NativeAllocator(Device(name="d", capacity=GIB))
    assert allocator.batch_replay(trace) is None


def test_batch_replay_declines_non_positive_sizes():
    trace = Trace(events=[_event(EventKind.ALLOC, 1, 0, 0)], phases=[_phase()])
    allocator = NativeAllocator(Device(name="d", capacity=GIB))
    assert allocator.batch_replay(trace) is None


def test_pairing_accepts_generator_traces():
    config, seed, ep_rank = _draw_config(random.Random(4242))
    trace = _generate(config, seed, ep_rank)
    pairing = trace.columns.pairing()
    assert pairing.ok
    num_allocs = pairing.alloc_pos.shape[0]
    num_frees = pairing.free_pos.shape[0]
    assert num_allocs == trace.num_requests
    assert num_frees + pairing.survivor_ordinals.shape[0] == num_allocs


# ---------------------------------------------------------------------- #
# Timeline: record buffers vs lazy object/column views
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("draw", range(50))
def test_timeline_records_match_views_and_totals(draw):
    config, seed, ep_rank = _draw_config(random.Random(4000 + draw))
    result = TimelineSimulator(config, seed=seed, scale=0.5).run()

    for rank in result.ranks:
        records = list(rank.iter_records())
        events = rank.events
        assert len(records) == rank.num_events == len(events)
        for record, event in zip(records, events):
            assert record == (
                event.kind, event.start, event.duration,
                event.microbatch, event.chunk, event.layer,
            )
            assert event.rank == rank.rank
        columns = rank.columns
        assert columns.num_events == rank.num_events
        assert [KIND_NAMES[k] for k in columns.kind.tolist()] == [r[0] for r in records]
        assert columns.start.tolist() == [r[1] for r in records]
        assert columns.duration.tolist() == [r[2] for r in records]
        # Accounted totals equal the per-kind sums over the emitted records.
        compute = sum(
            r[2] for r in records
            if r[0] in ("forward", "backward", "expert_forward", "expert_backward")
        )
        comm = sum(r[2] for r in records if r[0] in ("a2a_dispatch", "a2a_combine"))
        stall = sum(r[2] for r in records if r[0] == "stall")
        assert rank.compute_seconds == pytest.approx(compute, abs=0.0, rel=1e-12)
        assert rank.comm_seconds == pytest.approx(comm, abs=0.0, rel=1e-12)
        assert rank.stall_seconds == pytest.approx(stall, abs=0.0, rel=1e-12)
        if records:
            assert rank.finish_seconds == max(r[1] + r[2] for r in records)
    assert result.iteration_seconds == max(r.finish_seconds for r in result.ranks)


@pytest.mark.parametrize("draw", range(10))
def test_timeline_rerun_is_digest_stable(draw):
    config, seed, ep_rank = _draw_config(random.Random(5000 + draw))
    clear_timeline_memo()
    first = simulate_timeline(config, seed=seed, scale=0.5)
    clear_timeline_memo()
    second = simulate_timeline(config, seed=seed, scale=0.5)
    assert first is not second
    assert first.digest() == second.digest()
    assert list(first.iter_jsonl()) == list(second.iter_jsonl())
