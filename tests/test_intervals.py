"""Unit and property-based tests for the interval-set algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet


class TestInterval:
    def test_length(self):
        assert Interval(2, 10).length == 8

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(5, 5)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(10, 2)

    def test_overlap_true(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))

    def test_overlap_false_when_touching(self):
        assert not Interval(0, 10).overlaps(Interval(10, 20))

    def test_contains(self):
        assert Interval(0, 10).contains(Interval(2, 8))
        assert not Interval(0, 10).contains(Interval(2, 12))

    def test_contains_point(self):
        interval = Interval(4, 8)
        assert interval.contains_point(4)
        assert interval.contains_point(7)
        assert not interval.contains_point(8)


class TestIntervalSetBasics:
    def test_empty_set(self):
        s = IntervalSet()
        assert len(s) == 0
        assert not s
        assert s.total == 0
        assert s.span is None

    def test_add_single(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.intervals() == [Interval(0, 10)]
        assert s.total == 10

    def test_add_zero_length_is_noop(self):
        s = IntervalSet()
        s.add(5, 5)
        assert not s

    def test_add_invalid_raises(self):
        s = IntervalSet()
        with pytest.raises(ValueError):
            s.add(10, 5)

    def test_add_merges_adjacent(self):
        s = IntervalSet([(0, 10), (10, 20)])
        assert s.intervals() == [Interval(0, 20)]

    def test_add_merges_overlapping(self):
        s = IntervalSet([(0, 10), (5, 30), (25, 40)])
        assert s.intervals() == [Interval(0, 40)]

    def test_add_keeps_disjoint(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.intervals() == [Interval(0, 10), Interval(20, 30)]
        assert s.total == 20

    def test_full_constructor(self):
        assert IntervalSet.full(3, 9).intervals() == [Interval(3, 9)]

    def test_copy_is_independent(self):
        s = IntervalSet([(0, 10)])
        copy = s.copy()
        copy.add(20, 30)
        assert s.total == 10
        assert copy.total == 20

    def test_equality(self):
        assert IntervalSet([(0, 5), (10, 15)]) == IntervalSet([(10, 15), (0, 5)])
        assert IntervalSet([(0, 5)]) != IntervalSet([(0, 6)])

    def test_span(self):
        s = IntervalSet([(5, 10), (20, 30)])
        assert s.span == Interval(5, 30)


class TestIntervalSetRemove:
    def test_remove_whole(self):
        s = IntervalSet([(0, 10)])
        s.remove(0, 10)
        assert not s

    def test_remove_middle_splits(self):
        s = IntervalSet([(0, 10)])
        s.remove(3, 7)
        assert s.intervals() == [Interval(0, 3), Interval(7, 10)]

    def test_remove_left_edge(self):
        s = IntervalSet([(0, 10)])
        s.remove(0, 4)
        assert s.intervals() == [Interval(4, 10)]

    def test_remove_right_edge(self):
        s = IntervalSet([(0, 10)])
        s.remove(6, 10)
        assert s.intervals() == [Interval(0, 6)]

    def test_remove_across_intervals(self):
        s = IntervalSet([(0, 10), (20, 30), (40, 50)])
        s.remove(5, 45)
        assert s.intervals() == [Interval(0, 5), Interval(45, 50)]

    def test_remove_outside_is_noop(self):
        s = IntervalSet([(10, 20)])
        s.remove(30, 40)
        assert s.intervals() == [Interval(10, 20)]

    def test_remove_zero_length_is_noop(self):
        s = IntervalSet([(10, 20)])
        s.remove(15, 15)
        assert s.total == 10


class TestIntervalSetAlgebra:
    def test_union(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(5, 20)])
        assert a.union(b).intervals() == [Interval(0, 20)]

    def test_difference(self):
        a = IntervalSet([(0, 20)])
        b = IntervalSet([(5, 10), (15, 25)])
        assert a.difference(b).intervals() == [Interval(0, 5), Interval(10, 15)]

    def test_intersection(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert a.intersection(b).intervals() == [Interval(5, 10), Interval(20, 25)]

    def test_intersection_empty(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(10, 20)])
        assert not a.intersection(b)

    def test_complement(self):
        s = IntervalSet([(5, 10), (15, 20)])
        assert s.complement(0, 25).intervals() == [
            Interval(0, 5),
            Interval(10, 15),
            Interval(20, 25),
        ]

    def test_contains(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.contains(2, 8)
        assert s.contains(0, 10)
        assert not s.contains(8, 12)
        assert not s.contains(12, 15)

    def test_contains_point(self):
        s = IntervalSet([(0, 10)])
        assert s.contains_point(0)
        assert not s.contains_point(10)


class TestIntervalSetCarving:
    def test_best_fit_picks_smallest(self):
        s = IntervalSet([(0, 100), (200, 210), (300, 350)])
        assert s.best_fit(10) == Interval(200, 210)

    def test_best_fit_none_when_too_large(self):
        s = IntervalSet([(0, 10)])
        assert s.best_fit(11) is None

    def test_first_fit_picks_lowest_address(self):
        s = IntervalSet([(0, 100), (200, 210)])
        assert s.first_fit(10) == Interval(0, 100)

    def test_carve_removes_bytes(self):
        s = IntervalSet([(0, 100)])
        carved = s.carve(30)
        assert carved == Interval(0, 30)
        assert s.intervals() == [Interval(30, 100)]

    def test_carve_best_fit_policy(self):
        s = IntervalSet([(0, 100), (200, 232)])
        carved = s.carve(32, policy="best_fit")
        assert carved == Interval(200, 232)

    def test_carve_returns_none_when_no_fit(self):
        s = IntervalSet([(0, 10)])
        assert s.carve(20) is None
        assert s.total == 10

    def test_invalid_size_raises(self):
        s = IntervalSet([(0, 10)])
        with pytest.raises(ValueError):
            s.best_fit(0)


# ---------------------------------------------------------------------- #
# Property-based tests
# ---------------------------------------------------------------------- #
interval_strategy = st.tuples(
    st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=50)
).map(lambda pair: (pair[0], pair[0] + pair[1]))


@st.composite
def interval_sets(draw):
    intervals = draw(st.lists(interval_strategy, max_size=15))
    return IntervalSet(intervals)


def _covered(s: IntervalSet) -> set[int]:
    """Explicit point-set model of an IntervalSet (small ranges only)."""
    points: set[int] = set()
    for interval in s:
        points.update(range(interval.start, interval.end))
    return points


class TestIntervalSetProperties:
    @given(st.lists(interval_strategy, max_size=15))
    @settings(max_examples=100)
    def test_canonical_form(self, intervals):
        """Members are sorted, disjoint and non-adjacent after any additions."""
        s = IntervalSet(intervals)
        members = s.intervals()
        for first, second in zip(members, members[1:]):
            assert first.end < second.start

    @given(interval_sets(), interval_sets())
    @settings(max_examples=75)
    def test_union_matches_point_model(self, a, b):
        assert _covered(a.union(b)) == _covered(a) | _covered(b)

    @given(interval_sets(), interval_sets())
    @settings(max_examples=75)
    def test_intersection_matches_point_model(self, a, b):
        assert _covered(a.intersection(b)) == _covered(a) & _covered(b)

    @given(interval_sets(), interval_sets())
    @settings(max_examples=75)
    def test_difference_matches_point_model(self, a, b):
        assert _covered(a.difference(b)) == _covered(a) - _covered(b)

    @given(interval_sets())
    @settings(max_examples=50)
    def test_complement_is_involution(self, s):
        lo, hi = 0, 1100
        assert _covered(s.complement(lo, hi).complement(lo, hi)) == _covered(s) & set(range(lo, hi))

    @given(interval_sets(), st.integers(min_value=1, max_value=60))
    @settings(max_examples=75)
    def test_carve_preserves_total(self, s, size):
        total_before = s.total
        carved = s.carve(size)
        if carved is None:
            assert s.total == total_before
            assert all(interval.length < size for interval in s)
        else:
            assert carved.length == size
            assert s.total == total_before - size
