"""Tests for the memory-request event model and event pairing."""

from __future__ import annotations

import pytest

from repro.core.events import (
    EventKind,
    MemoryRequest,
    Phase,
    PhaseKind,
    TensorCategory,
    TraceEvent,
    pair_events,
)
from tests.conftest import make_phase, make_request


class TestPhase:
    def test_ordering_by_index(self):
        assert make_phase(0) < make_phase(1)

    def test_label_forward(self):
        phase = Phase(index=2, kind=PhaseKind.FORWARD, microbatch=3, chunk=1)
        assert phase.label() == "F(mb=3, chunk=1)"

    def test_label_init(self):
        assert Phase(index=0, kind=PhaseKind.INIT).label() == "INIT"


class TestMemoryRequest:
    def test_lifespan(self):
        request = make_request(1, 100, alloc_time=5, free_time=25)
        assert request.lifespan == 20
        assert request.memory_time() == 2000

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            make_request(1, 0, 0, 10)

    def test_rejects_inverted_lifespan(self):
        with pytest.raises(ValueError):
            make_request(1, 100, 10, 10)

    def test_overlaps(self):
        a = make_request(1, 100, 0, 10)
        b = make_request(2, 100, 5, 15)
        c = make_request(3, 100, 10, 20)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open: back-to-back is not an overlap

    def test_overlaps_interval(self):
        request = make_request(1, 100, 10, 20)
        assert request.overlaps_interval(0, 11)
        assert request.overlaps_interval(19, 25)
        assert not request.overlaps_interval(20, 30)

    def test_shifted(self):
        request = make_request(1, 100, 10, 20)
        shifted = request.shifted(5)
        assert (shifted.alloc_time, shifted.free_time) == (15, 25)

    def test_phase_pair_and_layer_pair(self):
        request = make_request(1, 64, 0, 5, dyn=True, alloc_module="l0", free_module="l1")
        assert request.layer_pair == ("l0", "l1")
        assert request.phase_pair == (request.alloc_phase, request.free_phase)


class TestPairEvents:
    def _alloc(self, req_id, size, time, phase, **kwargs):
        return TraceEvent(EventKind.ALLOC, req_id, size, time, phase, **kwargs)

    def _free(self, req_id, size, time, phase, **kwargs):
        return TraceEvent(EventKind.FREE, req_id, size, time, phase, **kwargs)

    def test_simple_pairing(self):
        p0, p1 = make_phase(0), make_phase(1, PhaseKind.BACKWARD)
        events = [self._alloc(1, 100, 0, p0), self._free(1, 100, 5, p1)]
        requests = pair_events(events)
        assert len(requests) == 1
        request = requests[0]
        assert (request.alloc_time, request.free_time) == (0, 5)
        assert request.alloc_phase == p0 and request.free_phase == p1

    def test_unfreed_allocations_are_closed_at_trace_end(self):
        p0 = make_phase(0, PhaseKind.INIT)
        p1 = make_phase(1)
        events = [self._alloc(1, 100, 0, p0), self._alloc(2, 50, 3, p1), self._free(2, 50, 8, p1)]
        requests = pair_events(events)
        persistent = next(r for r in requests if r.req_id == 1)
        assert persistent.free_time == 9  # one tick past the last event

    def test_free_without_alloc_raises(self):
        p0 = make_phase(0)
        with pytest.raises(ValueError):
            pair_events([self._free(1, 100, 0, p0)])

    def test_double_alloc_raises(self):
        p0 = make_phase(0)
        with pytest.raises(ValueError):
            pair_events([self._alloc(1, 100, 0, p0), self._alloc(1, 100, 1, p0)])

    def test_dynamic_metadata_preserved(self):
        p0, p1 = make_phase(0), make_phase(1, PhaseKind.BACKWARD)
        events = [
            self._alloc(1, 100, 0, p0, dyn=True, module="layer0.experts",
                        category=TensorCategory.EXPERT_ACTIVATION),
            self._free(1, 100, 4, p1, dyn=True, module="layer0.experts.grad"),
        ]
        request = pair_events(events)[0]
        assert request.dyn
        assert request.layer_pair == ("layer0.experts", "layer0.experts.grad")
        assert request.category is TensorCategory.EXPERT_ACTIVATION

    def test_empty_trace(self):
        assert pair_events([]) == []

    def test_requests_sorted_by_alloc_time(self):
        p0 = make_phase(0)
        events = [
            self._alloc(2, 10, 1, p0),
            self._alloc(1, 10, 0, p0),
            self._free(1, 10, 2, p0),
            self._free(2, 10, 3, p0),
        ]
        requests = pair_events(events)
        assert [r.req_id for r in requests] == [1, 2]
