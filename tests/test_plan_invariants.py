"""Planner-invariant tests (the sweep engine's safety net).

For randomized traces across dense/MoE/recompute/ZeRO/virtual-pipeline
configurations these tests assert the fundamental guarantees of a
:class:`StaticAllocationPlan`:

* no two requests that are live at the same time overlap in address space
  (checked with an independent brute-force verifier, not ``plan.validate``);
* every decision lies inside the static pool;
* the pool size equals the sum of the memory-layer sizes the global planner
  stacked (and therefore covers the peak static demand);
* every static request receives exactly one decision;
* dynamic reusable spaces never intersect a static decision that is live
  during the HomoLayer group's temporal range.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dynamic_space import group_temporal_range, homolayer_groups
from repro.core.events import MemoryRequest, Phase, PhaseKind
from repro.core.plan import AllocationDecision, StaticAllocationPlan
from repro.core.profiler import AllocationProfiler, ProfileResult
from repro.core.stalloc import STAllocConfig
from repro.core.synthesizer import PlanSynthesizer
from repro.workloads.models import get_model
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.tracegen import TraceGenerator
from repro.workloads.training import TrainingConfig


def _dense(**overrides) -> TrainingConfig:
    defaults = dict(
        model=get_model("gpt2-345m"),
        parallelism=ParallelismConfig(tensor_parallel=1, pipeline_parallel=4, data_parallel=2),
        micro_batch_size=2,
        num_microbatches=2,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def _moe(**overrides) -> TrainingConfig:
    defaults = dict(
        model=get_model("qwen1.5-moe-a2.7b"),
        parallelism=ParallelismConfig(
            tensor_parallel=1, pipeline_parallel=4, data_parallel=2, expert_parallel=4
        ),
        micro_batch_size=1,
        num_microbatches=2,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


CONFIG_CASES: dict[str, TrainingConfig] = {
    "dense-naive": _dense(),
    "dense-recompute": _dense(recompute=True),
    "dense-offload": _dense(offload_activations=True),
    "dense-vpp": _dense(
        parallelism=ParallelismConfig(
            tensor_parallel=1, pipeline_parallel=4, data_parallel=2, virtual_pipeline_chunks=2
        )
    ),
    "dense-zero1": _dense(zero_stage=1),
    "dense-zero3": _dense(zero_stage=3),
    "moe": _moe(),
    "moe-recompute": _moe(recompute=True),
}

SEEDS = [0, 1]

_SYNTH_CACHE: dict = {}


def synthesize(case: str, seed: int):
    """Profile + synthesize one config case (memoised; the checks share it)."""
    key = (case, seed)
    if key not in _SYNTH_CACHE:
        config = CONFIG_CASES[case]
        trace = TraceGenerator(config, seed=seed, scale=0.5).generate()
        profile = AllocationProfiler().profile(trace)
        plan = PlanSynthesizer(STAllocConfig().synthesizer_config()).synthesize(profile)
        _SYNTH_CACHE[key] = (profile, plan)
    return _SYNTH_CACHE[key]


def assert_no_spatio_temporal_overlap(plan: StaticAllocationPlan) -> None:
    """Independent O(n^2) verifier for the no-memory-stomping property."""
    decisions = sorted(plan.decisions, key=lambda d: d.address)
    for i, a in enumerate(decisions):
        for b in decisions[i + 1 :]:
            if b.address >= a.end_address:
                break  # sorted by address: no later decision can overlap a
            if a.request.overlaps(b.request):
                raise AssertionError(
                    f"requests {a.request.req_id} and {b.request.req_id} overlap in "
                    f"space ([{a.address}, {a.end_address}) vs [{b.address}, {b.end_address})) "
                    f"and time ([{a.request.alloc_time}, {a.request.free_time}) vs "
                    f"[{b.request.alloc_time}, {b.request.free_time}))"
                )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", sorted(CONFIG_CASES))
class TestStaticPlanInvariants:
    def test_no_spatio_temporal_overlap(self, case, seed):
        _, plan = synthesize(case, seed)
        assert plan.static_plan.decisions
        assert_no_spatio_temporal_overlap(plan.static_plan)

    def test_every_decision_fits_inside_pool(self, case, seed):
        _, plan = synthesize(case, seed)
        for decision in plan.static_plan.decisions:
            assert decision.address >= 0
            assert decision.end_address <= plan.pool_size

    def test_pool_size_is_sum_of_layer_sizes(self, case, seed):
        _, plan = synthesize(case, seed)
        layer_sizes = plan.synthesis_info["layers"]["layer_sizes"]
        assert plan.pool_size == sum(layer_sizes)
        assert plan.static_plan.peak_planned_bytes() <= plan.pool_size

    def test_pool_covers_peak_static_demand(self, case, seed):
        _, plan = synthesize(case, seed)
        assert plan.pool_size >= plan.synthesis_info["peak_static_demand_bytes"]

    def test_plan_covers_every_static_request_exactly_once(self, case, seed):
        profile, plan = synthesize(case, seed)
        planned = [d.request.req_id for d in plan.static_plan.decisions]
        assert len(planned) == len(set(planned))
        assert set(planned) == {r.req_id for r in profile.static_requests}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", ["moe", "moe-recompute"])
class TestDynamicSpaceInvariants:
    def test_reusable_spaces_lie_inside_pool(self, case, seed):
        _, plan = synthesize(case, seed)
        assert plan.dynamic_reusable_spaces
        for spaces in plan.dynamic_reusable_spaces.values():
            for interval in spaces:
                assert 0 <= interval.start < interval.end <= plan.pool_size

    def test_reusable_spaces_avoid_live_static_decisions(self, case, seed):
        """No reusable byte may belong to a static request live in the group's range."""
        profile, plan = synthesize(case, seed)
        groups = homolayer_groups(profile.dynamic_requests)
        for key, members in groups.items():
            spaces = plan.dynamic_reusable_spaces[key]
            if not spaces:
                continue
            start, end = group_temporal_range(key, members, profile.module_spans)
            for decision in plan.static_plan.decisions:
                request = decision.request
                if request.alloc_time <= end and request.free_time > start:
                    for interval in spaces:
                        assert not (
                            interval.start < decision.end_address
                            and decision.address < interval.end
                        ), (
                            f"reusable interval [{interval.start}, {interval.end}) of group "
                            f"{key} overlaps live static request {request.req_id}"
                        )

    def test_every_dynamic_request_is_routed_to_its_group(self, case, seed):
        profile, plan = synthesize(case, seed)
        for request in profile.dynamic_requests:
            assert plan.dynamic_request_groups[request.req_id] == request.layer_pair


ABLATIONS = {
    "no-fusion": STAllocConfig(enable_fusion=False),
    "no-gap-insertion": STAllocConfig(enable_gap_insertion=False),
    "ascending-order": STAllocConfig(descending_size_order=False),
    "no-dynamic-reuse": STAllocConfig(enable_dynamic_reuse=False),
}


@pytest.mark.parametrize("case", ["dense-recompute", "moe"])
@pytest.mark.parametrize("ablation", sorted(ABLATIONS))
class TestAblationSafety:
    def test_ablated_plans_remain_safe(self, case, ablation):
        """Every ablation may cost memory, but must never produce stomping."""
        config = CONFIG_CASES[case]
        trace = TraceGenerator(config, seed=0, scale=0.5).generate()
        profile = AllocationProfiler().profile(trace)
        stalloc_config = ABLATIONS[ablation]
        plan = PlanSynthesizer(stalloc_config.synthesizer_config()).synthesize(profile)
        assert_no_spatio_temporal_overlap(plan.static_plan)
        for decision in plan.static_plan.decisions:
            assert decision.end_address <= plan.pool_size


class TestRandomizedRequestStreams:
    """Synthesizer safety on adversarial random workloads (not just tracegen's)."""

    @staticmethod
    def _random_profile(seed: int) -> ProfileResult:
        rng = random.Random(seed)
        phases = [
            Phase(index=0, kind=PhaseKind.FORWARD, microbatch=0),
            Phase(index=1, kind=PhaseKind.FORWARD, microbatch=1),
            Phase(index=2, kind=PhaseKind.BACKWARD, microbatch=1),
            Phase(index=3, kind=PhaseKind.BACKWARD, microbatch=0),
        ]
        requests = []
        clock = 0
        for req_id in range(rng.randint(40, 120)):
            alloc_time = clock
            clock += rng.randint(1, 3)
            lifespan = rng.randint(1, 50)
            size = 512 * rng.randint(1, 4096)
            alloc_phase = phases[min(alloc_time * len(phases) // 400, len(phases) - 1)]
            free_phase = phases[min((alloc_time + lifespan) * len(phases) // 400, len(phases) - 1)]
            requests.append(
                MemoryRequest(
                    req_id=req_id,
                    size=size,
                    alloc_time=alloc_time,
                    free_time=alloc_time + lifespan,
                    alloc_phase=alloc_phase,
                    free_phase=free_phase,
                )
            )
        end_time = max(r.free_time for r in requests) + 1
        return ProfileResult(requests=requests, phases=phases, end_time=end_time)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams_plan_safely(self, seed):
        profile = self._random_profile(seed)
        plan = PlanSynthesizer(STAllocConfig().synthesizer_config()).synthesize(profile)
        assert_no_spatio_temporal_overlap(plan.static_plan)
        assert len(plan.static_plan) == len(profile.requests)
        layer_sizes = plan.synthesis_info["layers"]["layer_sizes"]
        assert plan.pool_size == sum(layer_sizes)
        for decision in plan.static_plan.decisions:
            assert 0 <= decision.address and decision.end_address <= plan.pool_size


class TestValidateDetectsBrokenPlans:
    """plan.validate() must agree with the independent checker on bad plans."""

    @staticmethod
    def _request(req_id: int, size: int, alloc_time: int, free_time: int) -> MemoryRequest:
        phase = Phase(index=0, kind=PhaseKind.FORWARD, microbatch=0)
        return MemoryRequest(
            req_id=req_id,
            size=size,
            alloc_time=alloc_time,
            free_time=free_time,
            alloc_phase=phase,
            free_phase=phase,
        )

    def test_rejects_spatio_temporal_overlap(self):
        plan = StaticAllocationPlan(
            decisions=[
                AllocationDecision(request=self._request(0, 1024, 0, 10), address=0),
                AllocationDecision(request=self._request(1, 1024, 5, 15), address=512),
            ],
            pool_size=4096,
        )
        with pytest.raises(ValueError, match="memory stomping"):
            plan.validate()
        with pytest.raises(AssertionError):
            assert_no_spatio_temporal_overlap(plan)

    def test_accepts_time_disjoint_space_overlap(self):
        plan = StaticAllocationPlan(
            decisions=[
                AllocationDecision(request=self._request(0, 1024, 0, 5), address=0),
                AllocationDecision(request=self._request(1, 1024, 5, 10), address=0),
            ],
            pool_size=1024,
        )
        plan.validate()
        assert_no_spatio_temporal_overlap(plan)

    def test_rejects_decision_beyond_pool(self):
        plan = StaticAllocationPlan(
            decisions=[AllocationDecision(request=self._request(0, 2048, 0, 5), address=0)],
            pool_size=1024,
        )
        with pytest.raises(ValueError, match="beyond the pool size"):
            plan.validate()
