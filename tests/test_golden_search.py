"""Golden best-config regression fixtures for the search planner.

``tests/fixtures/golden_search.json`` pins, for every search preset, the
winning configuration and the planner's prune accounting.  Any change to the
candidate enumeration, the pruning bounds, or the ranking -- intentional or
not -- flips an entry and fails these tests with a diff of what moved, so the
planner cannot silently start returning a different "best" config.

When a change is intentional, bump ``SEARCH_VERSION`` (result files and this
fixture key on it) and regenerate::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_search.py

then commit the updated ``golden_search.json`` together with the planner
change.  The fixture records the search version it was built with, so a
version bump without regenerated fixtures fails loudly too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.search import SEARCH_VERSION, available_search_presets, load_search_spec, run_search

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_search.json"

REGEN_HINT = (
    "If this change to the search planner is intentional: bump SEARCH_VERSION in "
    "src/repro/search/planner.py, regenerate the fixtures with `REGEN_GOLDEN=1 "
    "PYTHONPATH=src python -m pytest tests/test_golden_search.py`, and commit "
    "tests/fixtures/golden_search.json with the planner change."
)


def _generate_entry(preset: str) -> dict:
    result = run_search(load_search_spec(preset), cache_dir=None)
    best = result.best
    return {
        "search_version": SEARCH_VERSION,
        "best_config": best["config"] if best else None,
        "best_allocator": best["allocator"] if best else None,
        "best_tokens_per_second": round(best["tokens_per_second"], 3) if best else None,
        "candidates_total": result.candidates_total,
        "pruned_by_memory": result.pruned_by_memory,
        "pruned_by_bound": result.pruned_by_bound,
        "evaluated": result.evaluated,
    }


def _load_fixtures() -> dict:
    if not FIXTURE_PATH.exists():
        pytest.fail(
            f"golden fixture file {FIXTURE_PATH} is missing. Generate it with "
            "`REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_search.py` "
            "and commit it."
        )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def test_regenerate_fixtures_when_requested():
    """With REGEN_GOLDEN=1, rewrite the fixture file (and always pass)."""
    if not os.environ.get("REGEN_GOLDEN"):
        pytest.skip("set REGEN_GOLDEN=1 to rewrite tests/fixtures/golden_search.json")
    entries = {preset: _generate_entry(preset) for preset in available_search_presets()}
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_fixture_version_matches_planner():
    """SEARCH_VERSION moved but the fixtures were not regenerated."""
    fixtures = _load_fixtures()
    stale = {
        name: entry["search_version"]
        for name, entry in fixtures.items()
        if entry["search_version"] != SEARCH_VERSION
    }
    if stale:
        pytest.fail(
            f"SEARCH_VERSION is {SEARCH_VERSION} but these fixtures were "
            f"recorded at other versions: {stale}. {REGEN_HINT}"
        )


def test_fixture_presets_in_sync_with_code():
    fixtures = _load_fixtures()
    assert sorted(fixtures) == available_search_presets(), (
        "fixture file and the preset registry disagree on the preset list. " + REGEN_HINT
    )


@pytest.mark.parametrize("preset", sorted(["gpt-tiny", "moe-tiny", "search-smoke"]))
def test_golden_best_config(preset):
    fixtures = _load_fixtures()
    expected = fixtures[preset]
    actual = _generate_entry(preset)
    if actual == expected:
        return
    diff = "\n".join(
        f"  {key}: recorded {expected.get(key)!r} -> searched {actual.get(key)!r}"
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    )
    pytest.fail(
        f"search preset {preset!r} drifted from its recorded golden result:\n"
        f"{diff}\n{REGEN_HINT}"
    )
